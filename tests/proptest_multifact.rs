//! Property-based tests of the **sharded multi-fact** shared path: random
//! mixed workloads over two fact tables must produce identical joined rows
//! and aggregates on the sharded governed engine, the per-query Volcano
//! oracle, and the legacy single-stage-with-QPipe-fallback topology —
//! mirroring the `scalar_filter` / `serial_admission` oracle pattern.

use std::sync::OnceLock;

use proptest::prelude::*;

use workshare::harness::run_batch;
use workshare::{ExecPolicy, NamedConfig, RunConfig, StarQuery};
use workshare_common::value::Row;
use workshare_common::{AggSpec, ColRef, DimJoin, OrderKey, Predicate, Value};
use workshare_datagen::{customer_schema, date_schema, supplier_schema, NATIONS};

fn ssb2() -> &'static workshare::Dataset {
    static D: OnceLock<workshare::Dataset> = OnceLock::new();
    D.get_or_init(|| workshare::Dataset::ssb_two_facts(0.05, 4321))
}

/// A random star query over one of the two fact tables: subset of
/// dimensions, random predicates. Both facts share the dimension tables,
/// so the same join structure lands on whichever stage the fact selects.
fn arb_query() -> impl Strategy<Value = StarQuery> {
    (
        proptest::bool::ANY, // fact table: lineorder / lineorder2
        proptest::bool::ANY, // include customer dim
        proptest::bool::ANY, // include supplier dim
        0usize..25,          // customer nation
        0usize..25,          // supplier nation
        1992i64..=1998,      // year lo
        0i64..4,             // year span
    )
        .prop_map(|(second_fact, with_cust, with_supp, cn, sn, y0, span)| {
            let cs = customer_schema();
            let ss = supplier_schema();
            let ds = date_schema();
            let mut dims = Vec::new();
            let mut group_by = Vec::new();
            if with_cust {
                dims.push(DimJoin {
                    dim: "customer".into(),
                    fact_fk: "lo_custkey".into(),
                    dim_pk: "c_custkey".into(),
                    pred: Predicate::eq(cs.col("c_nation"), Value::str(NATIONS[cn])),
                    payload: vec!["c_city".into()],
                });
                group_by.push(ColRef::dim(dims.len() - 1, "c_city"));
            }
            if with_supp {
                dims.push(DimJoin {
                    dim: "supplier".into(),
                    fact_fk: "lo_suppkey".into(),
                    dim_pk: "s_suppkey".into(),
                    pred: Predicate::eq(ss.col("s_nation"), Value::str(NATIONS[sn])),
                    payload: vec!["s_city".into()],
                });
                group_by.push(ColRef::dim(dims.len() - 1, "s_city"));
            }
            // Always join date so every query is a star (CJOIN-eligible).
            dims.push(DimJoin {
                dim: "date".into(),
                fact_fk: "lo_orderdate".into(),
                dim_pk: "d_datekey".into(),
                pred: Predicate::between(ds.col("d_year"), y0, (y0 + span).min(1998)),
                payload: vec!["d_year".into()],
            });
            group_by.push(ColRef::dim(dims.len() - 1, "d_year"));
            let order: Vec<OrderKey> = (0..group_by.len())
                .map(|i| OrderKey {
                    output_idx: i,
                    desc: false,
                })
                .collect();
            StarQuery {
                id: 0,
                fact: if second_fact {
                    "lineorder2".into()
                } else {
                    "lineorder".into()
                },
                fact_pred: Predicate::True,
                dims,
                group_by,
                aggs: vec![AggSpec::sum(ColRef::fact("lo_revenue"))],
                order_by: order,
            }
        })
}

fn results_of(cfg: &RunConfig, queries: &[StarQuery]) -> Vec<Vec<Row>> {
    run_batch(ssb2(), cfg, queries, true)
        .results
        .unwrap()
        .iter()
        .map(|r| (**r).clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded per-fact stages vs. the per-query Volcano oracle vs. the
    /// legacy single-stage topology (foreign fact → QPipe-with-sharing):
    /// identical joined rows and aggregates for every query of a random
    /// two-fact mix, and the sharded run really builds one stage per
    /// referenced fact.
    #[test]
    fn sharded_stages_match_the_query_centric_oracle(
        mut queries in proptest::collection::vec(arb_query(), 1..6),
        dup in proptest::bool::ANY,
    ) {
        // Optionally duplicate a query to exercise identical-plan sharing
        // (SP satellites inside one stage).
        if dup {
            let q = queries[0].clone();
            queries.push(q);
        }
        for (i, q) in queries.iter_mut().enumerate() {
            q.id = i as u64;
        }
        let reference = results_of(&RunConfig::named(NamedConfig::Volcano), &queries);

        let sharded_cfg = RunConfig::governed(ExecPolicy::Shared);
        let sharded = run_batch(ssb2(), &sharded_cfg, &queries, true);
        let got: Vec<Vec<Row>> = sharded
            .results
            .as_ref()
            .unwrap()
            .iter()
            .map(|r| (**r).clone())
            .collect();
        prop_assert_eq!(&got, &reference, "sharded stages diverged from Volcano");

        // The QPipe oracle: same queries through the pre-sharding topology
        // (single primary-fact stage, foreign facts on QPipe-with-sharing).
        let mut fallback_cfg = RunConfig::governed(ExecPolicy::Shared);
        fallback_cfg.multifact = false;
        let fallback = results_of(&fallback_cfg, &queries);
        prop_assert_eq!(&fallback, &reference, "qpipe fallback diverged from Volcano");

        // Fabric-vs-per-stage-pool oracle: the sharded run above used the
        // engine-level admission fabric (the default); the same mix on
        // per-stage admission pools must produce identical joined rows and
        // identical logical admission stats — only the physical read
        // counters may differ, and the fabric's must not exceed the
        // per-stage pools' (it scans shared dimensions once per window
        // across stages).
        let mut perstage_cfg = RunConfig::governed(ExecPolicy::Shared);
        perstage_cfg.admission_fabric = false;
        let perstage = run_batch(ssb2(), &perstage_cfg, &queries, true);
        let perstage_rows: Vec<Vec<Row>> = perstage
            .results
            .as_ref()
            .unwrap()
            .iter()
            .map(|r| (**r).clone())
            .collect();
        prop_assert_eq!(&perstage_rows, &reference, "per-stage pools diverged");
        let fabric_cj = sharded.cjoin.clone().unwrap();
        let perstage_cj = perstage.cjoin.clone().unwrap();
        prop_assert_eq!(fabric_cj.admitted, perstage_cj.admitted);
        prop_assert_eq!(fabric_cj.sp_shares, perstage_cj.sp_shares);
        prop_assert_eq!(
            fabric_cj.admission_dim_rows, perstage_cj.admission_dim_rows,
            "logical per-query scan volume must be pool-invariant"
        );
        prop_assert!(
            fabric_cj.admission_dim_pages <= perstage_cj.admission_dim_pages,
            "fabric read more pages ({}) than per-stage pools ({})",
            fabric_cj.admission_dim_pages,
            perstage_cj.admission_dim_pages
        );
        let fs = sharded.fabric.expect("sharded run reports fabric stats");
        prop_assert_eq!(fabric_cj.admission_dim_pages, fs.admission_dim_pages);

        // Stage accounting: one row per referenced fact, labels carry the
        // fact, served counts cover every star query of that fact.
        let mut facts: Vec<&str> = queries.iter().map(|q| q.fact.as_str()).collect();
        facts.sort();
        facts.dedup();
        let rows = &sharded.stages;
        prop_assert_eq!(
            rows.iter().map(|r| r.fact.as_str()).collect::<Vec<_>>(),
            facts,
            "one stage row per referenced fact table"
        );
        for row in rows {
            prop_assert_eq!(&row.label, &format!("Shared({})", row.fact));
            let expect = queries.iter().filter(|q| q.fact == row.fact).count() as u64;
            prop_assert_eq!(row.shared_queries, expect, "served count for {}", row.fact);
        }
        // Every query entered a GQP (SP satellites skip admission, so
        // admitted can undercut the query count but never exceed it).
        let total: u64 = rows.iter().map(|r| r.stats.admitted + r.stats.sp_shares).sum();
        prop_assert_eq!(total, queries.len() as u64);
    }
}
