//! Shed-path smoke tests of the bounded service loop — the deterministic
//! CI companions to the self-gating `overload` bench: queue-full sheds,
//! deadline sheds on every routing policy, weighted tenant lockout, and
//! bind errors surfacing as per-query error outcomes.

use std::sync::OnceLock;

use workshare::harness::{run_service, ServiceLoad};
use workshare::{workload, Dataset, ExecPolicy, RunConfig, ServiceConfig, MAX_TENANTS};

fn ssb() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::ssb(0.05, 2468))
}

fn load(clients: usize, tenants: usize, window_secs: f64) -> ServiceLoad {
    ServiceLoad {
        clients,
        arrivals_per_sec: None,
        tenants,
        window_secs,
        seed: 9,
    }
}

#[test]
fn queue_cap_sheds_under_concurrency() {
    // Four closed-loop clients racing a single service slot: the losers
    // shed with QueueFull, the winners complete, everything balances.
    let mut cfg = RunConfig::governed(ExecPolicy::Adaptive);
    cfg.service = ServiceConfig {
        queue_cap: Some(1),
        ..ServiceConfig::default()
    };
    let rep = run_service(ssb(), &cfg, "lineorder", load(4, 1, 0.5), |id, rng| {
        workload::ssb_q3_2(id, rng)
    });
    assert!(rep.completed > 0, "{rep:?}");
    assert!(rep.shed_queue_full > 0, "cap 1 under 4 clients must shed: {rep:?}");
    assert_eq!(rep.shed_deadline, 0, "{rep:?}");
    assert!(rep.is_conserved(), "{rep:?}");
}

#[test]
fn impossible_deadline_sheds_every_submission() {
    // A deadline below any predicted completion: every submission is shed
    // at submit time, on the adaptive (SLO-mode) and both pinned routes.
    for policy in [
        ExecPolicy::Adaptive,
        ExecPolicy::Shared,
        ExecPolicy::QueryCentric,
    ] {
        let mut cfg = RunConfig::governed(policy);
        cfg.service = ServiceConfig {
            deadline_secs: Some(1e-7),
            ..ServiceConfig::default()
        };
        let rep = run_service(ssb(), &cfg, "lineorder", load(2, 1, 0.2), |id, rng| {
            workload::ssb_q3_2(id, rng)
        });
        assert!(rep.submitted > 0, "{policy:?}: {rep:?}");
        assert_eq!(rep.completed, 0, "{policy:?}: {rep:?}");
        assert_eq!(rep.shed_deadline, rep.submitted, "{policy:?}: {rep:?}");
        assert!(rep.is_conserved(), "{policy:?}: {rep:?}");
        if policy == ExecPolicy::Adaptive {
            // SLO mode counts its sheds in the governor stats too.
            let g = rep.governor.expect("governed run reports stats");
            assert_eq!(g.slo_sheds, rep.shed_deadline, "{g:?}");
        }
    }
}

#[test]
fn zero_weight_tenant_is_locked_out_under_explicit_weights() {
    // With weights set, a zero-weight tenant holds no slot under pressure
    // while the weighted tenants keep completing.
    let mut weights = [0.0; MAX_TENANTS];
    weights[0] = 3.0;
    weights[1] = 1.0;
    let mut cfg = RunConfig::governed(ExecPolicy::Adaptive);
    cfg.service = ServiceConfig {
        queue_cap: Some(4),
        tenant_weights: weights,
        ..ServiceConfig::default()
    };
    let rep = run_service(ssb(), &cfg, "lineorder", load(3, 3, 0.5), |id, rng| {
        workload::ssb_q3_2(id, rng)
    });
    assert!(rep.is_conserved(), "{rep:?}");
    let by_tenant = &rep.tenants;
    assert_eq!(by_tenant.len(), 3);
    assert!(by_tenant[0].completed > 0, "{rep:?}");
    assert!(by_tenant[1].completed > 0, "{rep:?}");
    assert_eq!(
        by_tenant[2].shed, by_tenant[2].submitted,
        "zero-weight tenant must shed everything: {rep:?}"
    );
    assert!(by_tenant[2].submitted > 0, "{rep:?}");
}

#[test]
fn bind_errors_surface_as_error_outcomes() {
    // Every query references a payload column its dimension doesn't have:
    // the governed engine must return per-query error outcomes (completing
    // the slot immediately) instead of panicking a stage worker.
    let cfg = RunConfig::governed(ExecPolicy::Shared);
    let rep = run_service(ssb(), &cfg, "lineorder", load(2, 1, 0.2), |id, rng| {
        let mut q = workload::ssb_q3_2(id, rng);
        q.dims[0].payload = vec!["no_such_col".into()];
        q
    });
    assert!(rep.submitted > 0, "{rep:?}");
    assert_eq!(rep.errors, rep.submitted, "{rep:?}");
    assert_eq!(rep.completed, 0, "{rep:?}");
    assert!(rep.is_conserved(), "{rep:?}");
}
