//! Tests of the extension features: shared aggregation, the prediction
//! model, and staggered arrivals (WoP semantics end-to-end).

use std::sync::OnceLock;

use workshare::harness::{run_batch, run_staggered};
use workshare::{workload, Dataset, NamedConfig, RunConfig};
use workshare_common::value::Row;

fn ssb() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::ssb(0.05, 555))
}

fn results(cfg: &RunConfig, queries: &[workshare::StarQuery]) -> Vec<Vec<Row>> {
    run_batch(ssb(), cfg, queries, true)
        .results
        .unwrap()
        .iter()
        .map(|r| (**r).clone())
        .collect()
}

#[test]
fn shared_aggregation_matches_reference() {
    let mut r = workload::rng(61);
    let queries: Vec<_> = (0..4)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let reference = results(&RunConfig::named(NamedConfig::Volcano), &queries);
    let mut cfg = RunConfig::named(NamedConfig::Cjoin);
    cfg.cjoin_shared_agg = true;
    let got = results(&cfg, &queries);
    assert_eq!(got, reference);
}

#[test]
fn shared_aggregation_with_sp_matches_reference() {
    let queries = workload::limited_plans(8, 2, 3, workload::ssb_q3_2_narrow);
    let reference = results(&RunConfig::named(NamedConfig::Volcano), &queries);
    let mut cfg = RunConfig::named(NamedConfig::CjoinSp);
    cfg.cjoin_shared_agg = true;
    let rep = run_batch(ssb(), &cfg, &queries, true);
    let got: Vec<Vec<Row>> = rep
        .results
        .unwrap()
        .iter()
        .map(|r| (**r).clone())
        .collect();
    assert_eq!(got, reference);
    let stats = rep.cjoin.unwrap();
    assert!(stats.sp_shares >= 6, "identical packets must share: {stats:?}");
    assert!(stats.admitted <= 2);
}

#[test]
fn shared_aggregation_drops_per_query_threads_cost() {
    // The ablation's sign: same answers, less or equal total CPU.
    let queries = workload::limited_plans(12, 6, 5, workload::ssb_q3_2);
    let base = run_batch(ssb(), &RunConfig::named(NamedConfig::Cjoin), &queries, false);
    let mut cfg = RunConfig::named(NamedConfig::Cjoin);
    cfg.cjoin_shared_agg = true;
    let shared = run_batch(ssb(), &cfg, &queries, false);
    assert!(
        shared.cpu.total_secs() <= base.cpu.total_secs(),
        "shared agg must not add CPU: {} vs {}",
        shared.cpu.total_secs(),
        base.cpu.total_secs()
    );
}

#[test]
fn prediction_model_skips_sharing_below_saturation() {
    let mut r = workload::rng(71);
    let small: Vec<_> = (0..4)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let mut cfg = RunConfig::named(NamedConfig::QpipeCs);
    cfg.cs_prediction = true;
    let rep = run_batch(ssb(), &cfg, &small, false);
    let sharing = rep.qpipe_sharing.unwrap();
    assert_eq!(
        sharing.scan_satellites, 0,
        "4 queries on 24 cores must not trigger sharing: {sharing:?}"
    );
}

#[test]
fn prediction_model_shares_at_saturation() {
    let mut r = workload::rng(72);
    let big: Vec<_> = (0..40)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let mut cfg = RunConfig::named(NamedConfig::QpipeCs);
    cfg.cs_prediction = true;
    let rep = run_batch(ssb(), &cfg, &big, false);
    let sharing = rep.qpipe_sharing.unwrap();
    assert!(
        sharing.scan_satellites > 0,
        "40 queries on 24 cores must share: {sharing:?}"
    );
    // Correctness unchanged.
    let reference = results(&RunConfig::named(NamedConfig::Qpipe), &big[..3]);
    let got = results(&cfg, &big[..3]);
    assert_eq!(got, reference);
}

#[test]
fn staggered_arrivals_close_step_wop_but_not_linear() {
    let pair = workload::limited_plans(2, 1, 9, workload::ssb_q3_2);
    let cfg = RunConfig::named(NamedConfig::QpipeSp);

    // Simultaneous: both windows open → join sharing happens.
    let together = run_staggered(ssb(), &cfg, "lineorder", &pair, 0.0, true);
    let s = together.qpipe_sharing.clone().unwrap();
    assert!(
        s.join_satellites_by_level.iter().sum::<u64>() >= 1,
        "simultaneous identical queries must share joins: {s:?}"
    );

    // Large delay (past completion): nothing shares, results still correct.
    let solo = run_staggered(ssb(), &cfg, "lineorder", &pair[..1], 0.0, false);
    let t1 = solo.latencies_secs[0];
    let apart = run_staggered(ssb(), &cfg, "lineorder", &pair, t1 * 3.0, true);
    let s2 = apart.qpipe_sharing.clone().unwrap();
    assert_eq!(
        s2.join_satellites_by_level.iter().sum::<u64>(),
        0,
        "step WoP must be closed after the host finished: {s2:?}"
    );
    assert_eq!(
        together.results.unwrap()[1],
        apart.results.unwrap()[1],
        "sharing must not change answers"
    );
}

#[test]
fn mid_flight_arrival_attaches_to_linear_wop_scan() {
    let pair = workload::limited_plans(2, 1, 9, workload::ssb_q3_2);
    let cfg = RunConfig::named(NamedConfig::QpipeCs);
    let solo = run_staggered(ssb(), &cfg, "lineorder", &pair[..1], 0.0, false);
    let t1 = solo.latencies_secs[0];
    // Arrive at ~40% of the host's scan: the circular scan accepts it.
    let rep = run_staggered(ssb(), &cfg, "lineorder", &pair, t1 * 0.4, true);
    let s = rep.qpipe_sharing.clone().unwrap();
    assert!(
        s.scan_satellites > 0,
        "linear WoP must accept mid-flight arrivals: {s:?}"
    );
    let rows = rep.results.unwrap();
    assert_eq!(rows[0], rows[1], "wrap-around must yield the full answer");
}
