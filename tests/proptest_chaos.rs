//! Chaos property tests of the **fault-injection substrate and the
//! self-healing admission ladder**: for random seeded [`FaultPlan`]s —
//! transient / permanent / torn page faults, scan-unit stalls and panics,
//! fabric-worker wedges, stage-build failures, mid-execution worker panics
//! — at any ladder rung the load lands on, every submitted query must end
//! in exactly one of {completed, shed, error}. Faults degrade answers into
//! typed per-query error outcomes; they never lose a query, wedge the
//! admission queue, or hang the run.
//!
//! A chaos failure replays deterministically from the printed proptest
//! seed: the fault schedule is a pure function of `FaultPlan::seed` and the
//! per-site tick counters (see `docs/FAULTS.md`).

use std::sync::OnceLock;

use proptest::prelude::*;

use workshare::harness::{run_service, ServiceLoad};
use workshare::{workload, Dataset, ExecPolicy, FaultPlan, RunConfig, ServiceConfig};

fn ssb() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::ssb(0.05, 4321))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Conservation under random seeded fault schedules, with the
    /// self-healing machinery armed.
    #[test]
    fn every_submission_is_accounted_under_any_fault_schedule(
        arm_transient in proptest::bool::ANY,
        transient_stride in 7u64..40,
        arm_permanent in proptest::bool::ANY,
        permanent_stride in 50u64..200,
        arm_torn in proptest::bool::ANY,
        torn_stride in 60u64..200,
        arm_stall in proptest::bool::ANY,
        stall_stride in 5u64..20,
        arm_panic in proptest::bool::ANY,
        panic_stride in 5u64..20,
        arm_wedge in proptest::bool::ANY,
        wedge_after in 1u64..3,
        arm_stage_build in proptest::bool::ANY,
        stage_build_stride in 2u64..5,
        arm_worker_panic in proptest::bool::ANY,
        worker_panic_stride in 3u64..6,
        fault_seed in 0u64..1_000_000,
        fabric in proptest::bool::ANY,
        capped in proptest::bool::ANY,
        cap in 2usize..6,
        open_loop in proptest::bool::ANY,
        rate in 100.0f64..1200.0,
        clients in 1usize..4,
        tenants in 1usize..3,
        seed in 0u64..1000,
    ) {
        let faults = FaultPlan {
            seed: fault_seed,
            transient_page_stride: arm_transient.then_some(transient_stride),
            permanent_page_stride: arm_permanent.then_some(permanent_stride),
            torn_page_stride: arm_torn.then_some(torn_stride),
            scan_stall_stride: arm_stall.then_some(stall_stride),
            scan_panic_stride: arm_panic.then_some(panic_stride),
            // A wedge is only recoverable through the monitor's reclaim +
            // respawn, so it rides with `self_heal: true` (below).
            fabric_wedge_after: arm_wedge.then_some(wedge_after),
            stage_build_stride: arm_stage_build.then_some(stage_build_stride),
            worker_panic_stride: arm_worker_panic.then_some(worker_panic_stride),
            self_heal: true,
            ..FaultPlan::default()
        };
        let mut cfg = RunConfig::governed(ExecPolicy::Adaptive);
        cfg.admission_fabric = fabric;
        cfg.faults = faults;
        cfg.service = ServiceConfig {
            queue_cap: capped.then_some(cap),
            ..ServiceConfig::default()
        };
        let load = ServiceLoad {
            clients,
            arrivals_per_sec: open_loop.then_some(rate),
            tenants,
            window_secs: 0.2,
            seed,
        };
        let rep = run_service(ssb(), &cfg, "lineorder", load, |id, rng| {
            workload::ssb_q3_2(id, rng)
        });

        // The load-bearing invariant: conserved at any rung, under any
        // schedule.
        prop_assert!(rep.is_conserved(), "{rep:?}");
        for row in &rep.tenants {
            prop_assert_eq!(
                row.submitted,
                row.completed + row.shed + row.errors,
                "tenant {} unbalanced: {row:?}",
                row.tenant
            );
        }

        let h = &rep.health;
        // The ladder never leaves its three rungs, and can only have
        // climbed back up where it first stepped down.
        prop_assert!(h.admission.rung <= 2, "{h:?}");
        prop_assert!(h.admission.promotions <= h.admission.demotions, "{h:?}");
        // Errors only ever come from injected faults.
        if !faults.is_armed() {
            prop_assert_eq!(rep.errors, 0, "{rep:?}");
            prop_assert!(h.is_quiet(), "unarmed plan must stay quiet: {h:?}");
        }
        // Un-healed permanent faults aside, transient faults must be
        // retried, not surfaced (self_heal is on).
        if h.storage.injected_transient > 0 {
            prop_assert!(h.storage.retries > 0, "{h:?}");
        }
        // A torn page is always quarantined when detected.
        prop_assert!(h.storage.pages_quarantined >= h.storage.pages_rebuilt, "{h:?}");
    }
}

/// Deterministic heavy-fault companion: every site armed at aggressive
/// strides over the fabric path. The run must stay conserved, surface real
/// typed errors, and account every recovery action — including at least
/// one wedge → demotion → reclaim/respawn cycle of the degradation ladder.
#[test]
fn heavy_fault_schedule_recovers_and_accounts_every_action() {
    let mut cfg = RunConfig::governed(ExecPolicy::Shared);
    cfg.admission_fabric = true;
    cfg.faults = FaultPlan {
        seed: 42,
        transient_page_stride: Some(9),
        permanent_page_stride: Some(160),
        torn_page_stride: Some(200),
        scan_stall_stride: Some(6),
        scan_panic_stride: Some(7),
        fabric_wedge_after: Some(2),
        stage_build_stride: Some(2),
        worker_panic_stride: Some(11),
        self_heal: true,
        ..FaultPlan::default()
    };
    cfg.service = ServiceConfig {
        queue_cap: Some(6),
        ..ServiceConfig::default()
    };
    let load = ServiceLoad {
        clients: 4,
        arrivals_per_sec: None,
        tenants: 2,
        window_secs: 0.4,
        seed: 11,
    };
    let rep = run_service(ssb(), &cfg, "lineorder", load, |id, rng| {
        workload::ssb_q3_2(id, rng)
    });
    let h = &rep.health;

    assert!(rep.is_conserved(), "{rep:?}");
    assert!(rep.submitted > 0, "{rep:?}");
    assert!(
        rep.completed + rep.completed_late > 0,
        "healing must keep goodput nonzero: {rep:?}"
    );
    // Injection really fired across layers…
    assert!(h.storage.injected_transient > 0, "{h:?}");
    assert!(h.faults_injected() > 0, "{h:?}");
    // …and every class of recovery ran and was accounted.
    assert!(h.storage.retries > 0, "transient retries must fire: {h:?}");
    assert!(h.stage_rebuilds > 0, "stage-build site must fire: {h:?}");
    assert!(
        h.admission.injected_wedges >= 1,
        "the fabric worker must wedge: {h:?}"
    );
    assert!(
        h.admission.demotions >= 1,
        "the dark fabric must demote the ladder: {h:?}"
    );
    assert!(
        h.admission.fabric_respawns >= 1,
        "the monitor must stand up a replacement worker: {h:?}"
    );
    assert!(h.admission.promotions <= h.admission.demotions, "{h:?}");
}

/// No-recovery baseline: the same storage fault schedule with `self_heal`
/// off turns every injected transient fault into a first-attempt typed
/// error — queries fail instead of healing, but conservation still holds
/// (degraded, never wrong: no lost queries, no hang). The wedge site stays
/// unarmed here: a wedged fabric with no monitor holds its queued work
/// forever by design, which is exactly what the healed variant above — and
/// the faulted overload gate — measure against.
#[test]
fn no_recovery_baseline_fails_queries_but_conserves() {
    let faults = FaultPlan {
        seed: 42,
        transient_page_stride: Some(9),
        self_heal: false,
        ..FaultPlan::default()
    };
    let mut cfg = RunConfig::governed(ExecPolicy::Shared);
    cfg.admission_fabric = true;
    cfg.faults = faults;
    let load = ServiceLoad {
        clients: 3,
        arrivals_per_sec: None,
        tenants: 1,
        window_secs: 0.3,
        seed: 11,
    };
    let rep = run_service(ssb(), &cfg, "lineorder", load, |id, rng| {
        workload::ssb_q3_2(id, rng)
    });
    let h = &rep.health;

    assert!(rep.is_conserved(), "{rep:?}");
    assert!(rep.errors > 0, "unretried faults must fail queries: {rep:?}");
    assert_eq!(h.storage.retries, 0, "self_heal off must not retry: {h:?}");
    assert_eq!(
        h.admission.demotions, 0,
        "no monitor without self_heal: {h:?}"
    );
}
