//! Property-based end-to-end tests: random star queries over a fixed small
//! SSB database must produce identical results on the sharing engines and
//! the Volcano reference, under randomized batch composition.

use std::sync::OnceLock;

use proptest::prelude::*;

use workshare::harness::run_batch;
use workshare::{workload, Dataset, NamedConfig, RunConfig, StarQuery};
use workshare_common::value::Row;
use workshare_common::{
    AggSpec, ColRef, DimJoin, OrderKey, Predicate, Value,
};
use workshare_datagen::{customer_schema, date_schema, supplier_schema, NATIONS};

fn ssb() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::ssb(0.05, 4321))
}

/// A random star query: subset of dimensions, random predicates.
fn arb_query() -> impl Strategy<Value = StarQuery> {
    (
        proptest::bool::ANY, // include customer dim
        proptest::bool::ANY, // include supplier dim
        0usize..25,          // customer nation
        0usize..25,          // supplier nation
        1992i64..=1998,      // year lo
        0i64..4,             // year span
        proptest::bool::ANY, // fact predicate on/off
    )
        .prop_map(|(with_cust, with_supp, cn, sn, y0, span, fact_pred)| {
            let cs = customer_schema();
            let ss = supplier_schema();
            let ds = date_schema();
            let mut dims = Vec::new();
            let mut group_by = Vec::new();
            if with_cust {
                dims.push(DimJoin {
                    dim: "customer".into(),
                    fact_fk: "lo_custkey".into(),
                    dim_pk: "c_custkey".into(),
                    pred: Predicate::eq(cs.col("c_nation"), Value::str(NATIONS[cn])),
                    payload: vec!["c_city".into()],
                });
                group_by.push(ColRef::dim(dims.len() - 1, "c_city"));
            }
            if with_supp {
                dims.push(DimJoin {
                    dim: "supplier".into(),
                    fact_fk: "lo_suppkey".into(),
                    dim_pk: "s_suppkey".into(),
                    pred: Predicate::eq(ss.col("s_nation"), Value::str(NATIONS[sn])),
                    payload: vec!["s_city".into()],
                });
                group_by.push(ColRef::dim(dims.len() - 1, "s_city"));
            }
            // Always join date so every query has >= 1 dim (CJOIN stage
            // evaluates star joins).
            dims.push(DimJoin {
                dim: "date".into(),
                fact_fk: "lo_orderdate".into(),
                dim_pk: "d_datekey".into(),
                pred: Predicate::between(ds.col("d_year"), y0, (y0 + span).min(1998)),
                payload: vec!["d_year".into()],
            });
            group_by.push(ColRef::dim(dims.len() - 1, "d_year"));
            let fact_pred = if fact_pred {
                let ls = workshare_datagen::lineorder_schema();
                Predicate::between(ls.col("lo_discount"), 0i64, 5i64)
            } else {
                Predicate::True
            };
            let order: Vec<OrderKey> = (0..group_by.len())
                .map(|i| OrderKey {
                    output_idx: i,
                    desc: false,
                })
                .collect();
            StarQuery {
                id: 0,
                fact: "lineorder".into(),
                fact_pred,
                dims,
                group_by,
                aggs: vec![AggSpec::sum(ColRef::fact("lo_revenue"))],
                order_by: order,
            }
        })
}

fn run(engine: NamedConfig, queries: &[StarQuery]) -> Vec<Vec<Row>> {
    let cfg = RunConfig::named(engine);
    run_batch(ssb(), &cfg, queries, true)
        .results
        .unwrap()
        .iter()
        .map(|r| (**r).clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_batches_agree_across_engines(
        mut queries in proptest::collection::vec(arb_query(), 1..4),
        dup in proptest::bool::ANY,
    ) {
        // Optionally duplicate a query to exercise identical-plan sharing.
        if dup {
            let q = queries[0].clone();
            queries.push(q);
        }
        for (i, q) in queries.iter_mut().enumerate() {
            q.id = i as u64;
        }
        let reference = run(NamedConfig::Volcano, &queries);
        for engine in [NamedConfig::QpipeSp, NamedConfig::CjoinSp] {
            let got = run(engine, &queries);
            prop_assert_eq!(&got, &reference, "{:?} diverged", engine);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn similarity_knob_never_changes_results(
        n_plans in 1usize..5,
        n_queries in 2usize..8,
        seed in any::<u64>(),
    ) {
        let queries = workload::limited_plans(n_queries, n_plans, seed, workload::ssb_q3_2_narrow);
        let reference = run(NamedConfig::Volcano, &queries);
        let shared = run(NamedConfig::CjoinSp, &queries);
        prop_assert_eq!(shared, reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The vectorized batch filter path must be indistinguishable from the
    /// retained scalar reference path: row-identical output and identical
    /// `CjoinStats`, across random star queries and admission batch shapes
    /// (slot counts drive the bitmap widths both kernels stride over).
    #[test]
    fn vectorized_filter_matches_scalar_reference(
        mut queries in proptest::collection::vec(arb_query(), 1..5),
        dup in proptest::bool::ANY,
        shared_agg in proptest::bool::ANY,
    ) {
        if dup {
            let q = queries[0].clone();
            queries.push(q);
        }
        for (i, q) in queries.iter_mut().enumerate() {
            q.id = i as u64;
        }
        let mut vec_cfg = RunConfig::named(NamedConfig::CjoinSp);
        vec_cfg.cjoin_shared_agg = shared_agg;
        let mut scalar_cfg = vec_cfg;
        scalar_cfg.cjoin_scalar_filter = true;
        let vec_run = run_batch(ssb(), &vec_cfg, &queries, true);
        let scalar_run = run_batch(ssb(), &scalar_cfg, &queries, true);
        prop_assert_eq!(
            vec_run.results.as_ref().unwrap(),
            scalar_run.results.as_ref().unwrap(),
            "kernels diverged (shared_agg={})", shared_agg
        );
        // admission_batches (and with it the physical page count of the
        // shared admission scans) shifts with pipeline timing (a faster
        // filter path changes when the preprocessor observes pending
        // admissions); every workload-derived counter must match exactly.
        let mut vs = vec_run.cjoin.unwrap();
        let mut ss = scalar_run.cjoin.unwrap();
        vs.admission_batches = 0;
        ss.admission_batches = 0;
        vs.admission_dim_pages = 0;
        ss.admission_dim_pages = 0;
        prop_assert_eq!(vs, ss, "stats diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The shared-scan admission path (dimension tables scanned once per
    /// admission batch by off-thread workers) must be indistinguishable
    /// from the retained per-query serial path: row-identical output and
    /// identical logical `CjoinStats`, across random star queries, SP
    /// duplicates, and both sink kinds. Only the physical read counters
    /// (`admission_batches`, `admission_dim_pages`) may differ — that is
    /// the optimization being tested.
    #[test]
    fn shared_scan_admission_matches_serial_reference(
        mut queries in proptest::collection::vec(arb_query(), 1..5),
        dup in proptest::bool::ANY,
        shared_agg in proptest::bool::ANY,
    ) {
        if dup {
            let q = queries[0].clone();
            queries.push(q);
        }
        for (i, q) in queries.iter_mut().enumerate() {
            q.id = i as u64;
        }
        let mut shared_cfg = RunConfig::named(NamedConfig::CjoinSp);
        shared_cfg.cjoin_shared_agg = shared_agg;
        let mut serial_cfg = shared_cfg;
        serial_cfg.cjoin_serial_admission = true;
        let shared_run = run_batch(ssb(), &shared_cfg, &queries, true);
        let serial_run = run_batch(ssb(), &serial_cfg, &queries, true);
        prop_assert_eq!(
            shared_run.results.as_ref().unwrap(),
            serial_run.results.as_ref().unwrap(),
            "admission paths diverged (shared_agg={})", shared_agg
        );
        let mut sh = shared_run.cjoin.unwrap();
        let mut se = serial_run.cjoin.unwrap();
        sh.admission_batches = 0;
        se.admission_batches = 0;
        sh.admission_dim_pages = 0;
        se.admission_dim_pages = 0;
        prop_assert_eq!(sh, se, "logical admission stats diverged");
    }
}
