//! Property-based tests of the substrate invariants (DESIGN.md §6).

use proptest::prelude::*;

use workshare_common::codec::{decode_row, encode_row, PageBuilder};
use workshare_common::{ColType, Column, Predicate, QueryBitmap, Schema, Value};
use workshare_sim::{CostKind, Machine, MachineConfig};

// ---------------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------------

fn arb_coltype() -> impl Strategy<Value = ColType> {
    prop_oneof![
        Just(ColType::Int),
        Just(ColType::Float),
        (1usize..24).prop_map(ColType::Str),
    ]
}


proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn codec_roundtrips_arbitrary_rows(tys in proptest::collection::vec(arb_coltype(), 1..6), seed in any::<u64>()) {
        let cols: Vec<Column> = tys
            .iter()
            .enumerate()
            .map(|(i, ty)| Column::new(&format!("c{i}"), *ty))
            .collect();
        let schema = Schema::new(cols);
        // Build a deterministic row from the seed.
        let mut row = Vec::new();
        for (i, ty) in tys.iter().enumerate() {
            let v = match ty {
                ColType::Int => Value::Int((seed as i64).wrapping_mul(i as i64 + 1)),
                ColType::Float => Value::Float((seed as f64) / (i as f64 + 1.5)),
                ColType::Str(n) => {
                    let len = (seed as usize + i) % (n + 1);
                    Value::str(&"x".repeat(len))
                }
            };
            row.push(v);
        }
        let mut buf = Vec::new();
        encode_row(&schema, &row, &mut buf);
        prop_assert_eq!(buf.len(), schema.row_width());
        let back = decode_row(&schema, &buf, 0);
        prop_assert_eq!(back, row);
    }

    #[test]
    fn pages_preserve_row_order(n in 1usize..200) {
        let schema = Schema::new(vec![
            Column::new("k", ColType::Int),
            Column::new("s", ColType::Str(6)),
        ]);
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| vec![Value::Int(i), Value::str(&format!("r{}", i % 100))])
            .collect();
        let mut b = PageBuilder::with_page_size(&schema, 256);
        for r in &rows {
            b.push(r);
        }
        let pages = b.finish();
        let decoded: Vec<_> = pages.iter().flat_map(|p| p.decode_all(&schema)).collect();
        prop_assert_eq!(decoded, rows);
    }
}

// ---------------------------------------------------------------------------
// QueryBitmap vs reference set semantics
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitmap_matches_btreeset_model(
        xs in proptest::collection::btree_set(0usize..300, 0..40),
        ys in proptest::collection::btree_set(0usize..300, 0..40),
        refs in proptest::collection::btree_set(0usize..300, 0..40),
    ) {
        let mut a = QueryBitmap::zeros(300);
        for &x in &xs { a.set(x); }
        let mut e = QueryBitmap::zeros(300);
        for &y in &ys { e.set(y); }
        let mut referencing = QueryBitmap::zeros(300);
        for &r in &refs { referencing.set(r); }

        // Model: keep x if (x ∈ ys) or (x ∉ refs).
        let expect: std::collections::BTreeSet<usize> = xs
            .iter()
            .copied()
            .filter(|x| ys.contains(x) || !refs.contains(x))
            .collect();
        let mut t = a.clone();
        let any = t.and_filtered(Some(&e), &referencing);
        prop_assert_eq!(t.iter_ones().collect::<std::collections::BTreeSet<_>>(), expect.clone());
        prop_assert_eq!(any, !expect.is_empty());
        prop_assert_eq!(t.count_ones(), expect.len());
    }

    #[test]
    fn bitmap_or_and_roundtrip(
        xs in proptest::collection::btree_set(0usize..200, 0..30),
        ys in proptest::collection::btree_set(0usize..200, 0..30),
    ) {
        let mut a = QueryBitmap::zeros(1);
        for &x in &xs { a.set(x); }
        let mut b = QueryBitmap::zeros(1);
        for &y in &ys { b.set(y); }
        let mut u = a.clone();
        u.or_assign(&b);
        let union: std::collections::BTreeSet<usize> = xs.union(&ys).copied().collect();
        prop_assert_eq!(u.iter_ones().collect::<std::collections::BTreeSet<_>>(), union);
        let mut i = a.clone();
        i.and_assign(&b);
        let inter: std::collections::BTreeSet<usize> = xs.intersection(&ys).copied().collect();
        prop_assert_eq!(i.iter_ones().collect::<std::collections::BTreeSet<_>>(), inter);
    }
}

// ---------------------------------------------------------------------------
// Predicate evaluation vs naive model
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn between_equals_two_comparisons(v in any::<i64>(), lo in -50i64..50, hi in -50i64..50) {
        let row = vec![Value::Int(v)];
        let between = Predicate::between(0, lo, hi);
        let model = v >= lo && v <= hi;
        prop_assert_eq!(between.eval(&row), model);
    }

    #[test]
    fn in_set_equals_linear_scan(v in 0i64..40, set in proptest::collection::vec(0i64..40, 0..12)) {
        let row = vec![Value::Int(v)];
        let p = Predicate::in_set(0, set.iter().map(|&x| Value::Int(x)).collect());
        prop_assert_eq!(p.eval(&row), set.contains(&v));
    }

    #[test]
    fn de_morgan_holds(v in any::<i64>(), a in -20i64..20, b in -20i64..20) {
        let row = vec![Value::Int(v)];
        let p1 = Predicate::eq(0, a);
        let p2 = Predicate::eq(0, b);
        let not_or = Predicate::Not(Box::new(Predicate::Or(vec![p1.clone(), p2.clone()])));
        let and_not = Predicate::And(vec![
            Predicate::Not(Box::new(p1)),
            Predicate::Not(Box::new(p2)),
        ]);
        prop_assert_eq!(not_or.eval(&row), and_not.eval(&row));
    }
}

// ---------------------------------------------------------------------------
// Scheduler work conservation
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scheduler_conserves_work(
        cores in 1u32..8,
        costs in proptest::collection::vec(1_000.0f64..100_000.0, 1..12),
    ) {
        let m = Machine::new(MachineConfig { cores, ..Default::default() });
        let total: f64 = costs.iter().sum();
        let costs2 = costs.clone();
        m.spawn("parent", move |ctx| {
            let hs: Vec<_> = costs2
                .iter()
                .map(|&c| ctx.machine().spawn("w", move |ctx| ctx.charge(CostKind::Misc, c)))
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        })
        .join()
        .unwrap();
        let makespan = m.now_ns();
        let busy = m.busy_core_secs() * 1e9;
        // Work conservation: busy time equals charged work.
        prop_assert!((busy - total).abs() < total * 1e-6 + 10.0);
        // Makespan bounds: total/cores <= makespan <= total (+eps).
        prop_assert!(makespan >= total / cores as f64 - 10.0);
        prop_assert!(makespan <= total + 10.0);
        // The longest job lower-bounds the makespan.
        let longest = costs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(makespan >= longest - 10.0);
    }
}
