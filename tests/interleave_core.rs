//! Deterministic interleaving checks for the concurrent core.
//!
//! Compiled only under `RUSTFLAGS="--cfg interleave"`, where
//! [`workshare_common::sync`] resolves the workspace's sync primitives to
//! the model-checked `loom` shim. Each scenario runs a load-bearing
//! protocol of the engine under **every** (bounded) thread interleaving:
//!
//! 1. [`LeaseRegistry`] checkout vs teardown (the engine's per-fact stage
//!    registry): no instance torn down under a live lease, counters land in
//!    exactly one ledger.
//! 2. [`PendingSlot`] window drain vs concurrent submission (the fabric's
//!    merged batching windows): every submission rides exactly one window,
//!    and the [`WindowLedger`] depth signal balances.
//! 3. [`FilterSpec`] staged-entry publish vs activation (the admission
//!    publication discipline): a probing distributor never observes an
//!    active query whose filter entries are missing.
//! 4. [`ServiceSlots`] claim/rollback CAS pair (the bounded admission
//!    queue): caps never overshoot, shed claims roll back exactly.
//! 5. [`CompletionCell`] complete vs racing error-complete vs polling
//!    waiter: exactly one completion wins and `done` never precedes the
//!    outcome.
//! 6. [`ScanAttempt`] straggler re-dispatch claim (the fabric's
//!    exactly-once handshake): racing original and re-dispatched attempts
//!    publish a scan unit exactly once, never zero times, and `done` never
//!    precedes the publish.
//! 7. [`EpochFilterSpec`] lock-free epoch publish vs probing reader (the
//!    stage's epoch-published filter state): publish is one pointer swap,
//!    and a probe gated on the active mask never observes an active slot
//!    whose keys are missing.
//! 8. [`WrapLedger`] atomic wrap bookkeeping (the circular scan's lock-free
//!    `active_bits`/`emit_left`): racing page recorders consume the page
//!    budget exactly, complete a slot exactly once, and an observed active
//!    bit always comes with an initialized budget.
//! 9. [`ShardedSlot`] MPMC sharded drain vs concurrent pushes (the stages'
//!    pending sets and the fabric's request queue): every submission rides
//!    exactly one window across the racing drain and the final sweep.
//!
//! Every faithful scenario must *exhaust* its schedule space
//! (`report.complete`) and explore at least 1 000 distinct schedules; every
//! deliberately broken variant (the `*Mutation` enums, compiled only under
//! this cfg) must be caught deterministically. See docs/TESTING.md.

#![cfg(interleave)]

use loom::thread;
use loom::{Builder, Report};

use workshare_cjoin::epoch::{EpochFilterSpec, EpochMutation};
use workshare_cjoin::publish::{FilterSpec, PublishMutation};
use workshare_cjoin::window::{
    PendingSlot, RedispatchMutation, ScanAttempt, ShardMutation, ShardedSlot, WindowLedger,
    WindowMutation,
};
use workshare_cjoin::wrap::{WrapLedger, WrapMutation};
use workshare_common::sync::{Arc, AtomicBool, AtomicU64, Ordering};
use workshare_common::QueryBitmap;
use workshare_core::cell::{CellMutation, CompletionCell};
use workshare_core::lease::{LeaseMutation, LeaseRegistry, Leased};
use workshare_core::slots::{ServiceSlots, SlotMutation};

/// The suite's preemption bound. The scenarios' full interleaving spaces
/// run past the schedule cap (the lease scenario alone exceeds 10⁵), so we
/// search the bounded subspace **exhaustively** instead: every schedule
/// with at most this many involuntary context switches. That is where
/// concurrency bugs live (all the mutation variants below are caught well
/// inside it), and it keeps the suite's wall-clock bounded as scenarios
/// grow. See docs/TESTING.md for how to re-tune it.
const PREEMPTION_BOUND: usize = 3;

fn explore<F>(bound: Option<usize>, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let mut b = Builder::new();
    b.preemption_bound = bound;
    b.max_schedules = 500_000;
    b.check(f)
}

/// Run `f` under the suite's bounded DFS and require both exhaustion of
/// the bounded space and the coverage floor the issue mandates.
fn check_exhaustive<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(Some(PREEMPTION_BOUND), f);
    assert!(
        report.complete,
        "bounded schedule space must be exhausted (explored {})",
        report.schedules
    );
    assert!(
        report.schedules >= 1_000,
        "scenario too small to be meaningful: {} schedules",
        report.schedules
    );
    report
}

/// Whether the checker rejects `f` (some schedule panics). Used on the
/// mutation variants: a `true` means the model checker would have caught
/// the regression the mutation reintroduces.
fn catches<F>(f: F) -> bool
where
    F: Fn() + Send + Sync + 'static,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        explore(Some(PREEMPTION_BOUND), f)
    }))
    .is_err()
}

// ---------------------------------------------------------------------------
// Scenario 1: stage-registry checkout vs teardown
// ---------------------------------------------------------------------------

/// Stand-in for the engine's `FactStage`: a shutdown flag and a served-work
/// counter, both shared so the test can observe teardown from outside.
#[derive(Clone)]
struct FakeStage {
    id: u64,
    shut: Arc<AtomicBool>,
    work: Arc<AtomicU64>,
}

#[derive(Default)]
struct FakeRetired {
    served: u64,
    work: u64,
}

impl Leased for FakeStage {
    type Retired = FakeRetired;
    fn same(&self, other: &Self) -> bool {
        self.id == other.id
    }
    fn retire_into(&self, served: u64, cell: &mut FakeRetired) {
        cell.served += served;
        cell.work += self.work.load(Ordering::Acquire);
    }
    fn shutdown(&self) {
        self.shut.store(true, Ordering::Release);
    }
}

/// Three leaseholders race checkout → work → release on one key (the
/// engine shape: concurrent queries leasing the same fact stage while
/// earlier leases tear it down). Invariants: no instance is ever shut down
/// while a lease on it is live, and after all releases every checkout and
/// every unit of work is visible in the retired ledger (teardown absorbed
/// the counters before shutdown).
fn lease_scenario(mutation: LeaseMutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let reg: Arc<LeaseRegistry<u32, FakeStage>> =
            Arc::new(LeaseRegistry::with_mutation(mutation));
        let build = |id: u64| {
            move || FakeStage {
                id,
                shut: Arc::new(AtomicBool::new(false)),
                work: Arc::new(AtomicU64::new(0)),
            }
        };
        let lease_once = move |reg: &LeaseRegistry<u32, FakeStage>, id: u64| {
            let s = reg.checkout(1, build(id));
            s.work.fetch_add(1, Ordering::AcqRel);
            assert!(
                !s.shut.load(Ordering::Acquire),
                "instance torn down under a live lease"
            );
            reg.release(1);
        };
        let ts: Vec<_> = (0..2)
            .map(|i| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || lease_once(&reg, i + 1))
            })
            .collect();
        lease_once(&reg, 3);
        for t in ts {
            t.join().unwrap();
        }
        // Conservation: every checkout and work unit retired, no live
        // entry leaked.
        assert_eq!(reg.with_live(1, |_| ()), None, "live entry leaked");
        let (served, work) = reg
            .with_retired(1, |c| (c.served, c.work))
            .expect("teardown must retire the counters");
        assert_eq!(served, 3, "checkout lost in teardown churn");
        assert_eq!(work, 3, "work absorbed after shutdown or not at all");
    }
}

#[test]
fn lease_checkout_vs_teardown_holds() {
    check_exhaustive(lease_scenario(LeaseMutation::None));
}

#[test]
fn lease_mutation_teardown_while_leased_is_caught() {
    assert!(catches(lease_scenario(LeaseMutation::TeardownWhileLeased)));
}

#[test]
fn lease_mutation_absorb_dropped_is_caught() {
    assert!(catches(lease_scenario(LeaseMutation::AbsorbDropped)));
}

// ---------------------------------------------------------------------------
// Scenario 2: fabric window drain vs concurrent submission
// ---------------------------------------------------------------------------

/// A window worker drains the pending set while two submitters race their
/// pushes (each adding to the depth ledger *before* the push, as the fabric
/// does). Invariants: every submission is drained exactly once across the
/// racing window and the final sweep, and the ledger balances to zero.
fn window_scenario(mutation: WindowMutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let slot: Arc<PendingSlot<u32>> = Arc::new(PendingSlot::with_mutation(mutation));
        let ledger = Arc::new(WindowLedger::new(u64::MAX));
        let drained = Arc::new(AtomicU64::new(0));
        let submitter = {
            let (slot, ledger) = (Arc::clone(&slot), Arc::clone(&ledger));
            thread::spawn(move || {
                ledger.add(1);
                slot.push(7);
            })
        };
        let window = {
            let (slot, ledger, drained) =
                (Arc::clone(&slot), Arc::clone(&ledger), Arc::clone(&drained));
            thread::spawn(move || {
                let batch = slot.drain();
                ledger.sub(batch.len() as u64);
                drained.fetch_add(batch.len() as u64, Ordering::AcqRel);
            })
        };
        ledger.add(1);
        slot.push(8);
        submitter.join().unwrap();
        window.join().unwrap();
        // Final sweep: whatever the racing window left pending.
        let batch = slot.drain();
        ledger.sub(batch.len() as u64);
        let total = drained.load(Ordering::Acquire) + batch.len() as u64;
        assert_eq!(total, 2, "a submission was lost or drained twice");
        assert_eq!(ledger.pending(), 0, "depth ledger out of balance");
    }
}

#[test]
fn window_drain_vs_submission_holds() {
    check_exhaustive(window_scenario(WindowMutation::None));
}

#[test]
fn window_mutation_torn_drain_is_caught() {
    assert!(catches(window_scenario(WindowMutation::TornDrain)));
}

// ---------------------------------------------------------------------------
// Scenario 3: staged admission publish vs activation
// ---------------------------------------------------------------------------

/// Two admitters race the two-write admit (publish entries, then activate)
/// against a probing distributor. Invariant: a probe that observes a slot
/// active always finds its published keys — the publication discipline
/// `admission.rs` documents against `crate::publish`.
fn publish_scenario(mutation: PublishMutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let f = Arc::new(FilterSpec::with_mutation(mutation));
        let admitters: Vec<_> = [(0u32, 10i64), (1u32, 20i64)]
            .into_iter()
            .map(|(slot, key)| {
                let f = Arc::clone(&f);
                thread::spawn(move || f.admit(slot, &[key]))
            })
            .collect();
        // The distributor's view, mid-admission: active ⇒ entries present.
        for (slot, key) in [(0u32, 10i64), (1u32, 20i64)] {
            if let Some(hit) = f.probe_if_active(slot, key) {
                assert!(hit, "slot {slot} active without its published key");
            }
        }
        for t in admitters {
            t.join().unwrap();
        }
        assert_eq!(f.probe(10), 1 << 0);
        assert_eq!(f.probe(20), 1 << 1);
    }
}

#[test]
fn publish_before_activate_holds() {
    check_exhaustive(publish_scenario(PublishMutation::None));
}

#[test]
fn publish_mutation_activate_before_publish_is_caught() {
    assert!(catches(publish_scenario(PublishMutation::ActivateBeforePublish)));
}

// ---------------------------------------------------------------------------
// Scenario 4: bounded-admission claim/rollback CAS pair
// ---------------------------------------------------------------------------

/// Two tenant-0 claimants race against a tenant-1 claimant (main), with the
/// engine cap at 2 and per-tenant caps at 1, so the tenant-cap rollback
/// path is exercised under contention. Invariants: the engine-wide count
/// never overshoots its cap, and every claim — admitted, shed, or rolled
/// back — leaves the counters balanced at zero once the permits drop.
fn slots_scenario(mutation: SlotMutation, cap: u64) -> impl Fn() + Send + Sync + 'static {
    move || {
        let slots = ServiceSlots::with_mutation(mutation);
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let slots = Arc::clone(&slots);
                thread::spawn(move || {
                    let permit = slots.try_claim(cap, 0, 1);
                    assert!(
                        slots.outstanding() <= cap,
                        "engine-wide cap overshot: {} > {cap}",
                        slots.outstanding()
                    );
                    drop(permit);
                })
            })
            .collect();
        let permit = slots.try_claim(cap, 1, 1);
        assert!(slots.outstanding() <= cap, "engine-wide cap overshot");
        drop(permit);
        for t in ts {
            t.join().unwrap();
        }
        assert_eq!(slots.outstanding(), 0, "engine slot leaked");
        assert_eq!(slots.tenant_outstanding(0), 0, "tenant 0 slot leaked");
        assert_eq!(slots.tenant_outstanding(1), 0, "tenant 1 slot leaked");
    }
}

#[test]
fn slot_claim_rollback_holds() {
    check_exhaustive(slots_scenario(SlotMutation::None, 2));
}

#[test]
fn slot_mutation_leak_on_tenant_full_is_caught() {
    assert!(catches(slots_scenario(SlotMutation::LeakOnTenantFull, 2)));
}

#[test]
fn slot_mutation_blind_increment_is_caught() {
    // Cap 1 with two racing claimants: the blind fetch_add transiently
    // drives the engine-wide count to 2 before its rollback, which the
    // concurrent cap observers must flag.
    assert!(catches(slots_scenario(SlotMutation::BlindIncrement, 1)));
}

// ---------------------------------------------------------------------------
// Scenario 5: completion cell vs racing error path vs waiter
// ---------------------------------------------------------------------------

/// A completing producer races a poisoning error path (the completion
/// guard's drop shape) while the waiter polls. Invariants: exactly one
/// completion wins, the final outcome is the winner's, and a waiter that
/// observes `done` always finds a published outcome (`try_outcome` panics
/// on a claimed-but-empty cell — the detector).
fn cell_scenario(mutation: CellMutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let cell: Arc<CompletionCell<u64>> = Arc::new(CompletionCell::with_mutation(mutation));
        let producer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.complete(7))
        };
        let guard = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.complete_error("producer abandoned the result slot"))
        };
        // Polling waiter: done ⇒ outcome published (try_outcome panics on
        // the broken ordering).
        if let Some(outcome) = cell.try_outcome() {
            match outcome {
                Ok(v) => assert_eq!(v, 7),
                Err(e) => assert_eq!(e, "producer abandoned the result slot"),
            }
        }
        let value_won = producer.join().unwrap();
        let error_won = guard.join().unwrap();
        assert_eq!(
            value_won as u32 + error_won as u32,
            1,
            "exactly one completion must win the cell"
        );
        let outcome = cell.try_outcome().expect("cell done after both completers");
        assert_eq!(
            outcome.is_ok(),
            value_won,
            "final outcome must be the winner's"
        );
    }
}

#[test]
fn completion_race_holds() {
    check_exhaustive(cell_scenario(CellMutation::None));
}

#[test]
fn cell_mutation_flag_before_value_is_caught() {
    assert!(catches(cell_scenario(CellMutation::FlagBeforeValue)));
}

#[test]
fn cell_mutation_blind_error_overwrite_is_caught() {
    assert!(catches(cell_scenario(CellMutation::BlindErrorOverwrite)));
}

// ---------------------------------------------------------------------------
// Scenario 6: straggler re-dispatch claim protocol
// ---------------------------------------------------------------------------

/// The fabric's re-dispatch shape: when a subscan outlives its deadline the
/// window supervisor spawns a second (and under repeated stalls a third)
/// attempt over the same scan unit. All attempts stage their entries, then
/// race [`ScanAttempt::try_claim`] for the right to publish; losers discard.
/// Invariants: the unit is published exactly once (no duplicate-dispatch),
/// never zero times (no lost-unit), every losing attempt discards, and a
/// supervisor that observes `is_done` sees the publish (Release/Acquire
/// pairing).
fn redispatch_scenario(mutation: RedispatchMutation) -> impl Fn() + Send + Sync + 'static {
    const ATTEMPTS: u64 = 3;
    move || {
        let attempt = Arc::new(ScanAttempt::with_mutation(mutation));
        let published = Arc::new(AtomicU64::new(0));
        let discarded = Arc::new(AtomicU64::new(0));
        let run = |attempt: Arc<ScanAttempt>, published: Arc<AtomicU64>, discarded: Arc<AtomicU64>| {
            // Each attempt stages its entries privately, then races for the
            // publish right; exactly one may apply them.
            if attempt.try_claim() {
                published.fetch_add(1, Ordering::AcqRel);
                attempt.mark_done();
            } else {
                discarded.fetch_add(1, Ordering::AcqRel);
            }
        };
        let ts: Vec<_> = (1..ATTEMPTS)
            .map(|_| {
                let (a, p, d) = (
                    Arc::clone(&attempt),
                    Arc::clone(&published),
                    Arc::clone(&discarded),
                );
                thread::spawn(move || run(a, p, d))
            })
            .collect();
        // The original attempt runs on this thread, racing the re-dispatches.
        run(
            Arc::clone(&attempt),
            Arc::clone(&published),
            Arc::clone(&discarded),
        );
        // Supervisor's mid-race view: done ⇒ the publish is visible, and
        // only one attempt ever made it.
        if attempt.is_done() {
            assert_eq!(
                published.load(Ordering::Acquire),
                1,
                "done observed without exactly one visible publish"
            );
        }
        for t in ts {
            t.join().unwrap();
        }
        assert!(attempt.is_done(), "scan unit silently dropped (lost-unit)");
        assert_eq!(
            published.load(Ordering::Acquire),
            1,
            "duplicate dispatch: more than one attempt published"
        );
        assert_eq!(
            discarded.load(Ordering::Acquire),
            ATTEMPTS - 1,
            "a losing attempt failed to discard its staged entries"
        );
    }
}

#[test]
fn redispatch_claim_is_exactly_once_holds() {
    check_exhaustive(redispatch_scenario(RedispatchMutation::None));
}

#[test]
fn redispatch_mutation_torn_claim_is_caught() {
    assert!(catches(redispatch_scenario(RedispatchMutation::TornClaim)));
}

// ---------------------------------------------------------------------------
// Scenario 7: lock-free epoch publish vs probing reader
// ---------------------------------------------------------------------------

/// The stage's epoch-published filter state: slot 0 is established before
/// the race, then an admitter publishes slot 1 (clone entries → one-swap
/// publish → `Release` active bit) while a reader with a cached
/// [`EpochReader`] probes both slots. Invariants: a probe that observes a
/// slot active always finds its published keys (entries-then-activate
/// carried by the `Acquire` mask / `Release` publish pairing), and
/// established entries never vanish mid-publish. The TornSwap mutation is
/// caught through the reader's cache: a refresh between the torn version
/// bump and the value swap pins the stale entries under the new version
/// forever.
fn epoch_scenario(mutation: EpochMutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let spec = Arc::new(EpochFilterSpec::with_mutation(mutation));
        spec.admit(0, &[10]);
        let admitter = {
            let spec = Arc::clone(&spec);
            thread::spawn(move || spec.admit(1, &[20]))
        };
        let prober = {
            let spec = Arc::clone(&spec);
            thread::spawn(move || {
                let mut reader = spec.reader();
                for _ in 0..2 {
                    assert_eq!(
                        spec.probe_if_active(&mut reader, 0, 10),
                        Some(true),
                        "established slot 0 lost its key mid-publish"
                    );
                    if let Some(hit) = spec.probe_if_active(&mut reader, 1, 20) {
                        assert!(hit, "slot 1 active without its published key");
                    }
                }
            })
        };
        admitter.join().unwrap();
        prober.join().unwrap();
        // Post-join: both slots active with their keys, through a fresh
        // reader and through a reader that lived across the race.
        let mut reader = spec.reader();
        assert_eq!(spec.probe_if_active(&mut reader, 0, 10), Some(true));
        assert_eq!(
            spec.probe_if_active(&mut reader, 1, 20),
            Some(true),
            "slot 1's keys must be published once its bit is set"
        );
    }
}

#[test]
fn epoch_publish_before_activate_holds() {
    check_exhaustive(epoch_scenario(EpochMutation::None));
}

#[test]
fn epoch_mutation_torn_swap_is_caught() {
    assert!(catches(epoch_scenario(EpochMutation::TornSwap)));
}

#[test]
fn epoch_mutation_activate_before_publish_is_caught() {
    assert!(catches(epoch_scenario(EpochMutation::ActivateBeforePublish)));
}

// ---------------------------------------------------------------------------
// Scenario 8: atomic wrap bookkeeping
// ---------------------------------------------------------------------------

/// The circular scan's lock-free wrap ledger: slot 0 enters with a budget
/// of two pages and two recorders race to consume it (the shape of a fault
/// re-dispatch racing the scan), while an admitter activates slot 1
/// mid-wrap and the main thread stamps from a mask snapshot. Invariants:
/// the budget is consumed exactly (no lost decrement), exactly one
/// recorder observes the completing 1→0 edge and clears the bit, and a
/// snapshot that observes an active bit always sees the slot's initialized
/// budget (budget-then-activate).
fn wrap_scenario(mutation: WrapMutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let ledger = Arc::new(WrapLedger::with_mutation(64, mutation));
        ledger.activate(0, 2);
        let members = {
            let mut b = QueryBitmap::zeros(64);
            b.set(0);
            b
        };
        let completions = Arc::new(AtomicU64::new(0));
        let recorders: Vec<_> = (0..2)
            .map(|_| {
                let (ledger, completions, members) = (
                    Arc::clone(&ledger),
                    Arc::clone(&completions),
                    members.clone(),
                );
                thread::spawn(move || {
                    let done = ledger.record_page(&members);
                    completions.fetch_add(done.len() as u64, Ordering::AcqRel);
                })
            })
            .collect();
        let admitter = {
            let ledger = Arc::clone(&ledger);
            thread::spawn(move || ledger.activate(1, 1))
        };
        // The scan's view: stamp from a mask snapshot; an observed bit must
        // come with its page budget already stored.
        let snapshot = ledger.snapshot();
        if snapshot.get(1) {
            assert!(
                ledger.emit_left(1) >= 1,
                "active slot observed without an initialized budget"
            );
            let mut stamp = QueryBitmap::zeros(64);
            stamp.set(1);
            assert_eq!(ledger.record_page(&stamp), vec![1u32]);
        }
        for t in recorders {
            t.join().unwrap();
        }
        admitter.join().unwrap();
        assert_eq!(ledger.emit_left(0), 0, "a page decrement was lost");
        assert!(!ledger.is_active(0), "completed slot still active");
        assert_eq!(
            completions.load(Ordering::Acquire),
            1,
            "the 1→0 completion edge must be observed exactly once"
        );
    }
}

#[test]
fn wrap_bookkeeping_holds() {
    check_exhaustive(wrap_scenario(WrapMutation::None));
}

#[test]
fn wrap_mutation_lost_decrement_is_caught() {
    assert!(catches(wrap_scenario(WrapMutation::LostDecrement)));
}

// ---------------------------------------------------------------------------
// Scenario 9: sharded MPMC pending drain
// ---------------------------------------------------------------------------

/// [`window_scenario`] re-run against the sharded pending set that replaces
/// the single-mutex [`PendingSlot`] on the stages and under the fabric
/// queue: a window worker drains all shards while two submitters race
/// their pushes onto different shards. Invariants: every submission rides
/// exactly one window across the racing drain and the final sweep, and the
/// depth ledger balances.
fn sharded_scenario(mutation: ShardMutation) -> impl Fn() + Send + Sync + 'static {
    move || {
        let slot: Arc<ShardedSlot<u32>> = Arc::new(ShardedSlot::with_mutation(2, mutation));
        let ledger = Arc::new(WindowLedger::new(u64::MAX));
        let drained = Arc::new(AtomicU64::new(0));
        let submitter = {
            let (slot, ledger) = (Arc::clone(&slot), Arc::clone(&ledger));
            thread::spawn(move || {
                ledger.add(1);
                slot.push(7);
            })
        };
        let window = {
            let (slot, ledger, drained) =
                (Arc::clone(&slot), Arc::clone(&ledger), Arc::clone(&drained));
            thread::spawn(move || {
                let batch = slot.drain();
                ledger.sub(batch.len() as u64);
                drained.fetch_add(batch.len() as u64, Ordering::AcqRel);
            })
        };
        ledger.add(1);
        slot.push(8);
        submitter.join().unwrap();
        window.join().unwrap();
        let batch = slot.drain();
        ledger.sub(batch.len() as u64);
        let total = drained.load(Ordering::Acquire) + batch.len() as u64;
        assert_eq!(total, 2, "a submission was lost or drained twice");
        assert_eq!(ledger.pending(), 0, "depth ledger out of balance");
    }
}

#[test]
fn sharded_drain_vs_submission_holds() {
    check_exhaustive(sharded_scenario(ShardMutation::None));
}

#[test]
fn sharded_mutation_torn_drain_is_caught() {
    assert!(catches(sharded_scenario(ShardMutation::TornDrain)));
}

// ---------------------------------------------------------------------------
// Cross-cutting checks
// ---------------------------------------------------------------------------

#[test]
fn preemption_bound_shrinks_the_search() {
    // The bound is what keeps the suite's wall-clock in check as scenarios
    // grow: each extra allowed preemption widens the explored subspace
    // strictly, so bound N is a strict subset of bound N+1 on the same
    // scenario — and the bugs (the mutation variants above) already
    // surface at the suite's bound.
    let tighter = explore(Some(1), slots_scenario(SlotMutation::None, 2));
    let wider = explore(Some(2), slots_scenario(SlotMutation::None, 2));
    assert!(tighter.complete && wider.complete);
    assert!(
        tighter.schedules < wider.schedules,
        "bound must prune ({} vs {})",
        tighter.schedules,
        wider.schedules
    );
}

#[test]
fn production_types_degrade_outside_the_model() {
    // The same protocol objects must behave as plain concurrent types when
    // no model is active: the `--cfg interleave` build of the whole
    // workspace still runs its ordinary tests.
    let slots = ServiceSlots::new();
    let ts: Vec<_> = (0..4)
        .map(|i| {
            let slots = Arc::clone(&slots);
            std::thread::spawn(move || {
                let permit = slots.try_claim(2, i % 2, 2);
                let claimed = permit.is_some();
                drop(permit);
                claimed
            })
        })
        .collect();
    let claims = ts.into_iter().filter_map(|t| t.join().unwrap().then_some(())).count();
    assert!(claims >= 2, "cap 2 admits at least two of four");
    assert_eq!(slots.outstanding(), 0);
}
