//! Master correctness property: every engine configuration returns the same
//! result set for the same workload. This is what makes the performance
//! comparisons meaningful — all six configurations compute identical
//! answers; only *how* they share differs.

use std::sync::OnceLock;

use workshare::harness::{run_batch, run_batch_on};
use workshare::{workload, Dataset, ExchangeKind, IoMode, NamedConfig, RunConfig, StarQuery};
use workshare_common::value::Row;

fn ssb() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::ssb(0.05, 1234))
}

fn tpch() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::tpch(0.05, 1234))
}

fn results_for(
    dataset: &Dataset,
    fact: &str,
    cfg: &RunConfig,
    queries: &[StarQuery],
) -> Vec<Vec<Row>> {
    let rep = run_batch_on(dataset, cfg, fact, queries, true);
    rep.results
        .unwrap()
        .iter()
        .map(|r| (**r).clone())
        .collect()
}

fn assert_all_engines_agree(dataset: &Dataset, fact: &str, queries: &[StarQuery]) {
    let mut baseline: Option<Vec<Vec<Row>>> = None;
    for engine in NamedConfig::all() {
        let cfg = RunConfig::named(engine);
        let got = results_for(dataset, fact, &cfg, queries);
        assert_eq!(got.len(), queries.len(), "{engine:?} lost queries");
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(&got, b, "{engine:?} diverged from baseline"),
        }
    }
}

#[test]
fn q3_2_random_batch_all_engines() {
    let mut r = workload::rng(77);
    let queries: Vec<_> = (0..5)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    assert_all_engines_agree(ssb(), "lineorder", &queries);
}

#[test]
fn mixed_templates_all_engines() {
    let queries = workload::ssb_mix(6, 3);
    assert_all_engines_agree(ssb(), "lineorder", &queries);
}

#[test]
fn high_similarity_batch_all_engines() {
    // 12 queries, only 2 distinct plans: maximal sharing activity.
    let queries = workload::limited_plans(12, 2, 5, workload::ssb_q3_2_narrow);
    assert_all_engines_agree(ssb(), "lineorder", &queries);
}

#[test]
fn tpch_q1_identical_batch_qpipe_variants() {
    let queries: Vec<_> = (0..6).map(|i| workload::tpch_q1(i as u64)).collect();
    // CJOIN needs the lineorder star schema; Q1 has no joins, so compare
    // the QPipe variants and Volcano.
    let mut baseline: Option<Vec<Vec<Row>>> = None;
    for engine in [
        NamedConfig::Qpipe,
        NamedConfig::QpipeCs,
        NamedConfig::QpipeSp,
        NamedConfig::Volcano,
    ] {
        for kind in [ExchangeKind::Spl, ExchangeKind::Fifo] {
            let mut cfg = RunConfig::named(engine);
            cfg.exchange = kind;
            let got = results_for(tpch(), "lineitem", &cfg, &queries);
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(&got, b, "{engine:?}/{kind:?} diverged"),
            }
        }
    }
    // The aggregate must be non-trivial.
    let rows = &baseline.unwrap()[0];
    assert!(!rows.is_empty(), "Q1 must return groups");
}

#[test]
fn disk_modes_do_not_change_answers() {
    let mut r = workload::rng(12);
    let queries: Vec<_> = (0..3)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let mut baseline: Option<Vec<Vec<Row>>> = None;
    for io in [IoMode::Memory, IoMode::BufferedDisk, IoMode::DirectDisk] {
        for engine in [NamedConfig::QpipeSp, NamedConfig::CjoinSp] {
            let mut cfg = RunConfig::named(engine);
            cfg.io_mode = io;
            let got = results_for(ssb(), "lineorder", &cfg, &queries);
            match &baseline {
                None => baseline = Some(got),
                Some(b) => assert_eq!(&got, b, "{engine:?}/{io:?} diverged"),
            }
        }
    }
}

#[test]
fn fifo_and_spl_exchanges_agree_under_sharing() {
    let queries = workload::limited_plans(8, 2, 9, workload::ssb_q3_2_narrow);
    let mut baseline: Option<Vec<Vec<Row>>> = None;
    for kind in [ExchangeKind::Spl, ExchangeKind::Fifo] {
        let mut cfg = RunConfig::named(NamedConfig::QpipeSp);
        cfg.exchange = kind;
        let got = results_for(ssb(), "lineorder", &cfg, &queries);
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(&got, b, "{kind:?} diverged"),
        }
    }
}

#[test]
fn empty_and_singleton_batches() {
    let rep = run_batch(ssb(), &RunConfig::named(NamedConfig::QpipeSp), &[], false);
    assert_eq!(rep.queries, 0);
    let mut r = workload::rng(1);
    let one = vec![workload::ssb_q1_1(0, &mut r)];
    assert_all_engines_agree(ssb(), "lineorder", &one);
}
