//! Property-based tests of the **overload-safe service loop**: for random
//! arrival bursts — closed- or open-loop, multi-tenant, with or without a
//! queue cap, a deadline, and injected bind errors — every submitted query
//! must end in exactly one of {completed, shed, error}, and the per-tenant
//! rows must add up to the totals, under both the engine-level admission
//! fabric and per-stage admission pools.

use std::sync::OnceLock;

use proptest::prelude::*;

use workshare::harness::{run_service, ServiceLoad};
use workshare::{workload, Dataset, ExecPolicy, RunConfig, ServiceConfig};

fn ssb() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::ssb(0.05, 4321))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation and per-tenant accounting under random service loads.
    #[test]
    fn every_submission_is_accounted_exactly_once(
        clients in 1usize..5,
        tenants in 1usize..4,
        open_loop in proptest::bool::ANY,
        rate in 100.0f64..1500.0,
        capped in proptest::bool::ANY,
        cap in 1usize..6,
        tight_deadline in proptest::bool::ANY,
        fabric in proptest::bool::ANY,
        inject_errors in proptest::bool::ANY,
        stride in 2u64..5,
        inject_panics in proptest::bool::ANY,
        panic_stride in 3u64..6,
        seed in 0u64..1000,
    ) {
        let open_rate = open_loop.then_some(rate);
        let queue_cap = capped.then_some(cap);
        let err_stride = inject_errors.then_some(stride);
        let fault_panic_stride = inject_panics.then_some(panic_stride);
        let mut cfg = RunConfig::governed(ExecPolicy::Adaptive);
        cfg.admission_fabric = fabric;
        cfg.service = ServiceConfig {
            queue_cap,
            // Tight enough that the predicted latency sheds some (often
            // all) submissions at SF 0.05, loose enough to stay non-zero.
            deadline_secs: tight_deadline.then_some(0.002),
            // Mid-execution worker panics: the completion guard must turn
            // them into error outcomes, never lost queries or deadlock.
            fault_panic_stride,
            ..ServiceConfig::default()
        };
        let load = ServiceLoad {
            clients,
            arrivals_per_sec: open_rate,
            tenants,
            window_secs: 0.25,
            seed,
        };
        let rep = run_service(ssb(), &cfg, "lineorder", load, move |id, rng| {
            let mut q = workload::ssb_q3_2(id, rng);
            if err_stride.is_some_and(|s| id % s == 0) {
                // Unresolvable payload column: binding must surface a
                // typed per-query error outcome, never a panic.
                q.dims[0].payload = vec!["no_such_col".into()];
            }
            q
        });

        prop_assert!(rep.is_conserved(), "{rep:?}");
        prop_assert_eq!(rep.clients, clients);

        // Per-tenant rows: one per tenant, each internally balanced, and
        // their sums reproduce the engine-wide totals.
        prop_assert_eq!(rep.tenants.len(), tenants);
        for row in &rep.tenants {
            prop_assert_eq!(
                row.submitted,
                row.completed + row.shed + row.errors,
                "tenant {} unbalanced: {row:?}",
                row.tenant
            );
        }
        let sub: u64 = rep.tenants.iter().map(|t| t.submitted).sum();
        let comp: u64 = rep.tenants.iter().map(|t| t.completed).sum();
        let shed: u64 = rep.tenants.iter().map(|t| t.shed).sum();
        let errs: u64 = rep.tenants.iter().map(|t| t.errors).sum();
        prop_assert_eq!(sub, rep.submitted);
        prop_assert_eq!(comp, rep.completed + rep.completed_late);
        prop_assert_eq!(shed, rep.shed_queue_full + rep.shed_deadline);
        prop_assert_eq!(errs, rep.errors);

        // An inactive service config admits everything (legacy behavior).
        if queue_cap.is_none() && !tight_deadline {
            prop_assert_eq!(rep.shed_queue_full + rep.shed_deadline, 0);
        }
        // Without a cap there is no queue to fill.
        if queue_cap.is_none() {
            prop_assert_eq!(rep.shed_queue_full, 0);
        }
        // Without a deadline nothing sheds on predicted latency, and
        // goodput is plain throughput.
        if !tight_deadline {
            prop_assert_eq!(rep.shed_deadline, 0);
            prop_assert!(
                (rep.goodput_per_hour - rep.queries_per_hour).abs() < 1e-6,
                "{rep:?}"
            );
        }
        // Injected bind errors and worker panics only ever produce error
        // outcomes; without injection the workload is error-free.
        if err_stride.is_none() && fault_panic_stride.is_none() {
            prop_assert_eq!(rep.errors, 0, "{rep:?}");
        }
        // Latency percentiles exist whenever something completed in-window.
        if rep.completed > 0 {
            prop_assert!(rep.p50_latency_secs > 0.0);
            prop_assert!(rep.p50_latency_secs <= rep.p99_latency_secs);
        }
    }
}

/// Deterministic companion to the property above: force the shared path
/// (every admitted query executes a worker closure with the injected
/// panic), and require that stride-3 faults really fire, surface as typed
/// error outcomes, and leave the report conserved — the completion guard
/// poisons the abandoned slot and the queue permit is released by its RAII
/// drop, so a panicking worker can neither lose a query nor wedge the
/// admission queue.
#[test]
fn injected_worker_panics_surface_as_errors_and_conserve() {
    let mut cfg = RunConfig::governed(ExecPolicy::Shared);
    cfg.service = ServiceConfig {
        fault_panic_stride: Some(3),
        ..ServiceConfig::default()
    };
    let load = ServiceLoad {
        clients: 3,
        arrivals_per_sec: None,
        tenants: 2,
        window_secs: 0.25,
        seed: 7,
    };
    let rep = run_service(ssb(), &cfg, "lineorder", load, |id, rng| {
        workload::ssb_q3_2(id, rng)
    });
    assert!(rep.is_conserved(), "{rep:?}");
    assert!(rep.submitted > 0 && rep.completed > 0, "{rep:?}");
    assert!(rep.errors > 0, "stride-3 faults must have fired: {rep:?}");
    for row in &rep.tenants {
        assert_eq!(
            row.submitted,
            row.completed + row.shed + row.errors,
            "tenant {} unbalanced: {row:?}",
            row.tenant
        );
    }
}
