//! Behavioral tests of the sharing machinery itself: that the mechanisms the
//! paper describes actually engage, and that their resource effects have the
//! right sign.

use std::sync::OnceLock;

use workshare::harness::{run_batch, run_batch_on};
use workshare::{workload, Dataset, ExchangeKind, IoMode, NamedConfig, RunConfig};
use workshare_sim::CostKind;

fn ssb() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::ssb(0.1, 99))
}

#[test]
fn circular_scans_cut_disk_traffic() {
    let mut r = workload::rng(4);
    let queries: Vec<_> = (0..8)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let mut independent = RunConfig::named(NamedConfig::Qpipe);
    independent.io_mode = IoMode::DirectDisk;
    let mut shared = RunConfig::named(NamedConfig::QpipeCs);
    shared.io_mode = IoMode::DirectDisk;
    let a = run_batch(ssb(), &independent, &queries, false);
    let b = run_batch(ssb(), &shared, &queries, false);
    assert!(
        b.disk.bytes_read * 4 < a.disk.bytes_read,
        "shared scans must read far less: shared={} independent={}",
        b.disk.bytes_read,
        a.disk.bytes_read
    );
}

#[test]
fn sp_joins_cut_cpu_on_similar_workloads() {
    let queries = workload::limited_plans(16, 2, 7, workload::ssb_q3_2_narrow);
    let cs = run_batch(ssb(), &RunConfig::named(NamedConfig::QpipeCs), &queries, false);
    let sp = run_batch(ssb(), &RunConfig::named(NamedConfig::QpipeSp), &queries, false);
    let cs_cpu = cs.cpu.total_secs();
    let sp_cpu = sp.cpu.total_secs();
    assert!(
        sp_cpu < cs_cpu * 0.7,
        "SP must remove redundant join work: sp={sp_cpu} cs={cs_cpu}"
    );
    let sharing = sp.qpipe_sharing.unwrap();
    let shares: u64 = sharing.join_satellites_by_level.iter().sum();
    assert!(shares >= 10, "14 of 16 queries should share: {sharing:?}");
}

#[test]
fn cjoin_hashing_cpu_stays_flat_with_concurrency() {
    // The Fig. 12 signature: shared hashing is independent of query count.
    let runs: Vec<f64> = [4usize, 16]
        .iter()
        .map(|&n| {
            let mut r = workload::rng(8);
            let queries: Vec<_> = (0..n)
                .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, 8, 8))
                .collect();
            let rep = run_batch(ssb(), &RunConfig::named(NamedConfig::Cjoin), &queries, false);
            rep.cpu.secs(CostKind::Hashing)
        })
        .collect();
    assert!(
        runs[1] < runs[0] * 2.0,
        "4x the queries must cost < 2x the shared hashing: {runs:?}"
    );
}

#[test]
fn query_centric_hashing_cpu_scales_with_concurrency() {
    let runs: Vec<f64> = [4usize, 16]
        .iter()
        .map(|&n| {
            let mut r = workload::rng(8);
            let queries: Vec<_> = (0..n)
                .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, 8, 8))
                .collect();
            let rep = run_batch(ssb(), &RunConfig::named(NamedConfig::QpipeCs), &queries, false);
            rep.cpu.secs(CostKind::Hashing)
        })
        .collect();
    assert!(
        runs[1] > runs[0] * 3.0,
        "4x the queries must cost ~4x the private hashing: {runs:?}"
    );
}

#[test]
fn cjoin_sp_skips_admission_for_identical_packets() {
    let queries = workload::limited_plans(12, 3, 11, workload::ssb_q3_2_narrow);
    let plain = run_batch(ssb(), &RunConfig::named(NamedConfig::Cjoin), &queries, false);
    let sp = run_batch(ssb(), &RunConfig::named(NamedConfig::CjoinSp), &queries, false);
    let plain_stats = plain.cjoin.clone().unwrap();
    let sp_stats = sp.cjoin.clone().unwrap();
    assert_eq!(plain_stats.admitted, 12);
    assert_eq!(plain_stats.sp_shares, 0);
    assert!(
        sp_stats.admitted <= 3,
        "only distinct plans admitted: {sp_stats:?}"
    );
    assert_eq!(sp_stats.admitted + sp_stats.sp_shares, 12);
    // Admission CPU drops accordingly.
    assert!(sp.admission_secs() < plain.admission_secs());
}

#[test]
fn push_sp_charges_copies_pull_sp_does_not() {
    let queries: Vec<_> = (0..8).map(|i| workload::tpch_q1(i as u64)).collect();
    let tpch = Dataset::tpch(0.05, 5);
    let mut fifo = RunConfig::named(NamedConfig::QpipeCs);
    fifo.exchange = ExchangeKind::Fifo;
    let mut spl = RunConfig::named(NamedConfig::QpipeCs);
    spl.exchange = ExchangeKind::Spl;
    let f = run_batch_on(&tpch, &fifo, "lineitem", &queries, false);
    let s = run_batch_on(&tpch, &spl, "lineitem", &queries, false);
    assert!(
        f.cpu.secs(CostKind::Copy) > 0.0,
        "push SP must pay forwarding copies"
    );
    assert_eq!(
        s.cpu.secs(CostKind::Copy),
        0.0,
        "pull SP must not forward at all"
    );
    assert!(s.mean_latency_secs() <= f.mean_latency_secs() * 1.01);
}

#[test]
fn step_wop_closes_after_first_output() {
    // Submit one query; let it finish completely; submit an identical one.
    // With SP the second must NOT reuse (host closed) yet must be correct.
    let queries = workload::limited_plans(2, 1, 13, workload::ssb_q3_2_narrow);
    let dataset = ssb();
    let cfg = RunConfig::named(NamedConfig::QpipeSp);
    let machine = workshare_sim::Machine::new(cfg.machine_config());
    let storage = dataset.instantiate(cfg.storage_config(), cfg.cost);
    let engine = workshare::Engine::new(&machine, &storage, &cfg, "lineorder");
    let e2 = engine.clone();
    let q0 = queries[0].clone();
    let q1 = queries[1].clone();
    let same = machine
        .spawn("seq", move |_ctx| {
            let t0 = e2.submit(&q0);
            let r0 = t0.wait();
            let t1 = e2.submit(&q1);
            let r1 = t1.wait();
            r0 == r1
        })
        .join()
        .unwrap();
    assert!(same, "sequential identical queries agree");
    let sharing = engine.qpipe_sharing().unwrap();
    let shares: u64 = sharing.join_satellites_by_level.iter().sum();
    assert_eq!(shares, 0, "step WoP must be closed after completion");
    engine.shutdown();
}

#[test]
fn fs_cache_masks_preprocessor_vs_direct_io() {
    // Fig. 13's mechanism: with buffered I/O the CJOIN scan reads extents
    // (few seeks); with direct I/O per-page requests slow the preprocessor.
    let mut r = workload::rng(21);
    let queries: Vec<_> = (0..4)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    // Serial admission keeps the physical dimension reads deterministic
    // (shared-scan admission's read count varies with how submissions
    // batch, which is irrelevant to the I/O-pattern contrast probed here).
    let mut buffered = RunConfig::named(NamedConfig::Cjoin);
    buffered.io_mode = IoMode::BufferedDisk;
    buffered.cjoin_serial_admission = true;
    let mut direct = RunConfig::named(NamedConfig::Cjoin);
    direct.io_mode = IoMode::DirectDisk;
    direct.cjoin_serial_admission = true;
    let b = run_batch(ssb(), &buffered, &queries, false);
    let d = run_batch(ssb(), &direct, &queries, false);
    assert!(
        d.disk.requests > b.disk.requests * 4,
        "direct I/O must issue many more requests: {} vs {}",
        d.disk.requests,
        b.disk.requests
    );
    assert!(
        d.makespan_secs > b.makespan_secs,
        "direct I/O must be slower: {} vs {}",
        d.makespan_secs,
        b.makespan_secs
    );
}

#[test]
fn volcano_uses_fewer_total_cpu_but_no_sharing() {
    let mut r = workload::rng(31);
    let one: Vec<_> = (0..1)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let v = run_batch(ssb(), &RunConfig::named(NamedConfig::Volcano), &one, false);
    let q = run_batch(ssb(), &RunConfig::named(NamedConfig::Qpipe), &one, false);
    // Mature single-threaded executor: less total work for one query.
    assert!(v.cpu.total_secs() < q.cpu.total_secs());
    assert!(v.qpipe_sharing.is_none() && v.cjoin.is_none());
}
