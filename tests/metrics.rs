//! Invariants of the measurement pipeline itself — the numbers the figures
//! are built from must be internally consistent for every engine.

use std::sync::OnceLock;

use workshare::harness::{run_batch, run_clients};
use workshare::{workload, Dataset, IoMode, NamedConfig, RunConfig};
use workshare_sim::{CostKind, COST_KINDS};

fn ssb() -> &'static Dataset {
    static D: OnceLock<Dataset> = OnceLock::new();
    D.get_or_init(|| Dataset::ssb(0.05, 2024))
}

#[test]
fn report_invariants_hold_for_every_engine() {
    let mut r = workload::rng(41);
    let queries: Vec<_> = (0..6)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    for engine in NamedConfig::all() {
        let cfg = RunConfig::named(engine);
        let rep = run_batch(ssb(), &cfg, &queries, false);
        assert_eq!(rep.queries, 6, "{engine:?}");
        assert_eq!(rep.latencies_secs.len(), 6, "{engine:?}");
        for &l in &rep.latencies_secs {
            assert!(l > 0.0, "{engine:?}: non-positive latency");
            assert!(
                l <= rep.makespan_secs * 1.0001,
                "{engine:?}: latency {l} beyond makespan {}",
                rep.makespan_secs
            );
        }
        // Cores bound by the machine.
        assert!(rep.avg_cores_used > 0.0 && rep.avg_cores_used <= 24.0, "{engine:?}");
        // Work conservation: busy cores × makespan ≈ total charged CPU.
        let busy = rep.avg_cores_used * rep.makespan_secs;
        let charged = rep.cpu.total_secs();
        assert!(
            (busy - charged).abs() / charged.max(1e-9) < 0.05,
            "{engine:?}: busy={busy} charged={charged}"
        );
        // Memory-resident run: no disk traffic.
        assert_eq!(rep.disk.bytes_read, 0, "{engine:?}");
        assert_eq!(rep.read_rate_mbps, 0.0, "{engine:?}");
        // Breakdown categories are all non-negative and total to the sum.
        let total: f64 = COST_KINDS.iter().map(|&k| rep.cpu.secs(k)).sum();
        assert!((total - rep.cpu.total_secs()).abs() < 1e-9, "{engine:?}");
    }
}

#[test]
fn disk_metrics_consistent_on_disk_modes() {
    let mut r = workload::rng(42);
    let queries: Vec<_> = (0..4)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    for io in [IoMode::BufferedDisk, IoMode::DirectDisk] {
        let mut cfg = RunConfig::named(NamedConfig::QpipeCs);
        cfg.io_mode = io;
        let rep = run_batch(ssb(), &cfg, &queries, false);
        assert!(rep.disk.bytes_read > 0, "{io:?}");
        assert!(rep.disk.requests > 0, "{io:?}");
        assert!(rep.disk.busy_ns > 0.0, "{io:?}");
        assert!(rep.read_rate_mbps > 0.0, "{io:?}");
        // The device can't be busy longer than the run.
        assert!(
            rep.disk.busy_ns <= rep.makespan_secs * 1e9 * 1.0001,
            "{io:?}: busy {} > makespan {}",
            rep.disk.busy_ns,
            rep.makespan_secs * 1e9
        );
    }
}

#[test]
fn admission_time_only_reported_for_cjoin() {
    let mut r = workload::rng(43);
    let queries: Vec<_> = (0..3)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let qp = run_batch(ssb(), &RunConfig::named(NamedConfig::QpipeSp), &queries, false);
    assert_eq!(qp.admission_secs(), 0.0);
    assert_eq!(qp.cpu.secs(CostKind::Routing), 0.0);
    let cj = run_batch(ssb(), &RunConfig::named(NamedConfig::Cjoin), &queries, false);
    assert!(cj.admission_secs() > 0.0);
    assert!(cj.cpu.secs(CostKind::Routing) > 0.0);
}

#[test]
fn throughput_report_is_consistent() {
    let cfg = RunConfig::named(NamedConfig::CjoinSp);
    let rep = run_clients(ssb(), &cfg, "lineorder", 4, 1.0, 3, |id, rng| {
        workload::ssb_q3_2(id, rng)
    });
    assert!(rep.completed > 0);
    let per_hour = rep.completed as f64 / (1.0 / 3600.0);
    assert!((rep.queries_per_hour - per_hour).abs() < 1e-6);
    assert!(rep.mean_latency_secs > 0.0);
    assert!(rep.avg_cores_used > 0.0 && rep.avg_cores_used <= 24.0);

    // Service accounting with the default (inactive) ServiceConfig: every
    // submission is admitted, nothing sheds or errors, and goodput equals
    // throughput because no SLO target is set.
    assert!(rep.is_conserved(), "{rep:?}");
    assert_eq!(rep.submitted, rep.completed + rep.completed_late, "{rep:?}");
    assert_eq!(rep.shed_queue_full + rep.shed_deadline + rep.errors, 0);
    assert!((rep.goodput_per_hour - rep.queries_per_hour).abs() < 1e-6);

    // Percentiles come from the latency histogram (exact nearest-rank at
    // this sample count): positive, ordered, and consistent with the mean
    // (the median of a non-negative sample is at most twice its mean).
    assert!(rep.p50_latency_secs > 0.0, "{rep:?}");
    assert!(rep.p50_latency_secs <= rep.p99_latency_secs, "{rep:?}");
    assert!(rep.p50_latency_secs <= 2.0 * rep.mean_latency_secs, "{rep:?}");
    assert!(rep.p99_latency_secs <= 1.0, "one-second window bounds latency");

    // A single-tenant run reports one tenant row that mirrors the totals.
    assert_eq!(rep.tenants.len(), 1);
    let t = &rep.tenants[0];
    assert_eq!(t.tenant, 0);
    assert_eq!(t.submitted, rep.submitted);
    assert_eq!(t.completed, rep.completed + rep.completed_late);
    assert_eq!(t.shed + t.errors, 0);
}

#[test]
fn stage_rows_label_shared_queries_by_fact_table() {
    // Two star queries over two fact tables through the governed shared
    // path: the report's stage rows must say *which* stage served each
    // shared query — the label carries the fact-table name.
    let d = Dataset::ssb_two_facts(0.05, 7);
    let mut r = workload::rng(5);
    let q1 = workload::ssb_q3_2(1, &mut r);
    let mut q2 = workload::ssb_q3_2(2, &mut r);
    q2.fact = "lineorder2".into();
    let cfg = RunConfig::governed(workshare::ExecPolicy::Shared);
    let rep = run_batch(&d, &cfg, &[q1, q2], false);
    let labels: Vec<&str> = rep.stages.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(
        labels,
        vec!["Shared(lineorder)", "Shared(lineorder2)"],
        "route labels must distinguish the serving stage: {:?}",
        rep.stages
    );
    for row in &rep.stages {
        assert_eq!(row.shared_queries, 1, "{row:?}");
        assert_eq!(row.stats.admitted, 1, "{row:?}");
    }
    // The aggregate CJOIN counters cover both stages.
    assert_eq!(rep.cjoin.unwrap().admitted, 2);
    // Ungoverned engines report no stage rows.
    let rep = run_batch(ssb(), &RunConfig::named(NamedConfig::CjoinSp), &[], false);
    assert!(rep.stages.is_empty());
}

#[test]
fn fabric_counts_each_physical_page_once_and_keeps_logical_rows_invariant() {
    // Two fact tables' star queries filter the same dimension tables
    // through the governed shared path. With the cross-stage admission
    // fabric (the default) each shared dimension is physically scanned
    // once per batching window for BOTH stages; with per-stage pools each
    // stage scans its dimensions itself. Physical reads must be attributed
    // to the fabric and counted once per page; the per-stage logical
    // volume must not depend on which pool ran the scans.
    let d = Dataset::ssb_two_facts(0.05, 7);
    let cfg = RunConfig::governed(workshare::ExecPolicy::Shared);
    let mut r = workload::rng(5);
    let queries: Vec<_> = (0..4)
        .map(|i| {
            let mut q = workload::ssb_q3_2(i as u64, &mut r);
            if i % 2 == 1 {
                q.fact = "lineorder2".into();
            }
            q
        })
        .collect();
    let fabric_run = run_batch(&d, &cfg, &queries, false);
    let mut perstage_cfg = cfg;
    perstage_cfg.admission_fabric = false;
    let perstage_run = run_batch(&d, &perstage_cfg, &queries, false);

    // The fabric run reports fabric counters; the per-stage run does not.
    let fs = fabric_run.fabric.expect("fabric run must report FabricStats");
    assert!(perstage_run.fabric.is_none());
    assert!(fs.batches > 0, "{fs:?}");

    // Physical once-per-page accounting: every page the fabric read is in
    // its own counter (per-stage counters stay 0 — a page read once for
    // two stages belongs to neither), and the engine aggregate equals it.
    for row in &fabric_run.stages {
        assert_eq!(row.stats.admission_dim_pages, 0, "{row:?}");
    }
    let fabric_cj = fabric_run.cjoin.clone().unwrap();
    assert_eq!(fabric_cj.admission_dim_pages, fs.admission_dim_pages);
    // Exactly the distinct dimension page counts per window: the batch
    // submits at one virtual instant, so one window serves both stages and
    // scans customer + supplier + date once each.
    let sm = d.instantiate(cfg.storage_config(), cfg.cost);
    let pages = |t: &str| sm.page_count(sm.table(t)) as u64;
    let once = pages("customer") + pages("supplier") + pages("date");
    assert_eq!(fs.admission_dim_pages, once * fs.batches, "{fs:?}");
    assert!(fs.cross_stage_batches >= 1, "window never merged stages: {fs:?}");

    // Logical per-query volume is batching-invariant: identical per stage
    // and in aggregate, however the scans were pooled — while the fabric's
    // physical reads are at most the per-stage pools' (strictly less when
    // a window merged stages).
    let perstage_cj = perstage_run.cjoin.clone().unwrap();
    assert_eq!(fabric_cj.admission_dim_rows, perstage_cj.admission_dim_rows);
    assert_eq!(fabric_cj.admitted, perstage_cj.admitted);
    let per_stage_rows = |rep: &workshare::harness::RunReport| {
        let mut v: Vec<(String, u64)> = rep
            .stages
            .iter()
            .map(|s| (s.fact.clone(), s.stats.admission_dim_rows))
            .collect();
        v.sort();
        v
    };
    assert_eq!(per_stage_rows(&fabric_run), per_stage_rows(&perstage_run));
    assert!(
        fs.admission_dim_pages < perstage_cj.admission_dim_pages,
        "cross-stage sharing must reduce physical reads: fabric {fs:?} vs {perstage_cj:?}"
    );
}

#[test]
fn sharing_stats_bounded_by_query_count() {
    let queries = workload::limited_plans(10, 2, 4, workload::ssb_q3_2_narrow);
    let rep = run_batch(ssb(), &RunConfig::named(NamedConfig::QpipeSp), &queries, false);
    let s = rep.qpipe_sharing.unwrap();
    let join_shares: u64 = s.join_satellites_by_level.iter().sum();
    assert!(join_shares <= 10);
    // Q3.2 touches 4 tables; satellites bounded by queries × tables.
    assert!(s.scan_satellites <= 40);
    assert!(s.scan_hosts <= 4);
}
