//! Engine-level tests of the sharing governor: the three [`ExecPolicy`]
//! variants must agree on results, and the adaptive router must pick the
//! sane path at both ends of the concurrency spectrum.

use workshare::harness::run_batch;
use workshare::{workload, Dataset, ExecPolicy, NamedConfig, RunConfig, StarQuery};
use workshare_common::value::Row;
use workshare_common::{AggSpec, ColRef, Predicate};

fn dataset() -> Dataset {
    Dataset::ssb(0.05, 11)
}

fn q32_batch(n: usize, seed: u64) -> Vec<StarQuery> {
    let mut r = workload::rng(seed);
    (0..n).map(|i| workload::ssb_q3_2(i as u64, &mut r)).collect()
}

#[test]
fn all_policies_agree_on_results() {
    let d = dataset();
    let queries = q32_batch(4, 5);
    let baseline = run_batch(&d, &RunConfig::named(NamedConfig::Volcano), &queries, true);
    let expect: Vec<Vec<Row>> = baseline
        .results
        .unwrap()
        .iter()
        .map(|r| (**r).clone())
        .collect();
    for policy in [
        ExecPolicy::QueryCentric,
        ExecPolicy::Shared,
        ExecPolicy::Adaptive,
    ] {
        let rep = run_batch(&d, &RunConfig::governed(policy), &queries, true);
        let got: Vec<Vec<Row>> = rep
            .results
            .unwrap()
            .iter()
            .map(|r| (**r).clone())
            .collect();
        assert_eq!(got, expect, "{policy:?} diverged from Volcano");
    }
}

#[test]
fn adaptive_cold_start_completes_and_records_one_route() {
    // `active_queries == 0`, no calibration history: the governor must
    // still produce a correct result and coherent stats.
    let d = dataset();
    let mut r = workload::rng(3);
    let queries = vec![workload::ssb_q1_1(1, &mut r)];
    let baseline = run_batch(&d, &RunConfig::named(NamedConfig::Volcano), &queries, true);
    let rep = run_batch(
        &d,
        &RunConfig::governed(ExecPolicy::Adaptive),
        &queries,
        true,
    );
    assert_eq!(rep.results.unwrap()[0], baseline.results.unwrap()[0]);
    let gov = rep.governor.expect("governed run must report stats");
    assert_eq!(gov.routed_query_centric + gov.routed_shared, 1, "{gov:?}");
    assert_eq!(gov.flips, 0, "{gov:?}");
    // A date-only star on a memory-resident database is admission-bound:
    // the lone query runs its private plan.
    assert_eq!(gov.routed_query_centric, 1, "{gov:?}");
}

#[test]
fn adaptive_routes_memory_crowd_shared_since_admission_deserialized() {
    // Memory-resident crowd: before the admission de-serialization this
    // batch leaned query-centric, because every admission serialized in
    // the preprocessor and the queue term dominated the shared estimate.
    // With shared-scan admission (one dimension scan per batch, run off
    // the scan thread) the crowd amortizes admission too, so the governor
    // keeps it on the shared path.
    let d = dataset();
    let rep = run_batch(
        &d,
        &RunConfig::governed(ExecPolicy::Adaptive),
        &q32_batch(32, 7),
        false,
    );
    let gov = rep.governor.expect("governed run must report stats");
    assert!(
        gov.routed_shared > gov.routed_query_centric,
        "32-query batch should lean shared with de-serialized admission: {gov:?}"
    );
    assert!(gov.flips <= 2, "routing flapped: {gov:?}");
    // The shared queries really entered the GQP via batched admission
    // (exact page sharing is asserted deterministically in the stage
    // tests; batch composition here depends on arrival interleaving).
    let cj = rep.cjoin.expect("governed run reports CJOIN stats");
    assert!(cj.admitted > 0 && cj.admission_dim_pages > 0, "{cj:?}");
}

#[test]
fn adaptive_routes_disk_crowd_shared() {
    // Disk-resident: one circular scan feeds everyone while private scans
    // split the device — the crowd must go shared.
    let d = Dataset::ssb(0.3, 11);
    let mut cfg = RunConfig::governed(ExecPolicy::Adaptive);
    cfg.io_mode = workshare::IoMode::BufferedDisk;
    let rep = run_batch(&d, &cfg, &q32_batch(12, 7), false);
    let gov = rep.governor.expect("governed run must report stats");
    assert!(
        gov.routed_shared > gov.routed_query_centric,
        "disk-resident 12-query batch should lean shared: {gov:?}"
    );
    assert!(gov.flips <= 1, "routing flapped: {gov:?}");
    // The shared queries really entered the GQP.
    assert!(rep.cjoin.unwrap().admitted > 0);
}

#[test]
fn governed_shared_falls_back_to_qpipe_for_non_star_queries() {
    let d = dataset();
    // A dimension-less scan-aggregate cannot enter the CJOIN GQP; the
    // governed engine's shared route must run it on QPipe instead.
    let q = StarQuery {
        id: 1,
        fact: "lineorder".into(),
        fact_pred: Predicate::True,
        dims: vec![],
        group_by: vec![],
        aggs: vec![AggSpec::sum(ColRef::fact("lo_revenue"))],
        order_by: vec![],
    };
    let queries = vec![q];
    let baseline = run_batch(&d, &RunConfig::named(NamedConfig::Volcano), &queries, true);
    let rep = run_batch(
        &d,
        &RunConfig::governed(ExecPolicy::Shared),
        &queries,
        true,
    );
    assert_eq!(
        rep.results.unwrap()[0],
        baseline.results.unwrap()[0],
        "qpipe fallback result diverged"
    );
    assert_eq!(rep.cjoin.unwrap().admitted, 0, "must not enter the GQP");
}

#[test]
fn policy_labels_flow_into_reports() {
    let d = dataset();
    let rep = run_batch(
        &d,
        &RunConfig::governed(ExecPolicy::Adaptive),
        &q32_batch(2, 9),
        false,
    );
    assert_eq!(rep.config, "Adaptive");
    let rep = run_batch(&d, &RunConfig::named(NamedConfig::QpipeSp), &q32_batch(2, 9), false);
    assert_eq!(rep.config, "QPipe-SP");
    assert!(rep.governor.is_none());
}
