//! Engine-level tests of the sharing governor: the three [`ExecPolicy`]
//! variants must agree on results, the adaptive router must pick the sane
//! path at both ends of the concurrency spectrum, its per-shape hysteresis
//! must survive alternating workload shapes, and its latency-feedback
//! calibration must converge under closed-loop arrivals.

use workshare::harness::{run_batch, run_clients};
use workshare::{
    workload, Dataset, ExecPolicy, GovernorConfig, NamedConfig, Route, RunConfig,
    SharingGovernor, StarQuery,
};
use workshare_common::value::Row;
use workshare_common::{AggSpec, ColRef, CostModel, Predicate, SharingSignals};

fn dataset() -> Dataset {
    Dataset::ssb(0.05, 11)
}

fn q32_batch(n: usize, seed: u64) -> Vec<StarQuery> {
    let mut r = workload::rng(seed);
    (0..n).map(|i| workload::ssb_q3_2(i as u64, &mut r)).collect()
}

#[test]
fn all_policies_agree_on_results() {
    let d = dataset();
    let queries = q32_batch(4, 5);
    let baseline = run_batch(&d, &RunConfig::named(NamedConfig::Volcano), &queries, true);
    let expect: Vec<Vec<Row>> = baseline
        .results
        .unwrap()
        .iter()
        .map(|r| (**r).clone())
        .collect();
    for policy in [
        ExecPolicy::QueryCentric,
        ExecPolicy::Shared,
        ExecPolicy::Adaptive,
    ] {
        let rep = run_batch(&d, &RunConfig::governed(policy), &queries, true);
        let got: Vec<Vec<Row>> = rep
            .results
            .unwrap()
            .iter()
            .map(|r| (**r).clone())
            .collect();
        assert_eq!(got, expect, "{policy:?} diverged from Volcano");
    }
}

#[test]
fn adaptive_cold_start_completes_and_records_one_route() {
    // `active_queries == 0`, no calibration history: the governor must
    // still produce a correct result and coherent stats.
    let d = dataset();
    let mut r = workload::rng(3);
    let queries = vec![workload::ssb_q1_1(1, &mut r)];
    let baseline = run_batch(&d, &RunConfig::named(NamedConfig::Volcano), &queries, true);
    let rep = run_batch(
        &d,
        &RunConfig::governed(ExecPolicy::Adaptive),
        &queries,
        true,
    );
    assert_eq!(rep.results.unwrap()[0], baseline.results.unwrap()[0]);
    let gov = rep.governor.expect("governed run must report stats");
    assert_eq!(gov.routed_query_centric + gov.routed_shared, 1, "{gov:?}");
    assert_eq!(gov.flips, 0, "{gov:?}");
    // With worker-tier page decode, even a lone scan-heavy star runs
    // cheaper on the pipelined shared plan than on a serial private one,
    // so the cold start routes Shared. (The admission-bound query-centric
    // cold start is covered at the governor level, where the shape is
    // controlled directly.)
    assert_eq!(gov.routed_shared, 1, "{gov:?}");
}

#[test]
fn adaptive_routes_memory_crowd_shared_since_admission_deserialized() {
    // Memory-resident crowd: before the admission de-serialization this
    // batch leaned query-centric, because every admission serialized in
    // the preprocessor and the queue term dominated the shared estimate.
    // With shared-scan admission (one dimension scan per batch, run off
    // the scan thread) the crowd amortizes admission too, so the governor
    // keeps it on the shared path.
    let d = dataset();
    let rep = run_batch(
        &d,
        &RunConfig::governed(ExecPolicy::Adaptive),
        &q32_batch(32, 7),
        false,
    );
    let gov = rep.governor.expect("governed run must report stats");
    assert!(
        gov.routed_shared > gov.routed_query_centric,
        "32-query batch should lean shared with de-serialized admission: {gov:?}"
    );
    assert!(gov.flips <= 2, "routing flapped: {gov:?}");
    // The shared queries really entered the GQP via batched admission
    // (exact page sharing is asserted deterministically in the stage
    // tests; batch composition here depends on arrival interleaving).
    let cj = rep.cjoin.expect("governed run reports CJOIN stats");
    assert!(cj.admitted > 0 && cj.admission_dim_pages > 0, "{cj:?}");
}

#[test]
fn adaptive_routes_disk_crowd_shared() {
    // Disk-resident: one circular scan feeds everyone while private scans
    // split the device — the crowd must go shared.
    let d = Dataset::ssb(0.3, 11);
    let mut cfg = RunConfig::governed(ExecPolicy::Adaptive);
    cfg.io_mode = workshare::IoMode::BufferedDisk;
    let rep = run_batch(&d, &cfg, &q32_batch(12, 7), false);
    let gov = rep.governor.expect("governed run must report stats");
    assert!(
        gov.routed_shared > gov.routed_query_centric,
        "disk-resident 12-query batch should lean shared: {gov:?}"
    );
    assert!(gov.flips <= 1, "routing flapped: {gov:?}");
    // The shared queries really entered the GQP.
    assert!(rep.cjoin.unwrap().admitted > 0);
}

#[test]
fn governed_shared_falls_back_to_qpipe_for_non_star_queries() {
    let d = dataset();
    // A dimension-less scan-aggregate cannot enter the CJOIN GQP; the
    // governed engine's shared route must run it on QPipe instead.
    let q = StarQuery {
        id: 1,
        fact: "lineorder".into(),
        fact_pred: Predicate::True,
        dims: vec![],
        group_by: vec![],
        aggs: vec![AggSpec::sum(ColRef::fact("lo_revenue"))],
        order_by: vec![],
    };
    let queries = vec![q];
    let baseline = run_batch(&d, &RunConfig::named(NamedConfig::Volcano), &queries, true);
    let rep = run_batch(
        &d,
        &RunConfig::governed(ExecPolicy::Shared),
        &queries,
        true,
    );
    assert_eq!(
        rep.results.unwrap()[0],
        baseline.results.unwrap()[0],
        "qpipe fallback result diverged"
    );
    assert_eq!(rep.cjoin.unwrap().admitted, 0, "must not enter the GQP");
}

/// Regression for the per-shape hysteresis ROADMAP item: a stream
/// alternating two workload shapes with opposite route preferences must not
/// flip-count an incumbent on every alternation. With the former single
/// global incumbent this stream either flapped ~40 times or routed one
/// shape by the other's incumbent; with state keyed per plan-shape
/// signature each shape keeps its own stable route.
#[test]
fn alternating_shapes_keep_independent_incumbents() {
    let g = SharingGovernor::new(CostModel::default(), GovernorConfig::default());
    // Shape A: memory-resident scan-heavy — decisively Shared.
    let shared_shape = SharingSignals {
        dim_selectivity: 0.1,
        ..SharingSignals::cold(30_000.0, 4_000.0, 3)
    }
    .with_crowd(4.0);
    // Shape B: tiny tables, admission-fixed-cost-dominated — decisively
    // QueryCentric.
    let qc_shape = SharingSignals {
        dim_selectivity: 0.1,
        ..SharingSignals::cold(100.0, 100.0, 1)
    }
    .with_crowd(4.0);
    let (sig_a, sig_b) = (0xA11CE, 0xB0B);
    for _ in 0..20 {
        assert_eq!(g.decide_keyed(sig_a, &shared_shape), Route::Shared);
        assert_eq!(g.decide_keyed(sig_b, &qc_shape), Route::QueryCentric);
    }
    let st = g.stats();
    assert_eq!(st.flips, 0, "alternating shapes flip-counted: {st:?}");
    assert_eq!(st.shapes, 2);
    assert_eq!(st.routed_shared, 20);
    assert_eq!(st.routed_query_centric, 20);
}

/// The engine keys governor state by `StarQuery::shape_signature`: a batch
/// alternating two query templates routes each template consistently
/// without flapping a shared incumbent.
#[test]
fn engine_routes_alternating_templates_without_flapping() {
    let d = dataset();
    let mut r = workload::rng(23);
    let queries: Vec<StarQuery> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                // Admission-bound single-dim star: leans query-centric.
                workload::ssb_q1_1(i as u64, &mut r)
            } else {
                // Scan-heavy three-dim star: leans shared once crowded.
                workload::ssb_q3_2(i as u64, &mut r)
            }
        })
        .collect();
    let rep = run_batch(&d, &RunConfig::governed(ExecPolicy::Adaptive), &queries, false);
    let gov = rep.governor.expect("governed run must report stats");
    // Each shape may settle once (≤ 1 flip per shape); alternation itself
    // must contribute nothing.
    assert!(gov.flips <= 2, "alternating templates flapped: {gov:?}");
    assert!(gov.shapes >= 2, "shapes not keyed separately: {gov:?}");
}

/// ROADMAP "Closed-loop feedback" item: `run_clients` submits in a
/// closed loop (each client waits for its query before the next), a
/// pattern whose concurrency never matches the batch shape the estimator's
/// queue term assumes. The latency-feedback EWMA must still converge: the
/// per-route calibration residual — observed / (predicted × calibration)
/// at observation time — settles around 1.0.
#[test]
fn closed_loop_calibration_converges() {
    let d = dataset();
    let cfg = RunConfig::governed(ExecPolicy::Adaptive);
    let rep = run_clients(&d, &cfg, "lineorder", 4, 2.0, 17, |id, rng| {
        workload::ssb_q3_2(id, rng)
    });
    assert!(rep.completed >= 30, "window too small to converge: {rep:?}");
    let gov = rep.governor.expect("governed run must report stats");
    // Every route that served queries fed its observations back; the
    // residual of the dominant route must have converged within 25 %.
    let (dominant_routed, residual) = if gov.routed_shared >= gov.routed_query_centric {
        (gov.routed_shared, gov.shared_residual)
    } else {
        (gov.routed_query_centric, gov.query_centric_residual)
    };
    assert!(dominant_routed >= 20, "{gov:?}");
    assert!(
        (residual - 1.0).abs() < 0.25,
        "closed-loop calibration did not converge: residual {residual}, {gov:?}"
    );
    // The calibration itself moved off its 1.0 prior (the model is not
    // exact under closed-loop queueing) — the feedback loop really
    // *learned*. (Whether it was applied to decisions depends on both
    // routes having been observed for the shape; the residual assertion
    // above is the convergence check either way.)
    let cal = if gov.routed_shared >= gov.routed_query_centric {
        gov.shared_calibration
    } else {
        gov.query_centric_calibration
    };
    assert!(cal > 0.0 && (cal - 1.0).abs() > 1e-6, "{gov:?}");
}

#[test]
fn policy_labels_flow_into_reports() {
    let d = dataset();
    let rep = run_batch(
        &d,
        &RunConfig::governed(ExecPolicy::Adaptive),
        &q32_batch(2, 9),
        false,
    );
    assert_eq!(rep.config, "Adaptive");
    let rep = run_batch(&d, &RunConfig::named(NamedConfig::QpipeSp), &q32_batch(2, 9), false);
    assert_eq!(rep.config, "QPipe-SP");
    assert!(rep.governor.is_none());
}
