//! The workspace's swappable synchronization layer.
//!
//! Production builds re-export `parking_lot` locks and `std` atomics —
//! exactly what the concurrent core (`engine.rs`, `stage.rs`, `fabric.rs`
//! and the protocol modules extracted from them) used before this layer
//! existed, so the production binary is unchanged. Compiling with
//! `RUSTFLAGS="--cfg interleave"` swaps every primitive for the
//! deterministic-model shim (`loom`), under which `tests/interleave_core.rs`
//! explores bounded-exhaustive thread interleavings of the load-bearing
//! protocols. See `docs/TESTING.md`.
//!
//! Only code that is meant to be model-checked should import from here;
//! everything else keeps using `parking_lot` / `std::sync` directly.
//! (Conversely, model-checked protocols — e.g. the lock-free epoch/wrap
//! machinery in `workshare_cjoin` — must take *every* primitive from this
//! layer: a std atomic mixed into a shimmed protocol is invisible to the
//! checker's happens-before tracking and silently weakens the model.)

#[cfg(not(interleave))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(interleave))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(interleave)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(interleave)]
pub use loom::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub use std::sync::Arc;
