//! # workshare-common — shared data-plane types
//!
//! Types shared by every layer of the reproduction:
//!
//! * [`Value`] / [`Row`] — the runtime tuple representation.
//! * [`Schema`] / [`ColType`] — table layouts with fixed-width encoding.
//! * [`codec`] — row ⇄ bytes page codec (32 KB pages, as in the paper).
//! * [`Predicate`] — selection predicate AST with evaluation and structural
//!   hashing (the basis of SP's identical-sub-plan detection).
//! * [`StarQuery`] — the query spec every engine configuration consumes
//!   (SSB star queries and scan-aggregate queries like TPC-H Q1).
//! * [`QueryBitmap`] — the per-tuple query-membership bitmap that shared
//!   operators AND together (CJOIN's core mechanism).
//! * [`CostModel`] — calibrated virtual CPU cost constants.
//! * [`fxhash`] — a fast non-cryptographic hasher for hot join paths.
//! * [`sync`] — the swappable synchronization layer: `parking_lot`/`std`
//!   in production, the deterministic `loom` shim under `--cfg interleave`.

#![warn(missing_docs)]

pub mod agg;
pub mod bind;
pub mod bitmap;
pub mod codec;
pub mod costs;
pub mod fxhash;
pub mod plan;
pub mod predicate;
pub mod schema;
pub mod sync;
pub mod value;

pub use bitmap::{BitmapBank, QueryBitmap, SelVec};
pub use costs::{CostModel, SharingSignals};
pub use plan::{AggExpr, AggFn, AggSpec, ColRef, ColSource, DimJoin, OrderKey, StarQuery};
pub use predicate::{CmpOp, Predicate};
pub use schema::{ColType, Column, Schema};
pub use value::{Row, Value};

/// Page size used throughout the system (the paper uses 32 KB pages for both
/// storage and exchange buffers).
pub const PAGE_SIZE: usize = 32 * 1024;
