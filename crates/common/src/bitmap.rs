//! Query-membership bitmaps — the core bookkeeping device of shared
//! operators (paper §2.4): every tuple flowing through a Global Query Plan
//! carries one bit per active query; shared hash-joins AND the bitmaps of
//! joined tuples; the distributor routes on the surviving bits.

/// A dynamically sized bitmap over query slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QueryBitmap {
    words: Box<[u64]>,
}

impl QueryBitmap {
    /// All-zero bitmap able to hold `nbits` query slots.
    pub fn zeros(nbits: usize) -> QueryBitmap {
        QueryBitmap {
            words: vec![0u64; nbits.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Bitmap with the first `nbits` slots set.
    pub fn ones(nbits: usize) -> QueryBitmap {
        let mut b = Self::zeros(nbits);
        for i in 0..nbits {
            b.set(i);
        }
        b
    }

    /// Capacity in bits (a multiple of 64).
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of 64-bit words (the unit the cost model charges per AND).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Set bit `i`, growing if needed (query admission extends bitmaps —
    /// one of the admission costs SP avoids for identical queries).
    pub fn set(&mut self, i: usize) {
        if i >= self.capacity() {
            self.grow(i + 1);
        }
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i` (query finalization).
    pub fn clear(&mut self, i: usize) {
        if i < self.capacity() {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Test bit `i`.
    pub fn get(&self, i: usize) -> bool {
        i < self.capacity() && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Grow capacity to at least `nbits`.
    pub fn grow(&mut self, nbits: usize) {
        let need = nbits.div_ceil(64);
        if need > self.words.len() {
            let mut v = self.words.to_vec();
            v.resize(need, 0);
            self.words = v.into_boxed_slice();
        }
    }

    /// `self &= other` (missing words in either side are zero).
    /// Returns whether any bit survives.
    pub fn and_assign(&mut self, other: &QueryBitmap) -> bool {
        let n = self.words.len().min(other.words.len());
        let mut any = 0u64;
        for i in 0..n {
            self.words[i] &= other.words[i];
            any |= self.words[i];
        }
        for w in self.words[n..].iter_mut() {
            *w = 0;
        }
        any != 0
    }

    /// `self |= other`, growing as needed.
    pub fn or_assign(&mut self, other: &QueryBitmap) {
        if other.words.len() > self.words.len() {
            self.grow(other.capacity());
        }
        for (i, w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// Shared-filter AND: `self &= entry | !referencing`.
    ///
    /// This is the probe step of a CJOIN filter. Queries *referencing* the
    /// filter's dimension keep their bit only if the dimension tuple's
    /// `entry` bitmap has it (`entry = None` on a hash miss); queries that do
    /// not reference the dimension pass through untouched. Returns whether
    /// any bit survives.
    pub fn and_filtered(
        &mut self,
        entry: Option<&QueryBitmap>,
        referencing: &QueryBitmap,
    ) -> bool {
        let mut any = 0u64;
        for i in 0..self.words.len() {
            let e = entry.and_then(|b| b.words.get(i)).copied().unwrap_or(0);
            let r = referencing.words.get(i).copied().unwrap_or(0);
            self.words[i] &= e | !r;
            any |= self.words[i];
        }
        any != 0
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = QueryBitmap::zeros(10);
        assert!(!b.get(3));
        b.set(3);
        assert!(b.get(3));
        b.clear(3);
        assert!(!b.get(3));
        assert!(!b.get(1000), "out-of-range get is false");
    }

    #[test]
    fn set_grows_automatically() {
        let mut b = QueryBitmap::zeros(1);
        b.set(200);
        assert!(b.get(200));
        assert!(b.capacity() >= 201);
    }

    #[test]
    fn ones_sets_exactly_n() {
        let b = QueryBitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.get(69));
        assert!(!b.get(70));
    }

    #[test]
    fn and_matches_set_semantics() {
        let xs: BTreeSet<usize> = [1, 5, 64, 100, 130].into();
        let ys: BTreeSet<usize> = [5, 64, 99, 130, 200].into();
        let mut a = QueryBitmap::zeros(256);
        let mut b = QueryBitmap::zeros(256);
        for &x in &xs {
            a.set(x);
        }
        for &y in &ys {
            b.set(y);
        }
        let survived = a.and_assign(&b);
        let expect: BTreeSet<usize> = xs.intersection(&ys).copied().collect();
        assert_eq!(a.iter_ones().collect::<BTreeSet<_>>(), expect);
        assert_eq!(survived, !expect.is_empty());
    }

    #[test]
    fn and_with_shorter_bitmap_zeroes_tail() {
        let mut a = QueryBitmap::zeros(200);
        a.set(10);
        a.set(150);
        let mut b = QueryBitmap::zeros(64);
        b.set(10);
        assert!(a.and_assign(&b));
        assert!(a.get(10));
        assert!(!a.get(150), "bits beyond other's capacity must clear");
    }

    #[test]
    fn or_unions_and_grows() {
        let mut a = QueryBitmap::zeros(64);
        a.set(1);
        let mut b = QueryBitmap::zeros(256);
        b.set(200);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(200));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = QueryBitmap::zeros(256);
        for i in [0, 63, 64, 127, 255] {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 127, 255]);
    }

    #[test]
    fn and_filtered_passes_non_referencing_queries() {
        // Queries 0,1 reference the filter; query 2 does not.
        let mut referencing = QueryBitmap::zeros(64);
        referencing.set(0);
        referencing.set(1);
        // Dim tuple selected only by query 0.
        let mut entry = QueryBitmap::zeros(64);
        entry.set(0);
        let mut tuple = QueryBitmap::zeros(64);
        tuple.set(0);
        tuple.set(1);
        tuple.set(2);
        assert!(tuple.and_filtered(Some(&entry), &referencing));
        assert!(tuple.get(0), "selected by the dim tuple");
        assert!(!tuple.get(1), "referencing but not selected");
        assert!(tuple.get(2), "non-referencing query unaffected");
    }

    #[test]
    fn and_filtered_miss_kills_only_referencing_bits() {
        let mut referencing = QueryBitmap::zeros(64);
        referencing.set(0);
        let mut tuple = QueryBitmap::zeros(64);
        tuple.set(0);
        tuple.set(3);
        assert!(tuple.and_filtered(None, &referencing));
        assert!(!tuple.get(0));
        assert!(tuple.get(3));
        // A miss with only referencing bits kills the tuple.
        let mut t2 = QueryBitmap::zeros(64);
        t2.set(0);
        assert!(!t2.and_filtered(None, &referencing));
    }

    #[test]
    fn empty_any_count() {
        let b = QueryBitmap::zeros(128);
        assert!(!b.any());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}
