//! Query-membership bitmaps — the core bookkeeping device of shared
//! operators (paper §2.4): every tuple flowing through a Global Query Plan
//! carries one bit per active query; shared hash-joins AND the bitmaps of
//! joined tuples; the distributor routes on the surviving bits.

/// A dynamically sized bitmap over query slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QueryBitmap {
    words: Box<[u64]>,
}

impl QueryBitmap {
    /// All-zero bitmap able to hold `nbits` query slots.
    pub fn zeros(nbits: usize) -> QueryBitmap {
        QueryBitmap {
            words: vec![0u64; nbits.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Bitmap with the first `nbits` slots set.
    pub fn ones(nbits: usize) -> QueryBitmap {
        let mut b = Self::zeros(nbits);
        for i in 0..nbits {
            b.set(i);
        }
        b
    }

    /// Bitmap adopting `words` as its backing storage — word-level
    /// construction for hot paths that already hold the words (the
    /// preprocessor's per-page mask snapshot), skipping per-bit `set`.
    pub fn from_words(words: Vec<u64>) -> QueryBitmap {
        QueryBitmap {
            words: words.into_boxed_slice(),
        }
    }

    /// Capacity in bits (a multiple of 64).
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of 64-bit words (the unit the cost model charges per AND).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Set bit `i`, growing if needed (query admission extends bitmaps —
    /// one of the admission costs SP avoids for identical queries).
    pub fn set(&mut self, i: usize) {
        if i >= self.capacity() {
            self.grow(i + 1);
        }
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i` (query finalization).
    pub fn clear(&mut self, i: usize) {
        if i < self.capacity() {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Test bit `i`.
    pub fn get(&self, i: usize) -> bool {
        i < self.capacity() && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Grow capacity to at least `nbits`.
    pub fn grow(&mut self, nbits: usize) {
        let need = nbits.div_ceil(64);
        if need > self.words.len() {
            let mut v = self.words.to_vec();
            v.resize(need, 0);
            self.words = v.into_boxed_slice();
        }
    }

    /// `self &= other` (missing words in either side are zero).
    /// Returns whether any bit survives.
    pub fn and_assign(&mut self, other: &QueryBitmap) -> bool {
        let n = self.words.len().min(other.words.len());
        let mut any = 0u64;
        for i in 0..n {
            self.words[i] &= other.words[i];
            any |= self.words[i];
        }
        for w in self.words[n..].iter_mut() {
            *w = 0;
        }
        any != 0
    }

    /// `self |= other`, growing as needed.
    pub fn or_assign(&mut self, other: &QueryBitmap) {
        if other.words.len() > self.words.len() {
            self.grow(other.capacity());
        }
        for (i, w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// Shared-filter AND: `self &= entry | !referencing`.
    ///
    /// This is the probe step of a CJOIN filter. Queries *referencing* the
    /// filter's dimension keep their bit only if the dimension tuple's
    /// `entry` bitmap has it (`entry = None` on a hash miss); queries that do
    /// not reference the dimension pass through untouched. Returns whether
    /// any bit survives.
    pub fn and_filtered(
        &mut self,
        entry: Option<&QueryBitmap>,
        referencing: &QueryBitmap,
    ) -> bool {
        let mut any = 0u64;
        for i in 0..self.words.len() {
            let e = entry.and_then(|b| b.words.get(i)).copied().unwrap_or(0);
            let r = referencing.words.get(i).copied().unwrap_or(0);
            self.words[i] &= e | !r;
            any |= self.words[i];
        }
        any != 0
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// The backing 64-bit words (the unit batch operators work in).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

// ---------------------------------------------------------------------------
// Batch-at-a-time structures
// ---------------------------------------------------------------------------

/// A reusable selection bitmap over the tuples of one batch: bit `i` set
/// means tuple `i` is selected. This is the unit the batch-at-a-time filter
/// pipeline threads between operators — predicates produce one, shared
/// filters consume and narrow one — replacing per-tuple `bool` control flow
/// with whole-word bit arithmetic.
///
/// Invariant: bits at positions `>= len` are always zero, so `count` /
/// `any` / word-level ANDs need no tail masking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelVec {
    words: Vec<u64>,
    len: usize,
}

impl SelVec {
    /// Empty selection (reusable; call [`SelVec::reset`] before use).
    pub fn new() -> SelVec {
        SelVec::default()
    }

    /// Resize to cover `len` tuples and set every bit to `selected`,
    /// reusing the existing allocation.
    pub fn reset(&mut self, len: usize, selected: bool) {
        let nwords = len.div_ceil(64);
        self.words.clear();
        self.words
            .resize(nwords, if selected { u64::MAX } else { 0 });
        self.len = len;
        if selected && !len.is_multiple_of(64) {
            // Maintain the zero-tail invariant.
            *self.words.last_mut().unwrap() = (1u64 << (len % 64)) - 1;
        }
    }

    /// Number of tuples covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the selection covers zero tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Select tuple `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Deselect tuple `i`.
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether tuple `i` is selected.
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Whether any tuple is selected.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Number of selected tuples.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Become a copy of `other`, reusing this buffer.
    pub fn copy_from(&mut self, other: &SelVec) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.len = other.len;
    }

    /// `self &= other` (both must cover the same batch).
    pub fn and_assign(&mut self, other: &SelVec) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Iterate selected tuple indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Visit each selected tuple and deselect those for which `keep` returns
    /// false. Word-at-a-time: dead words are skipped entirely.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for wi in 0..self.words.len() {
            let mut scan = self.words[wi];
            if scan == 0 {
                continue;
            }
            let mut kept = scan;
            while scan != 0 {
                let tz = scan.trailing_zeros() as usize;
                scan &= scan - 1;
                if !keep(wi * 64 + tz) {
                    kept &= !(1u64 << tz);
                }
            }
            self.words[wi] = kept;
        }
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// One contiguous bank of per-tuple query-membership bitmaps for a whole
/// work batch, word-strided: tuple `i`'s bitmap occupies words
/// `[i*stride, (i+1)*stride)`. This replaces the per-tuple
/// `QueryBitmap::clone()` of the scalar filter path with a single
/// `Vec<u64>` that a worker reuses batch after batch — the steady-state
/// filter loop performs zero heap allocations per tuple.
#[derive(Debug, Clone, Default)]
pub struct BitmapBank {
    words: Vec<u64>,
    stride: usize,
    len: usize,
}

impl BitmapBank {
    /// Empty bank (reusable; call [`BitmapBank::reset`] before use).
    pub fn new() -> BitmapBank {
        BitmapBank::default()
    }

    /// Resize to `len` tuples of all-zero bitmaps able to hold `nbits` bits
    /// each, reusing the allocation. This is the layout of a **per-query
    /// selection bank**: multi-predicate evaluation
    /// ([`crate::Predicate::eval_batch_multi`]) sets bit `q` of tuple `i`
    /// when predicate `q` selects row `i`, so one pass over a decoded page
    /// yields every pending query's selection at once.
    pub fn reset_zeros(&mut self, len: usize, nbits: usize) {
        self.stride = nbits.div_ceil(64).max(1);
        self.len = len;
        self.words.clear();
        self.words.resize(len * self.stride, 0);
    }

    /// Set bit `bit` of tuple `i` (must be within the bank's stride).
    #[inline]
    pub fn set(&mut self, i: usize, bit: usize) {
        debug_assert!(bit / 64 < self.stride);
        self.words[i * self.stride + bit / 64] |= 1u64 << (bit % 64);
    }

    /// Whether tuple `i` has any bit set.
    #[inline]
    pub fn row_any(&self, i: usize) -> bool {
        self.row(i).iter().any(|w| *w != 0)
    }

    /// Iterate the set bit indices of tuple `i` in ascending order.
    pub fn row_ones(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.row(i).iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }

    /// Number of tuples with bit `bit` set (a column population count —
    /// per-query admission-scan hit counts for the selectivity EWMA).
    pub fn count_column(&self, bit: usize) -> usize {
        let (wi, mask) = (bit / 64, 1u64 << (bit % 64));
        if wi >= self.stride {
            return 0;
        }
        (0..self.len)
            .filter(|&i| self.words[i * self.stride + wi] & mask != 0)
            .count()
    }

    /// Resize to `len` tuples and stamp every tuple's bitmap with a copy of
    /// `seed` (the page's active-query membership), reusing the allocation.
    pub fn reset(&mut self, len: usize, seed: &QueryBitmap) {
        self.stride = seed.word_count();
        self.len = len;
        self.words.clear();
        let sw = seed.words();
        if sw.len() == 1 {
            self.words.resize(len, sw[0]);
        } else {
            self.words.reserve(len * self.stride);
            for _ in 0..len {
                self.words.extend_from_slice(sw);
            }
        }
    }

    /// Words per tuple bitmap.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of tuple bitmaps held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bank holds zero tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tuple `i`'s bitmap words.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Whether bit `bit` of tuple `i` is set.
    pub fn get(&self, i: usize, bit: usize) -> bool {
        bit / 64 < self.stride && self.row(i)[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Shared-filter AND on tuple `i`: `row &= entry | !referencing`, the
    /// word-level form of [`QueryBitmap::and_filtered`]. Missing words on
    /// either operand read as zero. Returns whether any bit survives.
    pub fn and_filtered_row(
        &mut self,
        i: usize,
        entry: Option<&[u64]>,
        referencing: &[u64],
    ) -> bool {
        let row = &mut self.words[i * self.stride..(i + 1) * self.stride];
        let mut any = 0u64;
        for (j, w) in row.iter_mut().enumerate() {
            let e = entry.and_then(|b| b.get(j)).copied().unwrap_or(0);
            let r = referencing.get(j).copied().unwrap_or(0);
            *w &= e | !r;
            any |= *w;
        }
        any != 0
    }

    /// AND tuple `i`'s bitmap with a precomputed mask of exactly `stride`
    /// words (the hot-loop form: the filter kernel computes
    /// `entry | !referencing` once per key run and reapplies it per tuple).
    /// Returns whether any bit survives.
    #[inline]
    pub fn and_mask_row(&mut self, i: usize, mask: &[u64]) -> bool {
        debug_assert_eq!(mask.len(), self.stride);
        let row = &mut self.words[i * self.stride..(i + 1) * self.stride];
        let mut any = 0u64;
        for (w, m) in row.iter_mut().zip(mask) {
            *w &= m;
            any |= *w;
        }
        any != 0
    }

    /// Single-word specialization of [`BitmapBank::and_mask_row`] for banks
    /// with `stride == 1` (up to 64 query slots, the common case).
    #[inline]
    pub fn and_word(&mut self, i: usize, mask: u64) -> bool {
        debug_assert_eq!(self.stride, 1);
        let w = &mut self.words[i];
        *w &= mask;
        *w != 0
    }

    /// AND every tuple's bitmap with `mask` as whole-word operations;
    /// returns the number of tuples with at least one surviving bit.
    pub fn and_assign_all(&mut self, mask: &QueryBitmap) -> usize {
        let mw = mask.words();
        let mut survivors = 0;
        for row in self.words.chunks_exact_mut(self.stride.max(1)) {
            let mut any = 0u64;
            for (j, w) in row.iter_mut().enumerate() {
                *w &= mw.get(j).copied().unwrap_or(0);
                any |= *w;
            }
            survivors += (any != 0) as usize;
        }
        survivors
    }

    /// Whether any tuple has any bit set.
    pub fn any_alive(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Number of tuples with at least one bit set.
    pub fn survivor_count(&self) -> usize {
        if self.stride == 0 {
            return 0;
        }
        self.words
            .chunks_exact(self.stride)
            .filter(|row| row.iter().any(|w| *w != 0))
            .count()
    }

    /// Write bit `bit` of every tuple into `out` (`out[i] = bank[i].bit`):
    /// the distributor's per-query routing column.
    pub fn extract_column(&self, bit: usize, out: &mut SelVec) {
        out.reset(self.len, false);
        let (wi, mask) = (bit / 64, 1u64 << (bit % 64));
        if wi >= self.stride {
            return;
        }
        for i in 0..self.len {
            if self.words[i * self.stride + wi] & mask != 0 {
                out.set(i);
            }
        }
    }

    /// Keep only the tuples selected in `keep`, in order (stable
    /// compaction), producing the survivor-aligned bank of a filtered page.
    pub fn compact_into(&self, keep: &SelVec, dst: &mut BitmapBank) {
        dst.stride = self.stride;
        dst.words.clear();
        dst.len = 0;
        for i in keep.iter_ones() {
            dst.words.extend_from_slice(self.row(i));
            dst.len += 1;
        }
    }

    /// Copy tuple `i`'s bitmap out as a standalone [`QueryBitmap`].
    pub fn to_query_bitmap(&self, i: usize) -> QueryBitmap {
        QueryBitmap {
            words: self.row(i).to_vec().into_boxed_slice(),
        }
    }

    /// Append one tuple bitmap (scalar reference path compatibility); the
    /// bitmap is truncated or zero-extended to the bank's stride.
    pub fn push_bitmap(&mut self, bits: &QueryBitmap) {
        let bw = bits.words();
        for j in 0..self.stride {
            self.words.push(bw.get(j).copied().unwrap_or(0));
        }
        self.len += 1;
    }

    /// Reset to an empty bank with the given stride (scalar path builds
    /// banks incrementally with [`BitmapBank::push_bitmap`]).
    pub fn reset_empty(&mut self, stride: usize) {
        self.words.clear();
        self.stride = stride;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = QueryBitmap::zeros(10);
        assert!(!b.get(3));
        b.set(3);
        assert!(b.get(3));
        b.clear(3);
        assert!(!b.get(3));
        assert!(!b.get(1000), "out-of-range get is false");
    }

    #[test]
    fn set_grows_automatically() {
        let mut b = QueryBitmap::zeros(1);
        b.set(200);
        assert!(b.get(200));
        assert!(b.capacity() >= 201);
    }

    #[test]
    fn ones_sets_exactly_n() {
        let b = QueryBitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.get(69));
        assert!(!b.get(70));
    }

    #[test]
    fn and_matches_set_semantics() {
        let xs: BTreeSet<usize> = [1, 5, 64, 100, 130].into();
        let ys: BTreeSet<usize> = [5, 64, 99, 130, 200].into();
        let mut a = QueryBitmap::zeros(256);
        let mut b = QueryBitmap::zeros(256);
        for &x in &xs {
            a.set(x);
        }
        for &y in &ys {
            b.set(y);
        }
        let survived = a.and_assign(&b);
        let expect: BTreeSet<usize> = xs.intersection(&ys).copied().collect();
        assert_eq!(a.iter_ones().collect::<BTreeSet<_>>(), expect);
        assert_eq!(survived, !expect.is_empty());
    }

    #[test]
    fn and_with_shorter_bitmap_zeroes_tail() {
        let mut a = QueryBitmap::zeros(200);
        a.set(10);
        a.set(150);
        let mut b = QueryBitmap::zeros(64);
        b.set(10);
        assert!(a.and_assign(&b));
        assert!(a.get(10));
        assert!(!a.get(150), "bits beyond other's capacity must clear");
    }

    #[test]
    fn or_unions_and_grows() {
        let mut a = QueryBitmap::zeros(64);
        a.set(1);
        let mut b = QueryBitmap::zeros(256);
        b.set(200);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(200));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = QueryBitmap::zeros(256);
        for i in [0, 63, 64, 127, 255] {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 127, 255]);
    }

    #[test]
    fn and_filtered_passes_non_referencing_queries() {
        // Queries 0,1 reference the filter; query 2 does not.
        let mut referencing = QueryBitmap::zeros(64);
        referencing.set(0);
        referencing.set(1);
        // Dim tuple selected only by query 0.
        let mut entry = QueryBitmap::zeros(64);
        entry.set(0);
        let mut tuple = QueryBitmap::zeros(64);
        tuple.set(0);
        tuple.set(1);
        tuple.set(2);
        assert!(tuple.and_filtered(Some(&entry), &referencing));
        assert!(tuple.get(0), "selected by the dim tuple");
        assert!(!tuple.get(1), "referencing but not selected");
        assert!(tuple.get(2), "non-referencing query unaffected");
    }

    #[test]
    fn and_filtered_miss_kills_only_referencing_bits() {
        let mut referencing = QueryBitmap::zeros(64);
        referencing.set(0);
        let mut tuple = QueryBitmap::zeros(64);
        tuple.set(0);
        tuple.set(3);
        assert!(tuple.and_filtered(None, &referencing));
        assert!(!tuple.get(0));
        assert!(tuple.get(3));
        // A miss with only referencing bits kills the tuple.
        let mut t2 = QueryBitmap::zeros(64);
        t2.set(0);
        assert!(!t2.and_filtered(None, &referencing));
    }

    #[test]
    fn empty_any_count() {
        let b = QueryBitmap::zeros(128);
        assert!(!b.any());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn selvec_reset_respects_tail_invariant() {
        let mut s = SelVec::new();
        s.reset(70, true);
        assert_eq!(s.len(), 70);
        assert_eq!(s.count(), 70);
        assert!(s.get(69) && !s.get(70));
        // Words beyond len stay zero, so count never overshoots.
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.words()[1].count_ones(), 6);
        s.reset(3, false);
        assert_eq!(s.count(), 0);
        assert!(!s.any());
    }

    #[test]
    fn selvec_retain_deselects() {
        let mut s = SelVec::new();
        s.reset(130, true);
        s.retain(|i| i % 3 == 0);
        let expect: Vec<usize> = (0..130).filter(|i| i % 3 == 0).collect();
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), expect);
        assert_eq!(s.count(), expect.len());
        // retain never revives deselected tuples.
        s.retain(|_| true);
        assert_eq!(s.count(), expect.len());
    }

    #[test]
    fn selvec_and_assign_intersects() {
        let mut a = SelVec::new();
        a.reset(100, true);
        a.retain(|i| i % 2 == 0);
        let mut b = SelVec::new();
        b.reset(100, true);
        b.retain(|i| i % 3 == 0);
        a.and_assign(&b);
        assert_eq!(
            a.iter_ones().collect::<Vec<_>>(),
            (0..100).filter(|i| i % 6 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bank_reset_broadcasts_seed() {
        let mut seed = QueryBitmap::zeros(130);
        seed.set(0);
        seed.set(129);
        let mut bank = BitmapBank::new();
        bank.reset(5, &seed);
        assert_eq!(bank.len(), 5);
        assert_eq!(bank.stride(), seed.word_count());
        for i in 0..5 {
            assert!(bank.get(i, 0) && bank.get(i, 129) && !bank.get(i, 64));
            assert_eq!(bank.to_query_bitmap(i), seed);
        }
        assert_eq!(bank.survivor_count(), 5);
        assert!(bank.any_alive());
    }

    #[test]
    fn bank_and_filtered_row_matches_scalar() {
        // Same scenario as and_filtered_passes_non_referencing_queries.
        let mut referencing = QueryBitmap::zeros(64);
        referencing.set(0);
        referencing.set(1);
        let mut entry = QueryBitmap::zeros(64);
        entry.set(0);
        let mut members = QueryBitmap::zeros(64);
        members.set(0);
        members.set(1);
        members.set(2);
        let mut bank = BitmapBank::new();
        bank.reset(3, &members);
        assert!(bank.and_filtered_row(1, Some(entry.words()), referencing.words()));
        let mut scalar = members.clone();
        scalar.and_filtered(Some(&entry), &referencing);
        assert_eq!(bank.to_query_bitmap(1), scalar);
        // Untouched rows keep the seed bitmap.
        assert_eq!(bank.to_query_bitmap(0), members);
        // A miss (entry = None) on a fully-referencing filter kills the row.
        let all_ref = QueryBitmap::ones(64);
        assert!(!bank.and_filtered_row(2, None, all_ref.words()));
        assert_eq!(bank.survivor_count(), 2);
        assert_eq!(
            (0..3).filter(|&i| bank.to_query_bitmap(i).any()).count(),
            2
        );
    }

    #[test]
    fn bank_and_assign_all_counts_survivors() {
        let mut members = QueryBitmap::zeros(128);
        members.set(3);
        members.set(100);
        let mut bank = BitmapBank::new();
        bank.reset(4, &members);
        let mut mask = QueryBitmap::zeros(128);
        mask.set(100);
        assert_eq!(bank.and_assign_all(&mask), 4);
        for i in 0..4 {
            assert!(!bank.get(i, 3) && bank.get(i, 100));
        }
        assert_eq!(bank.and_assign_all(&QueryBitmap::zeros(128)), 0);
        assert!(!bank.any_alive());
        assert_eq!(bank.survivor_count(), 0);
    }

    #[test]
    fn bank_extract_column_and_compact() {
        let mut members = QueryBitmap::zeros(64);
        members.set(0);
        members.set(1);
        let mut bank = BitmapBank::new();
        bank.reset(4, &members);
        // Kill bit 0 on rows 1 and 3.
        let mut entry = QueryBitmap::zeros(64);
        entry.set(1);
        let mut refq = QueryBitmap::zeros(64);
        refq.set(0);
        bank.and_filtered_row(1, Some(entry.words()), refq.words());
        bank.and_filtered_row(3, None, refq.words());
        let mut col = SelVec::new();
        bank.extract_column(0, &mut col);
        assert_eq!(col.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        bank.extract_column(1, &mut col);
        assert_eq!(col.count(), 4);
        // Out-of-stride column reads as all-zero.
        bank.extract_column(64 * bank.stride() + 5, &mut col);
        assert_eq!(col.count(), 0);
        // Compact down to rows 0 and 2.
        let mut keep = SelVec::new();
        keep.reset(4, false);
        keep.set(0);
        keep.set(2);
        let mut dst = BitmapBank::new();
        bank.compact_into(&keep, &mut dst);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst.to_query_bitmap(0), bank.to_query_bitmap(0));
        assert_eq!(dst.to_query_bitmap(1), bank.to_query_bitmap(2));
    }

    #[test]
    fn bank_reset_zeros_set_and_column_ops() {
        let mut bank = BitmapBank::new();
        bank.reset_zeros(5, 70); // 2-word stride
        assert_eq!(bank.stride(), 2);
        assert_eq!(bank.len(), 5);
        assert!(!bank.any_alive());
        bank.set(0, 3);
        bank.set(0, 69);
        bank.set(4, 3);
        assert!(bank.row_any(0) && !bank.row_any(1) && bank.row_any(4));
        assert_eq!(bank.row_ones(0).collect::<Vec<_>>(), vec![3, 69]);
        assert_eq!(bank.count_column(3), 2);
        assert_eq!(bank.count_column(69), 1);
        assert_eq!(bank.count_column(40), 0);
        assert_eq!(bank.count_column(1000), 0, "out-of-stride column is zero");
        // Reuse shrinks and clears stale bits.
        bank.reset_zeros(2, 1);
        assert_eq!(bank.stride(), 1);
        assert!(!bank.row_any(0) && !bank.row_any(1));
    }

    #[test]
    fn bank_push_bitmap_extends_and_truncates() {
        let mut bank = BitmapBank::new();
        bank.reset_empty(2);
        let mut small = QueryBitmap::zeros(64);
        small.set(5);
        bank.push_bitmap(&small); // zero-extended to 2 words
        let mut big = QueryBitmap::zeros(256);
        big.set(64);
        big.set(200);
        bank.push_bitmap(&big); // truncated to 2 words
        assert_eq!(bank.len(), 2);
        assert!(bank.get(0, 5) && !bank.get(0, 64));
        assert!(bank.get(1, 64) && !bank.get(1, 200));
    }
}
