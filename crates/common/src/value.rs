//! Runtime values and rows.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single column value.
///
/// `Float` uses total ordering (`f64::total_cmp`) so values can serve as
/// group-by and join keys; strings are reference-counted since dimension
/// payloads are copied into many join outputs.
#[derive(Clone, Debug)]
pub enum Value {
    /// 64-bit signed integer (also used for keys and dates as `yyyymmdd`).
    Int(i64),
    /// 64-bit float (revenues, prices).
    Float(f64),
    /// Variable-length string with a schema-declared maximum width.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Integer content, panicking on type mismatch (used on key paths where
    /// the schema guarantees the type).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Float content; integers widen losslessly enough for aggregation.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Float(v) => *v,
            other => panic!("expected numeric, got {other:?}"),
        }
    }

    /// String content, panicking on type mismatch.
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, got {other:?}"),
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b) == Ordering::Equal,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Cross-type comparisons only arise in heterogeneous sort keys,
            // which the planner never produces; order by type rank for a
            // deterministic total order anyway.
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                state.write_u8(0);
                state.write_i64(*v);
            }
            Value::Float(v) => {
                state.write_u8(1);
                state.write_u64(v.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(2);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// A tuple: one value per schema column.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn equality_and_hash_are_consistent() {
        let a = Value::Int(5);
        let b = Value::Int(5);
        assert_eq!(a, b);
        assert_eq!(h(&a), h(&b));
        let s1 = Value::str("hello");
        let s2 = Value::str("hello");
        assert_eq!(s1, s2);
        assert_eq!(h(&s1), h(&s2));
    }

    #[test]
    fn float_total_ordering_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        assert_eq!(nan, Value::Float(f64::NAN));
        assert_ne!(nan, one);
        assert!(nan > one); // NaN sorts last under total_cmp
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Float(1.5) < Value::Float(2.5));
    }

    #[test]
    fn accessors_extract_contents() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Int(7).as_f64(), 7.0);
        assert_eq!(Value::Float(2.5).as_f64(), 2.5);
        assert_eq!(Value::str("x").as_str(), "x");
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_mismatch() {
        Value::str("x").as_int();
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("abc").to_string(), "abc");
    }
}
