//! Hash aggregation shared by all engines.
//!
//! QPipe's aggregate stage, CJOIN's query-centric tail and the Volcano
//! baseline all aggregate identically; only their *cost charging* differs
//! (done by the callers). The accumulator is deliberately simple: group key =
//! vector of group-by values, accumulators per [`AggFn`].

use crate::bind::{BoundAgg, BoundAggExpr, BoundQuery};
use crate::fxhash::FxHashMap;
use crate::plan::{AggFn, OrderKey};
use crate::value::{Row, Value};

#[derive(Debug, Clone, Copy)]
enum Acc {
    Sum(f64),
    Count(u64),
    Min(f64),
    Max(f64),
    Avg { sum: f64, n: u64 },
}

impl Acc {
    fn new(f: AggFn) -> Acc {
        match f {
            AggFn::Sum => Acc::Sum(0.0),
            AggFn::Count => Acc::Count(0),
            AggFn::Min => Acc::Min(f64::INFINITY),
            AggFn::Max => Acc::Max(f64::NEG_INFINITY),
            AggFn::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: f64) {
        match self {
            Acc::Sum(s) => *s += v,
            Acc::Count(c) => *c += 1,
            Acc::Min(m) => *m = m.min(v),
            Acc::Max(m) => *m = m.max(v),
            Acc::Avg { sum, n } => {
                *sum += v;
                *n += 1;
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Sum(s) => Value::Float(s),
            Acc::Count(c) => Value::Int(c as i64),
            Acc::Min(m) | Acc::Max(m) => Value::Float(m),
            Acc::Avg { sum, n } => Value::Float(if n == 0 { 0.0 } else { sum / n as f64 }),
        }
    }
}

fn eval_expr(e: &BoundAggExpr, row: &[Value]) -> f64 {
    match e {
        BoundAggExpr::Col(i) => row[*i].as_f64(),
        BoundAggExpr::Mul(a, b) => row[*a].as_f64() * row[*b].as_f64(),
    }
}

/// Streaming hash aggregator over joined rows.
pub struct Aggregator {
    group_idx: Vec<usize>,
    aggs: Vec<BoundAgg>,
    groups: FxHashMap<Vec<Value>, Vec<Acc>>,
    rows_in: u64,
}

impl Aggregator {
    /// Aggregator for a bound query.
    pub fn new(bound: &BoundQuery) -> Aggregator {
        Aggregator {
            group_idx: bound.group_idx.clone(),
            aggs: bound.aggs.clone(),
            groups: FxHashMap::default(),
            rows_in: 0,
        }
    }

    /// Fold one joined row into the accumulator table.
    pub fn update(&mut self, row: &[Value]) {
        self.rows_in += 1;
        let key: Vec<Value> = self.group_idx.iter().map(|&i| row[i].clone()).collect();
        let aggs = &self.aggs;
        let accs = self
            .groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| Acc::new(a.func)).collect());
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            match &spec.expr {
                Some(e) => acc.update(eval_expr(e, row)),
                None => acc.update(0.0), // Count ignores the value
            }
        }
    }

    /// Rows folded so far.
    pub fn rows_in(&self) -> u64 {
        self.rows_in
    }

    /// Current group count.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Produce output rows `[group_by… | aggs…]`, sorted by `order` (then by
    /// the full row for determinism).
    pub fn finish(self, order: &[OrderKey]) -> Vec<Row> {
        let mut out: Vec<Row> = self
            .groups
            .into_iter()
            .map(|(mut key, accs)| {
                key.extend(accs.into_iter().map(Acc::finish));
                key
            })
            .collect();
        out.sort_by(|a, b| {
            for k in order {
                let ord = a[k.output_idx].cmp(&b[k.output_idx]);
                let ord = if k.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            a.cmp(b)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::BoundQuery;

    fn bound(group_idx: Vec<usize>, aggs: Vec<BoundAgg>) -> BoundQuery {
        BoundQuery {
            fact_fk_idx: vec![],
            fact_payload_idx: vec![],
            dim_pk_idx: vec![],
            dim_payload_idx: vec![],
            group_idx,
            aggs,
            joined_arity: 2,
        }
    }

    fn sum_col(i: usize) -> BoundAgg {
        BoundAgg {
            func: AggFn::Sum,
            expr: Some(BoundAggExpr::Col(i)),
        }
    }

    #[test]
    fn grouped_sum_and_count() {
        let b = bound(
            vec![0],
            vec![
                sum_col(1),
                BoundAgg {
                    func: AggFn::Count,
                    expr: None,
                },
            ],
        );
        let mut a = Aggregator::new(&b);
        for (g, v) in [(1, 10.0), (2, 5.0), (1, 2.5), (2, 5.0)] {
            a.update(&[Value::Int(g), Value::Float(v)]);
        }
        assert_eq!(a.rows_in(), 4);
        assert_eq!(a.group_count(), 2);
        let out = a.finish(&[OrderKey {
            output_idx: 0,
            desc: false,
        }]);
        assert_eq!(
            out,
            vec![
                vec![Value::Int(1), Value::Float(12.5), Value::Int(2)],
                vec![Value::Int(2), Value::Float(10.0), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn global_aggregate_single_group() {
        let b = bound(vec![], vec![sum_col(0)]);
        let mut a = Aggregator::new(&b);
        for i in 1..=4 {
            a.update(&[Value::Int(i), Value::Int(0)]);
        }
        let out = a.finish(&[]);
        assert_eq!(out, vec![vec![Value::Float(10.0)]]);
    }

    #[test]
    fn min_max_avg() {
        let b = bound(
            vec![],
            vec![
                BoundAgg {
                    func: AggFn::Min,
                    expr: Some(BoundAggExpr::Col(0)),
                },
                BoundAgg {
                    func: AggFn::Max,
                    expr: Some(BoundAggExpr::Col(0)),
                },
                BoundAgg {
                    func: AggFn::Avg,
                    expr: Some(BoundAggExpr::Col(0)),
                },
            ],
        );
        let mut a = Aggregator::new(&b);
        for v in [2.0, 8.0, 5.0] {
            a.update(&[Value::Float(v), Value::Int(0)]);
        }
        let out = a.finish(&[]);
        assert_eq!(
            out,
            vec![vec![Value::Float(2.0), Value::Float(8.0), Value::Float(5.0)]]
        );
    }

    #[test]
    fn product_expression() {
        let b = bound(
            vec![],
            vec![BoundAgg {
                func: AggFn::Sum,
                expr: Some(BoundAggExpr::Mul(0, 1)),
            }],
        );
        let mut a = Aggregator::new(&b);
        a.update(&[Value::Int(3), Value::Int(4)]);
        a.update(&[Value::Int(2), Value::Int(5)]);
        assert_eq!(a.finish(&[]), vec![vec![Value::Float(22.0)]]);
    }

    #[test]
    fn descending_order_and_tiebreak() {
        let b = bound(vec![0], vec![sum_col(1)]);
        let mut a = Aggregator::new(&b);
        a.update(&[Value::Int(1), Value::Float(5.0)]);
        a.update(&[Value::Int(2), Value::Float(5.0)]);
        a.update(&[Value::Int(3), Value::Float(1.0)]);
        let out = a.finish(&[OrderKey {
            output_idx: 1,
            desc: true,
        }]);
        // Equal sums tie-break on the full row ascending.
        assert_eq!(out[0][0], Value::Int(1));
        assert_eq!(out[1][0], Value::Int(2));
        assert_eq!(out[2][0], Value::Int(3));
    }

    #[test]
    fn empty_input_produces_no_groups_when_grouped() {
        let b = bound(vec![0], vec![sum_col(1)]);
        let a = Aggregator::new(&b);
        assert!(a.finish(&[]).is_empty());
    }
}
