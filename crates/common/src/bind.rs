//! Binding a [`StarQuery`] to physical schemas.
//!
//! All engines share the same physical convention for the joined row:
//!
//! ```text
//! [ fk_0 … fk_{d-1} | fact payload cols … | dim_0 payload … | dim_{d-1} payload ]
//! ```
//!
//! The fact's foreign keys are kept in front (each join probes its own),
//! followed by fact columns referenced by grouping/aggregation, followed by
//! each dimension's payload columns in join order. [`bind`] computes every
//! index needed to execute the query against this layout.

use crate::plan::{AggExpr, AggFn, AggSpec, ColRef, ColSource, StarQuery};
use crate::schema::Schema;
use crate::value::{Row, Value};

/// A fully resolved aggregate input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundAggExpr {
    /// Joined-row column index.
    Col(usize),
    /// Product of two joined-row columns.
    Mul(usize, usize),
}

/// A fully resolved aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundAgg {
    /// Function.
    pub func: AggFn,
    /// Input (absent only for `Count`).
    pub expr: Option<BoundAggExpr>,
}

/// Physical binding of a [`StarQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundQuery {
    /// Fact-schema indices of the join foreign keys, in join order.
    pub fact_fk_idx: Vec<usize>,
    /// Fact-schema indices of payload columns carried past the scan.
    pub fact_payload_idx: Vec<usize>,
    /// Dim-schema index of each join's primary key.
    pub dim_pk_idx: Vec<usize>,
    /// Dim-schema indices of each join's payload columns.
    pub dim_payload_idx: Vec<Vec<usize>>,
    /// Joined-row indices of the group-by columns.
    pub group_idx: Vec<usize>,
    /// Resolved aggregates.
    pub aggs: Vec<BoundAgg>,
    /// Arity of the joined row.
    pub joined_arity: usize,
}

impl BoundQuery {
    /// Project a full fact row to the working prefix
    /// `[fks… | fact payload…]`.
    pub fn project_fact(&self, fact_row: &[Value]) -> Row {
        let mut out = Row::with_capacity(self.joined_arity);
        for &i in &self.fact_fk_idx {
            out.push(fact_row[i].clone());
        }
        for &i in &self.fact_payload_idx {
            out.push(fact_row[i].clone());
        }
        out
    }

    /// Joined-row offset where dim `k`'s payload begins.
    pub fn dim_payload_offset(&self, k: usize) -> usize {
        self.fact_fk_idx.len()
            + self.fact_payload_idx.len()
            + self.dim_payload_idx[..k]
                .iter()
                .map(|v| v.len())
                .sum::<usize>()
    }
}

/// Why a [`StarQuery`] could not be bound to its physical schemas. Carried
/// to the harness as a per-query **error outcome** (instead of the former
/// `panic!`, which poisoned whichever thread happened to bind — a malformed
/// query must fail alone, not take a worker down with it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// A grouping/aggregation column references the fact table but is not
    /// in the fact payload carried past the scan.
    FactColumnNotInPayload {
        /// The unresolvable column name.
        col: String,
    },
    /// A grouping/aggregation column references dimension `dim_index` but
    /// is not in that join's payload list.
    DimColumnNotInPayload {
        /// Join index of the dimension.
        dim_index: usize,
        /// The dimension table's name.
        dim: String,
        /// The unresolvable column name.
        col: String,
    },
    /// A grouping/aggregation column references a dimension index beyond
    /// the query's join list.
    DimIndexOutOfRange {
        /// The out-of-range join index.
        dim_index: usize,
        /// Number of dimension joins in the query.
        n_dims: usize,
    },
    /// A referenced column does not exist in the named table's schema.
    NoSuchColumn {
        /// The table whose schema was probed.
        table: String,
        /// The missing column name.
        col: String,
    },
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::FactColumnNotInPayload { col } => {
                write!(f, "fact column '{col}' not in payload")
            }
            BindError::DimColumnNotInPayload { dim_index, dim, col } => {
                write!(f, "dim {dim_index} column '{col}' not in payload of {dim}")
            }
            BindError::DimIndexOutOfRange { dim_index, n_dims } => {
                write!(f, "dim index {dim_index} out of range ({n_dims} joins)")
            }
            BindError::NoSuchColumn { table, col } => {
                write!(f, "no column '{col}' in schema of {table}")
            }
        }
    }
}

impl std::error::Error for BindError {}

fn resolve(q: &StarQuery, fact_payload: &[String], c: &ColRef) -> Result<usize, BindError> {
    match c.source {
        ColSource::Fact => {
            let pos = fact_payload.iter().position(|n| *n == c.col).ok_or_else(|| {
                BindError::FactColumnNotInPayload { col: c.col.clone() }
            })?;
            Ok(q.dims.len() + pos)
        }
        ColSource::Dim(k) => {
            let d = q.dims.get(k).ok_or(BindError::DimIndexOutOfRange {
                dim_index: k,
                n_dims: q.dims.len(),
            })?;
            let pos = d.payload.iter().position(|n| *n == c.col).ok_or_else(|| {
                BindError::DimColumnNotInPayload {
                    dim_index: k,
                    dim: d.dim.clone(),
                    col: c.col.clone(),
                }
            })?;
            let before: usize = q.dims[..k].iter().map(|d| d.payload.len()).sum();
            Ok(q.dims.len() + fact_payload.len() + before + pos)
        }
    }
}

/// Fact columns referenced by grouping/aggregation, deduplicated in first-use
/// order. These are the columns the scan projection must carry.
pub fn fact_payload_columns(q: &StarQuery) -> Vec<String> {
    let mut cols: Vec<String> = Vec::new();
    let mut add = |c: &ColRef| {
        if c.source == ColSource::Fact && !cols.contains(&c.col) {
            cols.push(c.col.clone());
        }
    };
    for g in &q.group_by {
        add(g);
    }
    for a in &q.aggs {
        match &a.expr {
            Some(AggExpr::Col(c)) => add(c),
            Some(AggExpr::Mul(a, b)) => {
                add(a);
                add(b);
            }
            None => {}
        }
    }
    cols
}

/// Bind `q` against the fact schema and its dimension schemas (in join
/// order), surfacing unresolvable columns as a typed [`BindError`] so the
/// caller can turn a malformed query into a per-query error outcome.
pub fn try_bind(fact: &Schema, dims: &[&Schema], q: &StarQuery) -> Result<BoundQuery, BindError> {
    assert_eq!(dims.len(), q.dims.len(), "schema count mismatch");
    let col_in = |s: &Schema, table: &str, name: &str| -> Result<usize, BindError> {
        s.try_col(name).ok_or_else(|| BindError::NoSuchColumn {
            table: table.to_string(),
            col: name.to_string(),
        })
    };
    let fact_payload = fact_payload_columns(q);
    let fact_fk_idx = q
        .dims
        .iter()
        .map(|d| col_in(fact, &q.fact, &d.fact_fk))
        .collect::<Result<_, _>>()?;
    let fact_payload_idx = fact_payload
        .iter()
        .map(|n| col_in(fact, &q.fact, n))
        .collect::<Result<_, _>>()?;
    let dim_pk_idx = q
        .dims
        .iter()
        .zip(dims)
        .map(|(d, s)| col_in(s, &d.dim, &d.dim_pk))
        .collect::<Result<_, _>>()?;
    let dim_payload_idx: Vec<Vec<usize>> = q
        .dims
        .iter()
        .zip(dims)
        .map(|(d, s)| {
            d.payload
                .iter()
                .map(|n| col_in(s, &d.dim, n))
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()?;
    let group_idx = q
        .group_by
        .iter()
        .map(|c| resolve(q, &fact_payload, c))
        .collect::<Result<_, _>>()?;
    let aggs = q
        .aggs
        .iter()
        .map(|a: &AggSpec| {
            let expr = match &a.expr {
                Some(AggExpr::Col(c)) => Some(BoundAggExpr::Col(resolve(q, &fact_payload, c)?)),
                Some(AggExpr::Mul(x, y)) => Some(BoundAggExpr::Mul(
                    resolve(q, &fact_payload, x)?,
                    resolve(q, &fact_payload, y)?,
                )),
                None => None,
            };
            Ok(BoundAgg { func: a.func, expr })
        })
        .collect::<Result<_, BindError>>()?;
    let joined_arity = q.dims.len()
        + fact_payload.len()
        + q.dims.iter().map(|d| d.payload.len()).sum::<usize>();
    Ok(BoundQuery {
        fact_fk_idx,
        fact_payload_idx,
        dim_pk_idx,
        dim_payload_idx,
        group_idx,
        aggs,
        joined_arity,
    })
}

/// Bind `q` against the fact schema and its dimension schemas (in join
/// order). Panics on unresolvable columns — for call sites whose plans are
/// machine-generated, where failures are template bugs. Service-loop call
/// sites use [`try_bind`] and shed the query instead.
pub fn bind(fact: &Schema, dims: &[&Schema], q: &StarQuery) -> BoundQuery {
    try_bind(fact, dims, q).unwrap_or_else(|e| panic!("bind failed for query {}: {e}", q.id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggSpec, DimJoin, OrderKey};
    use crate::predicate::Predicate;
    use crate::schema::{ColType, Column};

    fn fact_schema() -> Schema {
        Schema::new(vec![
            Column::new("fk_a", ColType::Int),
            Column::new("fk_b", ColType::Int),
            Column::new("m1", ColType::Int),
            Column::new("m2", ColType::Int),
        ])
    }

    fn dim_schema(pk: &str, payload: &str) -> Schema {
        Schema::new(vec![
            Column::new(pk, ColType::Int),
            Column::new(payload, ColType::Str(8)),
        ])
    }

    fn query() -> StarQuery {
        StarQuery {
            id: 1,
            fact: "f".into(),
            fact_pred: Predicate::True,
            dims: vec![
                DimJoin {
                    dim: "a".into(),
                    fact_fk: "fk_a".into(),
                    dim_pk: "a_pk".into(),
                    pred: Predicate::True,
                    payload: vec!["a_val".into()],
                },
                DimJoin {
                    dim: "b".into(),
                    fact_fk: "fk_b".into(),
                    dim_pk: "b_pk".into(),
                    pred: Predicate::True,
                    payload: vec!["b_val".into()],
                },
            ],
            group_by: vec![ColRef::dim(1, "b_val")],
            aggs: vec![
                AggSpec::sum(ColRef::fact("m1")),
                AggSpec::sum_product(ColRef::fact("m1"), ColRef::fact("m2")),
            ],
            order_by: vec![OrderKey {
                output_idx: 0,
                desc: false,
            }],
        }
    }

    #[test]
    fn layout_indices_are_consistent() {
        let f = fact_schema();
        let da = dim_schema("a_pk", "a_val");
        let db = dim_schema("b_pk", "b_val");
        let b = bind(&f, &[&da, &db], &query());
        assert_eq!(b.fact_fk_idx, vec![0, 1]);
        assert_eq!(b.fact_payload_idx, vec![2, 3]); // m1, m2
        assert_eq!(b.dim_pk_idx, vec![0, 0]);
        // joined row: [fk_a, fk_b, m1, m2, a_val, b_val]
        assert_eq!(b.joined_arity, 6);
        assert_eq!(b.group_idx, vec![5]);
        assert_eq!(b.dim_payload_offset(0), 4);
        assert_eq!(b.dim_payload_offset(1), 5);
        assert_eq!(
            b.aggs[0].expr,
            Some(BoundAggExpr::Col(2)),
            "m1 at joined idx 2"
        );
        assert_eq!(b.aggs[1].expr, Some(BoundAggExpr::Mul(2, 3)));
    }

    #[test]
    fn project_fact_carries_fks_then_payload() {
        let f = fact_schema();
        let da = dim_schema("a_pk", "a_val");
        let db = dim_schema("b_pk", "b_val");
        let b = bind(&f, &[&da, &db], &query());
        let row = vec![
            Value::Int(7),
            Value::Int(8),
            Value::Int(100),
            Value::Int(200),
        ];
        assert_eq!(
            b.project_fact(&row),
            vec![
                Value::Int(7),
                Value::Int(8),
                Value::Int(100),
                Value::Int(200)
            ]
        );
    }

    #[test]
    fn fact_payload_dedups_in_first_use_order() {
        let q = query();
        assert_eq!(fact_payload_columns(&q), vec!["m1", "m2"]);
    }

    #[test]
    #[should_panic(expected = "not in payload")]
    fn unresolvable_dim_column_panics() {
        let mut q = query();
        q.group_by = vec![ColRef::dim(0, "nonexistent")];
        let f = fact_schema();
        let da = dim_schema("a_pk", "a_val");
        let db = dim_schema("b_pk", "b_val");
        bind(&f, &[&da, &db], &q);
    }

    #[test]
    fn try_bind_surfaces_typed_errors() {
        let f = fact_schema();
        let da = dim_schema("a_pk", "a_val");
        let db = dim_schema("b_pk", "b_val");

        let mut q = query();
        q.group_by = vec![ColRef::dim(0, "nonexistent")];
        assert_eq!(
            try_bind(&f, &[&da, &db], &q),
            Err(BindError::DimColumnNotInPayload {
                dim_index: 0,
                dim: "a".into(),
                col: "nonexistent".into(),
            })
        );

        let mut q = query();
        q.aggs = vec![AggSpec::sum(ColRef::fact("no_such_measure"))];
        assert_eq!(
            try_bind(&f, &[&da, &db], &q),
            Err(BindError::NoSuchColumn {
                table: "f".into(),
                col: "no_such_measure".into(),
            }),
            "a fact agg column absent from the schema fails at payload lookup"
        );

        let mut q = query();
        q.dims[1].dim_pk = "missing_pk".into();
        assert_eq!(
            try_bind(&f, &[&da, &db], &q),
            Err(BindError::NoSuchColumn {
                table: "b".into(),
                col: "missing_pk".into(),
            })
        );

        let ok = try_bind(&f, &[&da, &db], &query()).expect("well-formed query binds");
        assert_eq!(ok.joined_arity, 6);
    }
}
