//! A fast, non-cryptographic hasher for hot join and group-by paths.
//!
//! Same multiply-rotate construction as rustc's `FxHasher` (which the Rust
//! performance guide recommends for integer-keyed tables); implemented
//! locally to keep the dependency set minimal. HashDoS resistance is
//! irrelevant: all keys are internally generated benchmark data.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style streaming hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut b = [0u8; 8];
            b[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(b) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash any `Hash` value to a `u64` in one call.
pub fn hash_one<T: std::hash::Hash>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_ne!(hash_one(&42u64), hash_one(&43u64));
        assert_ne!(hash_one(&"abc"), hash_one(&"abd"));
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Different lengths with identical prefixes must differ.
        let mut a = FxHasher::default();
        a.write(b"0123456789");
        let mut b = FxHasher::default();
        b.write(b"01234567");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_works_with_collisionless_small_keys() {
        let mut m: FxHashMap<i64, i64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn distribution_spreads_sequential_keys() {
        // Sequential integers should not collapse into few buckets.
        let mut buckets = [0usize; 16];
        for i in 0..1024u64 {
            buckets[(hash_one(&i) >> 60) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 1024 / 4, "suspiciously skewed: {buckets:?}");
    }
}
