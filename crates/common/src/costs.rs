//! Virtual CPU cost model.
//!
//! Every unit of real data-plane work charges virtual nanoseconds through
//! these constants. They are calibrated to commodity-server per-tuple costs
//! (fractions of a microsecond per tuple), so virtual response times are
//! directly comparable *in shape* to the paper's; absolute values are ~100×
//! smaller because the datasets are generated at 1/100 row scale (see
//! DESIGN.md §2).
//!
//! The constants deliberately encode the asymmetries the paper analyses:
//!
//! * `copy_byte_ns` — the push-based SP forwarding cost, paid *by the
//!   producer per satellite* (the serialization point of §4).
//! * `bitmap_word_and_ns` and `shared_probe_extra_ns` — the shared-operator
//!   bookkeeping overhead that makes GQP lose at low concurrency (§5.2.2).
//! * `volcano_tuple_overhead_ns` — tuple-at-a-time iterator overhead of the
//!   Postgres-substitute baseline.

/// Tunable virtual-cost constants (nanoseconds unless noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost to fetch+pin one page from the buffer pool.
    pub scan_page_fixed_ns: f64,
    /// Per-tuple decode cost during scans.
    pub scan_tuple_ns: f64,
    /// Hash-table insert during a join build, per tuple (`hash()` part).
    pub hash_build_tuple_ns: f64,
    /// Hash-table lookup during a join probe, per tuple (`hash()`+`equal()`).
    pub hash_probe_tuple_ns: f64,
    /// Join output assembly, per emitted tuple.
    pub join_output_tuple_ns: f64,
    /// Extra bookkeeping of a *shared* hash-join probe, per tuple, on top of
    /// the query-centric probe (wider hash table, slot indirection).
    pub shared_probe_extra_ns: f64,
    /// Bitmap AND, per 64-bit word, per tuple.
    pub bitmap_word_and_ns: f64,
    /// Aggregation hash-table update, per input tuple.
    pub agg_update_tuple_ns: f64,
    /// Aggregate finalization, per output group.
    pub agg_group_output_ns: f64,
    /// Sort cost: `sort_tuple_factor_ns × n × log2(n)`.
    pub sort_tuple_factor_ns: f64,
    /// Memory copy, per byte (push-based SP result forwarding).
    pub copy_byte_ns: f64,
    /// Exchange-queue operation (page push or pop), per page.
    pub exchange_page_ns: f64,
    /// Lock acquisition (SPL list lock, buffer-pool latch).
    pub lock_acquire_ns: f64,
    /// CJOIN admission: fixed per-query pipeline-pause cost.
    pub admission_query_fixed_ns: f64,
    /// CJOIN admission: per dimension tuple scanned/hashed/bit-extended.
    pub admission_tuple_ns: f64,
    /// Distributor routing, per output tuple per subscribed query.
    pub route_tuple_ns: f64,
    /// Extra per-tuple cost of the Volcano (tuple-at-a-time) baseline.
    pub volcano_tuple_overhead_ns: f64,
    /// Fixed per-batch cost of entering the vectorized shared-filter path
    /// (scratch reset, selection-vector setup).
    pub filter_batch_fixed_ns: f64,
    /// Hash probe per distinct *key run* in a batch: the vectorized filter
    /// probes once per run of equal consecutive FKs instead of once per
    /// tuple, which is how batch routing absorbs join-product skew.
    pub filter_probe_run_ns: f64,
    /// Bitmap-bank AND per 64-bit word. Contiguous word-strided layout makes
    /// this cheaper than the pointer-chasing per-tuple
    /// [`bitmap_word_and_ns`](CostModel::bitmap_word_and_ns) charge of the
    /// scalar path.
    pub bank_word_and_ns: f64,
    /// Predicate evaluation, per atomic term per tuple, at the batch rate
    /// (operator dispatch amortized by `select_batch_fixed_ns`). Every
    /// engine evaluates selections batch-at-a-time, so this is the one
    /// selection rate in the model.
    pub select_term_vec_ns: f64,
    /// Fixed per-batch predicate-evaluation cost (operator dispatch is paid
    /// once per batch, not once per tuple).
    pub select_batch_fixed_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_page_fixed_ns: 2_000.0,
            // Shore-MT-style slotted-page tuple access (latching + slot
            // lookup + decode) dominates scan-heavy queries; the paper's Q1
            // runs at ~1.6 µs/tuple end-to-end single-threaded, most of it
            // in the scan stage.
            scan_tuple_ns: 220.0,
            hash_build_tuple_ns: 90.0,
            hash_probe_tuple_ns: 70.0,
            join_output_tuple_ns: 80.0,
            shared_probe_extra_ns: 40.0,
            bitmap_word_and_ns: 6.0,
            agg_update_tuple_ns: 60.0,
            agg_group_output_ns: 120.0,
            sort_tuple_factor_ns: 25.0,
            copy_byte_ns: 0.25,
            exchange_page_ns: 800.0,
            lock_acquire_ns: 120.0,
            admission_query_fixed_ns: 150_000.0,
            admission_tuple_ns: 45.0,
            route_tuple_ns: 45.0,
            // Default 0: PostgreSQL's executor is mature enough that its
            // tuple-at-a-time overhead is offset by a leaner data path, which
            // is how the paper's Fig. 16 shows Postgres *ahead* at low
            // concurrency. Raise to model a naive iterator engine.
            volcano_tuple_overhead_ns: 0.0,
            filter_batch_fixed_ns: 400.0,
            // One probe per key run still pays the full hash+equal cost plus
            // the shared-operator slot indirection.
            filter_probe_run_ns: 110.0,
            bank_word_and_ns: 1.5,
            select_term_vec_ns: 6.0,
            select_batch_fixed_ns: 120.0,
        }
    }
}

impl CostModel {
    /// Cost of sorting `n` tuples.
    pub fn sort_cost(&self, n: usize) -> f64 {
        if n <= 1 {
            return self.sort_tuple_factor_ns;
        }
        self.sort_tuple_factor_ns * n as f64 * (n as f64).log2()
    }

    /// Cost of copying `bytes` (push-based SP forwarding).
    pub fn copy_cost(&self, bytes: usize) -> f64 {
        self.copy_byte_ns * bytes as f64
    }

    /// Cost of one vectorized shared-filter pass over a batch: `runs` hash
    /// probes (one per key run) plus `words` bitmap-bank word ANDs. Charged
    /// per batch, replacing the scalar path's per-tuple probe + AND charges.
    pub fn filter_batch_cost(&self, runs: u64, words: u64) -> f64 {
        self.filter_batch_fixed_ns
            + self.filter_probe_run_ns * runs as f64
            + self.bank_word_and_ns * words as f64
    }

    /// Cost of vectorized predicate evaluation of `terms` atomic terms over
    /// an `n`-tuple batch.
    pub fn select_batch_cost(&self, terms: usize, n: usize) -> f64 {
        self.select_batch_fixed_ns
            + self.select_term_vec_ns * terms.max(1) as f64 * n as f64
    }

    /// Cost of one **shared** admission-scan page: the page is decoded
    /// (`scan_tuple_ns`) and its rows hashed/bit-extended
    /// (`admission_tuple_ns`) once per physical row for the whole pending
    /// batch — under the cross-stage admission fabric, once for *every
    /// stage* in the batching window — while each of the `pending` queries
    /// pays only its own predicate evaluation at the batch rate
    /// (`total_terms` = Σ per-query `max(term_count, 1)`).
    ///
    /// This replaces the serial path's per-query full-scan charges
    /// (`(scan_tuple_ns + admission_tuple_ns) × rows` *per query*: the
    /// serial oracle really re-reads and re-decodes the pages per query) —
    /// the de-serialization that makes admission cost grow with *distinct
    /// dimension pages + pending queries* instead of *pages × queries*.
    /// The per-row physical rate matches the
    /// [`shared_latency_ns`](CostModel::shared_latency_ns) /
    /// [`shared_marginal_query_ns`](CostModel::shared_marginal_query_ns)
    /// estimators' `(scan_tuple_ns + admission_tuple_ns)` admission term,
    /// so the governor's calibration starts near 1.
    pub fn admission_batch_cost(&self, rows: usize, pending: usize, total_terms: usize) -> f64 {
        (self.scan_tuple_ns + self.admission_tuple_ns) * rows as f64
            + pending.max(1) as f64 * self.select_batch_fixed_ns
            + self.select_term_vec_ns * total_terms.max(pending.max(1)) as f64 * rows as f64
    }

    /// Virtual CPU work of evaluating **one** star query with a private
    /// query-centric plan (the Volcano path): scan the fact and dimension
    /// tables, build private hash tables, probe per fact tuple, aggregate
    /// the survivors. Independent of concurrency — each query repeats all
    /// of it.
    pub fn query_centric_query_ns(&self, s: &SharingSignals) -> f64 {
        let fact_scan = self.scan_tuple_ns * s.fact_tuples
            + self.scan_page_fixed_ns * (s.fact_tuples / TUPLES_PER_PAGE).max(1.0);
        let dim_scan = self.scan_tuple_ns * s.dim_tuples
            + self.select_term_vec_ns * s.dim_tuples;
        let build = self.hash_build_tuple_ns * s.dim_tuples * s.dim_selectivity;
        let probe = self.hash_probe_tuple_ns * s.fact_tuples * s.n_dims as f64;
        let agg = self.agg_update_tuple_ns * s.fact_tuples * s.fact_selectivity();
        fact_scan + dim_scan + build + probe + agg + self.volcano_tuple_overhead_ns * s.fact_tuples
    }

    /// **Marginal** virtual CPU work of admitting one more query into the
    /// shared plan (CJOIN) when `s.concurrency` queries are already active:
    /// the admission dimension scans are private, but the circular fact scan
    /// and the per-key-run filter probes are amortized over all
    /// `concurrency + 1` subscribers, while the bitmap-bank AND and
    /// distributor routing charges grow with the query's own membership.
    pub fn shared_marginal_query_ns(&self, s: &SharingSignals) -> f64 {
        let n = s.concurrency + 1.0;
        // Shared-scan admission: the physical dimension scan is performed
        // once per admission batch and amortizes over the crowd; only the
        // per-query predicate evaluation stays private.
        let admission = self.admission_query_fixed_ns
            + (self.scan_tuple_ns + self.admission_tuple_ns) * s.dim_tuples / n
            + self.select_term_vec_ns * s.dim_tuples;
        let shared_scan = (self.scan_tuple_ns * s.fact_tuples
            + self.scan_page_fixed_ns * (s.fact_tuples / TUPLES_PER_PAGE).max(1.0))
            / n;
        // One probe per key run, shared by every subscriber; skewed/clustered
        // foreign keys (long runs) make this cheaper — the skew signal.
        let probes = self.filter_probe_run_ns * (s.fact_tuples / s.avg_key_run.max(1.0))
            * s.n_dims as f64
            / n;
        // This query's own column of the bitmap bank: one bit per tuple.
        let bank = self.bank_word_and_ns * (s.fact_tuples / 64.0) * s.n_dims as f64;
        let route = self.route_tuple_ns * s.fact_tuples * s.fact_selectivity();
        let agg = self.agg_update_tuple_ns * s.fact_tuples * s.fact_selectivity();
        admission + shared_scan + probes + bank + route + agg
    }

    /// Estimated **response time** of a query-centric plan with
    /// `s.concurrency` other queries in flight: the serial CPU work slowed
    /// by core saturation (processor sharing: each of `n` single-threaded
    /// plans progresses at rate `min(1, cores/n)`), plus the private scan's
    /// share of disk bandwidth when the database is disk-resident (`n`
    /// private streams split the device).
    pub fn query_centric_latency_ns(&self, s: &SharingSignals) -> f64 {
        let n = s.concurrency + 1.0;
        let cpu = self.query_centric_query_ns(s) * (n / s.cores.max(1.0)).max(1.0);
        let io = if s.disk_bandwidth_bytes_per_sec > 0.0 {
            s.fact_bytes / s.disk_bandwidth_bytes_per_sec * n * 1e9
        } else {
            0.0
        };
        cpu + io
    }

    /// Estimated **response time** of joining the shared plan at
    /// `s.concurrency`: the shared-scan admission (one physical dimension
    /// scan per admission batch, run by off-thread admission workers
    /// overlapping the circular scan), one full circular-scan wrap (latency
    /// is never amortized: every query must see every fact page), the
    /// shared filter work spread over the pipeline workers, this query's
    /// own routing/aggregation, and **one** scan's worth of disk time
    /// regardless of concurrency — the bandwidth amortization that makes
    /// shared execution win disk-resident.
    ///
    /// Two terms are **per stage** rather than engine-wide, keyed by
    /// [`stage_in_flight`](SharingSignals::stage_in_flight) (with sharded
    /// multi-fact stages, only the crowd on the *candidate's* fact stage
    /// queues behind its admissions and contends for its pipeline threads):
    ///
    /// * The admission **queueing** term holds only the marginal per-query
    ///   work of the other arrivals *to this stage* (slot bookkeeping +
    ///   predicate evaluation), not their full dimension scans: batched
    ///   arrivals share one scan pass. Before the admission
    ///   de-serialization this term carried each queued arrival's *entire*
    ///   admission, which is what used to flip memory-resident crowds back
    ///   to query-centric plans.
    /// * The **saturation** term scales the query's own routing/aggregation
    ///   work once the stage's member count exceeds its distributor/filter
    ///   thread capacity — a crowded fact stage answers slower per member
    ///   than a quiet one, which is what lets the governor keep a quiet
    ///   fact query-centric while a crowded one shares.
    pub fn shared_latency_ns(&self, s: &SharingSignals) -> f64 {
        // The physical dimension scan amortizes over every query pending on
        // the cross-stage admission fabric: the batching window reads each
        // distinct dimension page once for all of them, so the candidate's
        // share shrinks with the fabric's pending count (its own predicate
        // evaluation below stays private).
        let admission_scan = (self.scan_tuple_ns + self.admission_tuple_ns) * s.dim_tuples
            / (1.0 + s.cross_stage_pending.max(0.0));
        let admission_own = self.select_term_vec_ns * s.dim_tuples;
        let admission = self.admission_query_fixed_ns + admission_scan + admission_own;
        // Queueing behind the other in-flight arrivals' *serialized* state
        // work. With the lock-free filter epoch, the only serialized
        // per-arrival step is the copy-on-write publish under the writer
        // lock — the per-page state writes the old RwLock imposed are gone
        // — so the fixed-term share is a sliver of the fixed admission
        // charge, not a tenth of it.
        let admission_queue =
            (self.admission_query_fixed_ns / 16.0 + admission_own) * s.stage_in_flight / 2.0;
        // The circular-scan thread only fetches/stamps pages; tuple decode
        // happens in the parallel filter tier, so the per-tuple part of the
        // wrap spreads over the pipeline workers.
        let wrap_scan = self.scan_tuple_ns * s.fact_tuples / s.pipeline_parallelism.max(1.0)
            + self.scan_page_fixed_ns * (s.fact_tuples / TUPLES_PER_PAGE).max(1.0);
        let filter = self.filter_probe_run_ns * (s.fact_tuples / s.avg_key_run.max(1.0))
            * s.n_dims as f64
            / s.pipeline_parallelism.max(1.0);
        let sat = self.stage_saturation(s);
        let own = (self.bank_word_and_ns * (s.fact_tuples / 64.0) * s.n_dims as f64
            + (self.route_tuple_ns + self.agg_update_tuple_ns)
                * s.fact_tuples
                * s.fact_selectivity())
            * sat;
        let io = if s.disk_bandwidth_bytes_per_sec > 0.0 {
            s.fact_bytes / s.disk_bandwidth_bytes_per_sec * 1e9
        } else {
            0.0
        };
        admission + admission_queue + wrap_scan + filter + own + io
    }

    /// Per-stage saturation multiplier of the shared estimate: 1.0 while the
    /// candidate's stage has spare pipeline capacity, growing linearly once
    /// its member count exceeds `4 ×` the filter-worker parallelism (the
    /// distributor parts roughly quadruple the routing capacity of the
    /// filter tier, so members queue behind each other only past that
    /// point).
    pub fn stage_saturation(&self, s: &SharingSignals) -> f64 {
        ((s.stage_in_flight + 1.0) / (4.0 * s.pipeline_parallelism.max(1.0))).max(1.0)
    }

    /// The concurrency level past which shared execution is estimated to
    /// respond faster than query-centric execution for this workload shape
    /// (the paper's §5.2 crossover, made explicit). Returns the smallest
    /// `n ≥ 1` whose latency estimates favor sharing, or `max_n` if
    /// sharing never wins within the probed range. The crossover can be 1
    /// (scan-dominated workloads, where the pipelined shared plan beats a
    /// serial private plan even alone). Admission-dominated shapes on a
    /// memory-resident database cross late but no longer never: with
    /// shared-scan admission the dimension scans amortize over the batch,
    /// so once private plans saturate the cores the shared path's cheaper
    /// per-query increment always wins the crowd.
    pub fn sharing_crossover_queries(&self, s: &SharingSignals, max_n: u32) -> u32 {
        for n in 1..=max_n {
            // The crossover probe assumes the whole crowd lands on the
            // candidate's stage (single-fact worst case for sharing).
            let probe = SharingSignals {
                concurrency: (n - 1) as f64,
                stage_in_flight: (n - 1) as f64,
                ..*s
            };
            if self.shared_latency_ns(&probe) < self.query_centric_latency_ns(&probe) {
                return n;
            }
        }
        max_n
    }
}

/// Rows per 32 KB page assumed by the estimator (SSB `lineorder` tuples are
/// ~60 bytes fixed-width).
const TUPLES_PER_PAGE: f64 = 512.0;

/// Workload-shape and live-load signals the sharing governor feeds the
/// cost-model crossover estimator ([`CostModel::sharing_crossover_queries`]).
///
/// Static fields come from the catalog (table sizes, dimension count); the
/// dynamic fields — [`dim_selectivity`](SharingSignals::dim_selectivity),
/// [`avg_key_run`](SharingSignals::avg_key_run) and
/// [`concurrency`](SharingSignals::concurrency) — are observed online
/// (admission-scan `Predicate::eval_batch*` hit rates, filter key-run
/// counters, `CjoinStage::active_queries`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingSignals {
    /// Fact-table cardinality.
    pub fact_tuples: f64,
    /// Total dimension tuples scanned per query (sum over joined dims).
    pub dim_tuples: f64,
    /// Number of dimension joins in the plan.
    pub n_dims: usize,
    /// Fraction of dimension tuples selected by the dimension predicates
    /// (observed EWMA; the per-dim fact selectivity factor).
    pub dim_selectivity: f64,
    /// Average run length of equal consecutive foreign keys in fact pages
    /// (observed; clustered loads and join-product skew raise it, which
    /// lowers the shared filter's per-run probe cost).
    pub avg_key_run: f64,
    /// Queries currently sharing the plan (excluding the candidate).
    pub concurrency: f64,
    /// Queries in flight on the **candidate's fact-table stage** (excluding
    /// the candidate). With sharded multi-fact stages this is the crowd
    /// that queues behind this stage's admissions and contends for its
    /// pipeline threads; for a single-fact engine it equals
    /// [`concurrency`](SharingSignals::concurrency).
    pub stage_in_flight: f64,
    /// Queries pending on the engine's **cross-stage admission fabric**
    /// (all fact stages, excluding the candidate) at decision time. With
    /// the fabric, a batching window scans each distinct dimension table
    /// once for *every* pending query of *every* stage, so the candidate's
    /// own admission-scan share shrinks with this count — a dimension hot
    /// across fact tables pushes **both** facts' queries toward sharing.
    /// 0 without a fabric (per-stage pools share only within a stage; the
    /// [`stage_in_flight`](SharingSignals::stage_in_flight) queue term
    /// covers that).
    pub cross_stage_pending: f64,
    /// Virtual cores of the machine (saturation divisor of the
    /// query-centric path).
    pub cores: f64,
    /// Parallel filter workers of the shared pipeline.
    pub pipeline_parallelism: f64,
    /// Fact-table size in bytes (the unit of scan-bandwidth amortization).
    pub fact_bytes: f64,
    /// Sequential disk bandwidth in bytes per virtual second; 0 for a
    /// memory-resident database (disables the I/O terms).
    pub disk_bandwidth_bytes_per_sec: f64,
}

impl SharingSignals {
    /// Estimated fraction of fact tuples surviving all dimension filters:
    /// `dim_selectivity ^ n_dims` (independence assumption).
    pub fn fact_selectivity(&self) -> f64 {
        self.dim_selectivity
            .clamp(0.0, 1.0)
            .powi(self.n_dims.max(1) as i32)
    }

    /// Neutral defaults for a cold start: moderate selectivity, no observed
    /// clustering, no active queries, a 24-core memory-resident machine.
    pub fn cold(fact_tuples: f64, dim_tuples: f64, n_dims: usize) -> SharingSignals {
        SharingSignals {
            fact_tuples,
            dim_tuples,
            n_dims,
            dim_selectivity: 0.1,
            avg_key_run: 1.0,
            concurrency: 0.0,
            stage_in_flight: 0.0,
            cross_stage_pending: 0.0,
            cores: 24.0,
            pipeline_parallelism: 6.0,
            fact_bytes: 0.0,
            disk_bandwidth_bytes_per_sec: 0.0,
        }
    }

    /// Single-stage crowd of `n`: every in-flight query is on the
    /// candidate's stage (the shape of an unsharded engine, and of the
    /// cost-model unit tests).
    pub fn with_crowd(self, n: f64) -> SharingSignals {
        SharingSignals {
            concurrency: n,
            stage_in_flight: n,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = CostModel::default();
        assert!(c.scan_tuple_ns > 0.0);
        assert!(c.copy_byte_ns > 0.0);
        assert!(c.shared_probe_extra_ns > 0.0);
    }

    #[test]
    fn sort_cost_is_n_log_n() {
        let c = CostModel::default();
        let n1 = c.sort_cost(1024);
        let n2 = c.sort_cost(2048);
        assert!(n2 > 2.0 * n1, "super-linear");
        assert!(n2 < 2.5 * n1, "but close to n log n");
        assert!(c.sort_cost(0) > 0.0);
    }

    #[test]
    fn copy_cost_linear_in_bytes() {
        let c = CostModel::default();
        assert_eq!(c.copy_cost(32 * 1024), c.copy_byte_ns * 32.0 * 1024.0);
    }

    #[test]
    fn batch_charges_scale_per_run_and_word() {
        let c = CostModel::default();
        let base = c.filter_batch_cost(0, 0);
        assert_eq!(base, c.filter_batch_fixed_ns);
        assert_eq!(
            c.filter_batch_cost(10, 100) - base,
            c.filter_probe_run_ns * 10.0 + c.bank_word_and_ns * 100.0
        );
        // The vectorized filter of a clustered batch (few key runs) is
        // cheaper than the scalar per-tuple charges for the same tuples.
        let tuples = 1000u64;
        let words = tuples; // one-word bitmaps
        let scalar = (c.hash_probe_tuple_ns + c.shared_probe_extra_ns) * tuples as f64
            + c.bitmap_word_and_ns * words as f64;
        let vectorized = c.filter_batch_cost(tuples / 10, words);
        assert!(vectorized < scalar / 2.0, "{vectorized} vs {scalar}");
    }

    fn ssb_like_signals() -> SharingSignals {
        SharingSignals {
            dim_selectivity: 0.1,
            ..SharingSignals::cold(30_000.0, 4_000.0, 3)
        }
    }

    #[test]
    fn query_centric_wins_alone_shared_wins_crowded() {
        let c = CostModel::default();
        let s = ssb_like_signals();
        // A lone query: the private plan avoids admission + GQP bookkeeping.
        assert!(
            c.shared_marginal_query_ns(&s) > c.query_centric_query_ns(&s),
            "shared must not win at concurrency 0"
        );
        // A crowded plan: scan + probes amortize, marginal cost collapses.
        let crowded = SharingSignals {
            concurrency: 63.0,
            ..s
        };
        assert!(
            c.shared_marginal_query_ns(&crowded) < c.query_centric_query_ns(&crowded),
            "shared must win at concurrency 63"
        );
    }

    #[test]
    fn latency_model_reflects_both_residency_regimes() {
        let c = CostModel::default();
        // Memory-resident, scan-heavy: at idle the pipelined shared plan
        // beats the serial private plan (volcano pays the probe work
        // serially)…
        let mem = ssb_like_signals();
        assert!(c.shared_latency_ns(&mem) < c.query_centric_latency_ns(&mem));
        // …and with shared-scan admission the crowd keeps sharing: queued
        // arrivals add only their predicate-evaluation increment, not a
        // full private dimension scan each, so the old memory-resident
        // inversion (crowds flipping back to query-centric) is gone for
        // scan-heavy shapes.
        let crowd = mem.with_crowd(63.0);
        assert!(c.shared_latency_ns(&crowd) < c.query_centric_latency_ns(&crowd));
        // Admission-dominated shape (tiny fact, huge dimensions) at idle:
        // the one place query-centric still wins memory-resident — a lone
        // query pays the whole admission scan with nothing to amortize it.
        let flat = SharingSignals {
            dim_selectivity: 0.1,
            ..SharingSignals::cold(2_000.0, 50_000.0, 1)
        };
        assert!(c.shared_latency_ns(&flat) > c.query_centric_latency_ns(&flat));
        // Disk-resident, the paper's headline regime: one circular scan
        // feeds everyone while 64 private streams split the device —
        // sharing wins the crowd by an order of magnitude.
        let disk = SharingSignals {
            fact_bytes: 11.5e6,
            disk_bandwidth_bytes_per_sec: 220.0 * 1024.0 * 1024.0,
            ..crowd
        };
        assert!(c.shared_latency_ns(&disk) * 10.0 < c.query_centric_latency_ns(&disk));
    }

    #[test]
    fn crossover_spans_the_full_range() {
        let c = CostModel::default();
        // Scan-heavy shape: sharing wins from the first query (pipeline
        // parallelism), crossover 1.
        let s = ssb_like_signals();
        let x = c.sharing_crossover_queries(&s, 1024);
        assert_eq!(x, 1, "scan-heavy shape should share immediately");
        // Admission-dominated shape: before the admission de-serialization
        // this shape never shared memory-resident (crossover = max_n). With
        // batched shared scans the crossover is late but finite — the
        // private plans saturate the cores while the shared path's
        // per-query increment stays flat.
        let flat = SharingSignals {
            dim_selectivity: 0.1,
            ..SharingSignals::cold(2_000.0, 50_000.0, 1)
        };
        let late = c.sharing_crossover_queries(&flat, 256);
        assert!(
            late > 16 && late < 256,
            "admission-dominated shape should cross late but finitely, got {late}"
        );
    }

    #[test]
    fn skew_tips_a_boundary_shape_to_shared() {
        // A shape balanced so the per-run probe term decides the contest.
        // With decode and filtering both in the parallel worker tier, a
        // wide stage amortizes the probe cost regardless of clustering, so
        // the boundary lives in the *narrow* (single-worker) deployment:
        // there, unclustered keys (runs of 1) keep sharing underwater until
        // the cores saturate, while 16-tuple key runs (clustered loads,
        // join-product skew) collapse the probe cost and tip the crossover
        // from "late" to "immediately".
        let c = CostModel::default();
        let boundary = SharingSignals {
            dim_selectivity: 0.1,
            pipeline_parallelism: 1.0,
            ..SharingSignals::cold(40_000.0, 20_000.0, 1)
        };
        assert!(c.sharing_crossover_queries(&boundary, 256) > 8);
        let skewed = SharingSignals {
            avg_key_run: 16.0,
            ..boundary
        };
        assert_eq!(c.sharing_crossover_queries(&skewed, 256), 1);
    }

    #[test]
    fn admission_batch_cost_shares_the_scan_not_the_predicates() {
        let c = CostModel::default();
        // One query: batch cost within a fixed term of the serial charge
        // (decode + hash/bit-extend per physical row, predicates at the
        // batch rate).
        let serial_one = (c.scan_tuple_ns + c.admission_tuple_ns) * 1000.0
            + c.select_batch_cost(2, 1000);
        assert_eq!(c.admission_batch_cost(1000, 1, 2), serial_one);
        // 32 queries sharing the scan: the physical per-row work is paid
        // once, so the batch is far cheaper than 32 serial scans…
        let serial_32 = 32.0 * serial_one;
        let shared_32 = c.admission_batch_cost(1000, 32, 64);
        assert!(
            shared_32 * 2.0 < serial_32,
            "shared {shared_32} vs serial {serial_32}"
        );
        // …while still growing with pending queries and predicate width.
        assert!(shared_32 > c.admission_batch_cost(1000, 1, 2));
        assert!(c.admission_batch_cost(1000, 32, 128) > shared_32);
        // Degenerate inputs stay sane (zero-term predicates charge one).
        assert!(c.admission_batch_cost(0, 0, 0) > 0.0);
    }

    #[test]
    fn stage_saturation_only_penalizes_crowded_stages() {
        let c = CostModel::default();
        let quiet = ssb_like_signals(); // stage_in_flight 0
        assert_eq!(c.stage_saturation(&quiet), 1.0);
        // Engine-wide load without stage load: the shared estimate must not
        // pay the saturation or queueing terms for a quiet fact stage.
        let busy_engine = SharingSignals {
            concurrency: 63.0,
            ..quiet
        };
        assert_eq!(
            c.shared_latency_ns(&busy_engine),
            c.shared_latency_ns(&quiet),
            "a quiet stage's shared estimate is independent of other stages"
        );
        // A crowded stage pays both: strictly slower than the quiet one.
        let crowded = quiet.with_crowd(63.0);
        assert!(c.stage_saturation(&crowded) > 2.0);
        assert!(c.shared_latency_ns(&crowded) > c.shared_latency_ns(&busy_engine));
        // Under capacity the multiplier stays exactly 1.
        let small = quiet.with_crowd(8.0);
        assert_eq!(c.stage_saturation(&small), 1.0);
    }

    #[test]
    fn cross_stage_pending_amortizes_the_admission_scan() {
        let c = CostModel::default();
        // Admission-dominated shape (tiny fact, huge dimension): at idle a
        // lone query pays the whole dimension scan and stays query-centric.
        let flat = SharingSignals {
            dim_selectivity: 0.1,
            ..SharingSignals::cold(2_000.0, 50_000.0, 1)
        };
        assert!(c.shared_latency_ns(&flat) > c.query_centric_latency_ns(&flat));
        // The same query with a crowd pending on the cross-stage admission
        // fabric — e.g. another fact table's stars filtering the same
        // dimension — shares the physical scan and the shared estimate
        // drops strictly below the private plan's.
        let hot = SharingSignals {
            cross_stage_pending: 31.0,
            ..flat
        };
        assert!(c.shared_latency_ns(&hot) < c.shared_latency_ns(&flat));
        assert!(c.shared_latency_ns(&hot) < c.query_centric_latency_ns(&hot));
        // The amortization touches only the physical scan term: its
        // saving is bounded by the full scan cost.
        let saved = c.shared_latency_ns(&flat) - c.shared_latency_ns(&hot);
        let scan = (c.scan_tuple_ns + c.admission_tuple_ns) * flat.dim_tuples;
        assert!(saved <= scan && saved > 0.9 * scan * 31.0 / 32.0);
    }

    #[test]
    fn cold_signals_are_sane() {
        let s = SharingSignals::cold(1000.0, 100.0, 3);
        assert_eq!(s.concurrency, 0.0);
        assert!(s.fact_selectivity() > 0.0 && s.fact_selectivity() < 1.0);
        // Zero-dim plans (pure scan-aggregates) still get a defined factor.
        let s0 = SharingSignals::cold(1000.0, 0.0, 0);
        assert!(s0.fact_selectivity() > 0.0);
    }

    #[test]
    fn select_batch_cost_amortizes_dispatch() {
        let c = CostModel::default();
        assert_eq!(
            c.select_batch_cost(2, 100),
            c.select_batch_fixed_ns + c.select_term_vec_ns * 200.0
        );
        // Zero-term predicates still charge one term, as in select_cost.
        assert_eq!(
            c.select_batch_cost(0, 10),
            c.select_batch_fixed_ns + c.select_term_vec_ns * 10.0
        );
    }
}
