//! Virtual CPU cost model.
//!
//! Every unit of real data-plane work charges virtual nanoseconds through
//! these constants. They are calibrated to commodity-server per-tuple costs
//! (fractions of a microsecond per tuple), so virtual response times are
//! directly comparable *in shape* to the paper's; absolute values are ~100×
//! smaller because the datasets are generated at 1/100 row scale (see
//! DESIGN.md §2).
//!
//! The constants deliberately encode the asymmetries the paper analyses:
//!
//! * `copy_byte_ns` — the push-based SP forwarding cost, paid *by the
//!   producer per satellite* (the serialization point of §4).
//! * `bitmap_word_and_ns` and `shared_probe_extra_ns` — the shared-operator
//!   bookkeeping overhead that makes GQP lose at low concurrency (§5.2.2).
//! * `volcano_tuple_overhead_ns` — tuple-at-a-time iterator overhead of the
//!   Postgres-substitute baseline.

/// Tunable virtual-cost constants (nanoseconds unless noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost to fetch+pin one page from the buffer pool.
    pub scan_page_fixed_ns: f64,
    /// Per-tuple decode cost during scans.
    pub scan_tuple_ns: f64,
    /// Hash-table insert during a join build, per tuple (`hash()` part).
    pub hash_build_tuple_ns: f64,
    /// Hash-table lookup during a join probe, per tuple (`hash()`+`equal()`).
    pub hash_probe_tuple_ns: f64,
    /// Join output assembly, per emitted tuple.
    pub join_output_tuple_ns: f64,
    /// Extra bookkeeping of a *shared* hash-join probe, per tuple, on top of
    /// the query-centric probe (wider hash table, slot indirection).
    pub shared_probe_extra_ns: f64,
    /// Bitmap AND, per 64-bit word, per tuple.
    pub bitmap_word_and_ns: f64,
    /// Aggregation hash-table update, per input tuple.
    pub agg_update_tuple_ns: f64,
    /// Aggregate finalization, per output group.
    pub agg_group_output_ns: f64,
    /// Sort cost: `sort_tuple_factor_ns × n × log2(n)`.
    pub sort_tuple_factor_ns: f64,
    /// Memory copy, per byte (push-based SP result forwarding).
    pub copy_byte_ns: f64,
    /// Exchange-queue operation (page push or pop), per page.
    pub exchange_page_ns: f64,
    /// Lock acquisition (SPL list lock, buffer-pool latch).
    pub lock_acquire_ns: f64,
    /// CJOIN admission: fixed per-query pipeline-pause cost.
    pub admission_query_fixed_ns: f64,
    /// CJOIN admission: per dimension tuple scanned/hashed/bit-extended.
    pub admission_tuple_ns: f64,
    /// Distributor routing, per output tuple per subscribed query.
    pub route_tuple_ns: f64,
    /// Extra per-tuple cost of the Volcano (tuple-at-a-time) baseline.
    pub volcano_tuple_overhead_ns: f64,
    /// Fixed per-batch cost of entering the vectorized shared-filter path
    /// (scratch reset, selection-vector setup).
    pub filter_batch_fixed_ns: f64,
    /// Hash probe per distinct *key run* in a batch: the vectorized filter
    /// probes once per run of equal consecutive FKs instead of once per
    /// tuple, which is how batch routing absorbs join-product skew.
    pub filter_probe_run_ns: f64,
    /// Bitmap-bank AND per 64-bit word. Contiguous word-strided layout makes
    /// this cheaper than the pointer-chasing per-tuple
    /// [`bitmap_word_and_ns`](CostModel::bitmap_word_and_ns) charge of the
    /// scalar path.
    pub bank_word_and_ns: f64,
    /// Predicate evaluation, per atomic term per tuple, at the batch rate
    /// (operator dispatch amortized by `select_batch_fixed_ns`). Every
    /// engine evaluates selections batch-at-a-time, so this is the one
    /// selection rate in the model.
    pub select_term_vec_ns: f64,
    /// Fixed per-batch predicate-evaluation cost (operator dispatch is paid
    /// once per batch, not once per tuple).
    pub select_batch_fixed_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_page_fixed_ns: 2_000.0,
            // Shore-MT-style slotted-page tuple access (latching + slot
            // lookup + decode) dominates scan-heavy queries; the paper's Q1
            // runs at ~1.6 µs/tuple end-to-end single-threaded, most of it
            // in the scan stage.
            scan_tuple_ns: 220.0,
            hash_build_tuple_ns: 90.0,
            hash_probe_tuple_ns: 70.0,
            join_output_tuple_ns: 80.0,
            shared_probe_extra_ns: 40.0,
            bitmap_word_and_ns: 6.0,
            agg_update_tuple_ns: 60.0,
            agg_group_output_ns: 120.0,
            sort_tuple_factor_ns: 25.0,
            copy_byte_ns: 0.25,
            exchange_page_ns: 800.0,
            lock_acquire_ns: 120.0,
            admission_query_fixed_ns: 150_000.0,
            admission_tuple_ns: 45.0,
            route_tuple_ns: 45.0,
            // Default 0: PostgreSQL's executor is mature enough that its
            // tuple-at-a-time overhead is offset by a leaner data path, which
            // is how the paper's Fig. 16 shows Postgres *ahead* at low
            // concurrency. Raise to model a naive iterator engine.
            volcano_tuple_overhead_ns: 0.0,
            filter_batch_fixed_ns: 400.0,
            // One probe per key run still pays the full hash+equal cost plus
            // the shared-operator slot indirection.
            filter_probe_run_ns: 110.0,
            bank_word_and_ns: 1.5,
            select_term_vec_ns: 6.0,
            select_batch_fixed_ns: 120.0,
        }
    }
}

impl CostModel {
    /// Cost of sorting `n` tuples.
    pub fn sort_cost(&self, n: usize) -> f64 {
        if n <= 1 {
            return self.sort_tuple_factor_ns;
        }
        self.sort_tuple_factor_ns * n as f64 * (n as f64).log2()
    }

    /// Cost of copying `bytes` (push-based SP forwarding).
    pub fn copy_cost(&self, bytes: usize) -> f64 {
        self.copy_byte_ns * bytes as f64
    }

    /// Cost of one vectorized shared-filter pass over a batch: `runs` hash
    /// probes (one per key run) plus `words` bitmap-bank word ANDs. Charged
    /// per batch, replacing the scalar path's per-tuple probe + AND charges.
    pub fn filter_batch_cost(&self, runs: u64, words: u64) -> f64 {
        self.filter_batch_fixed_ns
            + self.filter_probe_run_ns * runs as f64
            + self.bank_word_and_ns * words as f64
    }

    /// Cost of vectorized predicate evaluation of `terms` atomic terms over
    /// an `n`-tuple batch.
    pub fn select_batch_cost(&self, terms: usize, n: usize) -> f64 {
        self.select_batch_fixed_ns
            + self.select_term_vec_ns * terms.max(1) as f64 * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = CostModel::default();
        assert!(c.scan_tuple_ns > 0.0);
        assert!(c.copy_byte_ns > 0.0);
        assert!(c.shared_probe_extra_ns > 0.0);
    }

    #[test]
    fn sort_cost_is_n_log_n() {
        let c = CostModel::default();
        let n1 = c.sort_cost(1024);
        let n2 = c.sort_cost(2048);
        assert!(n2 > 2.0 * n1, "super-linear");
        assert!(n2 < 2.5 * n1, "but close to n log n");
        assert!(c.sort_cost(0) > 0.0);
    }

    #[test]
    fn copy_cost_linear_in_bytes() {
        let c = CostModel::default();
        assert_eq!(c.copy_cost(32 * 1024), c.copy_byte_ns * 32.0 * 1024.0);
    }

    #[test]
    fn batch_charges_scale_per_run_and_word() {
        let c = CostModel::default();
        let base = c.filter_batch_cost(0, 0);
        assert_eq!(base, c.filter_batch_fixed_ns);
        assert_eq!(
            c.filter_batch_cost(10, 100) - base,
            c.filter_probe_run_ns * 10.0 + c.bank_word_and_ns * 100.0
        );
        // The vectorized filter of a clustered batch (few key runs) is
        // cheaper than the scalar per-tuple charges for the same tuples.
        let tuples = 1000u64;
        let words = tuples; // one-word bitmaps
        let scalar = (c.hash_probe_tuple_ns + c.shared_probe_extra_ns) * tuples as f64
            + c.bitmap_word_and_ns * words as f64;
        let vectorized = c.filter_batch_cost(tuples / 10, words);
        assert!(vectorized < scalar / 2.0, "{vectorized} vs {scalar}");
    }

    #[test]
    fn select_batch_cost_amortizes_dispatch() {
        let c = CostModel::default();
        assert_eq!(
            c.select_batch_cost(2, 100),
            c.select_batch_fixed_ns + c.select_term_vec_ns * 200.0
        );
        // Zero-term predicates still charge one term, as in select_cost.
        assert_eq!(
            c.select_batch_cost(0, 10),
            c.select_batch_fixed_ns + c.select_term_vec_ns * 10.0
        );
    }
}
