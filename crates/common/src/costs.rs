//! Virtual CPU cost model.
//!
//! Every unit of real data-plane work charges virtual nanoseconds through
//! these constants. They are calibrated to commodity-server per-tuple costs
//! (fractions of a microsecond per tuple), so virtual response times are
//! directly comparable *in shape* to the paper's; absolute values are ~100×
//! smaller because the datasets are generated at 1/100 row scale (see
//! DESIGN.md §2).
//!
//! The constants deliberately encode the asymmetries the paper analyses:
//!
//! * `copy_byte_ns` — the push-based SP forwarding cost, paid *by the
//!   producer per satellite* (the serialization point of §4).
//! * `bitmap_word_and_ns` and `shared_probe_extra_ns` — the shared-operator
//!   bookkeeping overhead that makes GQP lose at low concurrency (§5.2.2).
//! * `volcano_tuple_overhead_ns` — tuple-at-a-time iterator overhead of the
//!   Postgres-substitute baseline.

/// Tunable virtual-cost constants (nanoseconds unless noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost to fetch+pin one page from the buffer pool.
    pub scan_page_fixed_ns: f64,
    /// Per-tuple decode cost during scans.
    pub scan_tuple_ns: f64,
    /// Per atomic predicate term, per tuple.
    pub select_term_ns: f64,
    /// Hash-table insert during a join build, per tuple (`hash()` part).
    pub hash_build_tuple_ns: f64,
    /// Hash-table lookup during a join probe, per tuple (`hash()`+`equal()`).
    pub hash_probe_tuple_ns: f64,
    /// Join output assembly, per emitted tuple.
    pub join_output_tuple_ns: f64,
    /// Extra bookkeeping of a *shared* hash-join probe, per tuple, on top of
    /// the query-centric probe (wider hash table, slot indirection).
    pub shared_probe_extra_ns: f64,
    /// Bitmap AND, per 64-bit word, per tuple.
    pub bitmap_word_and_ns: f64,
    /// Aggregation hash-table update, per input tuple.
    pub agg_update_tuple_ns: f64,
    /// Aggregate finalization, per output group.
    pub agg_group_output_ns: f64,
    /// Sort cost: `sort_tuple_factor_ns × n × log2(n)`.
    pub sort_tuple_factor_ns: f64,
    /// Memory copy, per byte (push-based SP result forwarding).
    pub copy_byte_ns: f64,
    /// Exchange-queue operation (page push or pop), per page.
    pub exchange_page_ns: f64,
    /// Lock acquisition (SPL list lock, buffer-pool latch).
    pub lock_acquire_ns: f64,
    /// CJOIN admission: fixed per-query pipeline-pause cost.
    pub admission_query_fixed_ns: f64,
    /// CJOIN admission: per dimension tuple scanned/hashed/bit-extended.
    pub admission_tuple_ns: f64,
    /// Distributor routing, per output tuple per subscribed query.
    pub route_tuple_ns: f64,
    /// Extra per-tuple cost of the Volcano (tuple-at-a-time) baseline.
    pub volcano_tuple_overhead_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_page_fixed_ns: 2_000.0,
            // Shore-MT-style slotted-page tuple access (latching + slot
            // lookup + decode) dominates scan-heavy queries; the paper's Q1
            // runs at ~1.6 µs/tuple end-to-end single-threaded, most of it
            // in the scan stage.
            scan_tuple_ns: 220.0,
            select_term_ns: 15.0,
            hash_build_tuple_ns: 90.0,
            hash_probe_tuple_ns: 70.0,
            join_output_tuple_ns: 80.0,
            shared_probe_extra_ns: 40.0,
            bitmap_word_and_ns: 6.0,
            agg_update_tuple_ns: 60.0,
            agg_group_output_ns: 120.0,
            sort_tuple_factor_ns: 25.0,
            copy_byte_ns: 0.25,
            exchange_page_ns: 800.0,
            lock_acquire_ns: 120.0,
            admission_query_fixed_ns: 150_000.0,
            admission_tuple_ns: 45.0,
            route_tuple_ns: 45.0,
            // Default 0: PostgreSQL's executor is mature enough that its
            // tuple-at-a-time overhead is offset by a leaner data path, which
            // is how the paper's Fig. 16 shows Postgres *ahead* at low
            // concurrency. Raise to model a naive iterator engine.
            volcano_tuple_overhead_ns: 0.0,
        }
    }
}

impl CostModel {
    /// Cost of evaluating `pred` over `n` tuples.
    pub fn select_cost(&self, terms: usize, n: usize) -> f64 {
        self.select_term_ns * terms.max(1) as f64 * n as f64
    }

    /// Cost of sorting `n` tuples.
    pub fn sort_cost(&self, n: usize) -> f64 {
        if n <= 1 {
            return self.sort_tuple_factor_ns;
        }
        self.sort_tuple_factor_ns * n as f64 * (n as f64).log2()
    }

    /// Cost of copying `bytes` (push-based SP forwarding).
    pub fn copy_cost(&self, bytes: usize) -> f64 {
        self.copy_byte_ns * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = CostModel::default();
        assert!(c.scan_tuple_ns > 0.0);
        assert!(c.copy_byte_ns > 0.0);
        assert!(c.shared_probe_extra_ns > 0.0);
    }

    #[test]
    fn select_cost_scales_with_terms_and_tuples() {
        let c = CostModel::default();
        assert_eq!(c.select_cost(2, 100), c.select_term_ns * 200.0);
        // Predicate::True (0 terms) still costs at least 1 term.
        assert_eq!(c.select_cost(0, 10), c.select_term_ns * 10.0);
    }

    #[test]
    fn sort_cost_is_n_log_n() {
        let c = CostModel::default();
        let n1 = c.sort_cost(1024);
        let n2 = c.sort_cost(2048);
        assert!(n2 > 2.0 * n1, "super-linear");
        assert!(n2 < 2.5 * n1, "but close to n log n");
        assert!(c.sort_cost(0) > 0.0);
    }

    #[test]
    fn copy_cost_linear_in_bytes() {
        let c = CostModel::default();
        assert_eq!(c.copy_cost(32 * 1024), c.copy_byte_ns * 32.0 * 1024.0);
    }
}
