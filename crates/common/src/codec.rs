//! Fixed-width row ⇄ bytes codec and page packing.
//!
//! Pages are `PAGE_SIZE`-byte buffers: a 4-byte little-endian row count
//! followed by fixed-width rows (width determined by the table's [`Schema`]).
//! This is the layout the storage manager persists and the layout whose byte
//! volume the simulated disk charges for.

use std::sync::Arc;

use crate::schema::{ColType, Schema};
use crate::value::{Row, Value};
use crate::PAGE_SIZE;

/// Encode `row` at the end of `buf` according to `schema`.
///
/// Panics if the row does not conform to the schema (row production is
/// internal; malformed rows are bugs, not inputs).
pub fn encode_row(schema: &Schema, row: &[Value], buf: &mut Vec<u8>) {
    debug_assert!(schema.validate(row), "row does not match schema");
    for (v, c) in row.iter().zip(schema.columns()) {
        match (c.ty, v) {
            (ColType::Int, Value::Int(x)) => buf.extend_from_slice(&x.to_le_bytes()),
            (ColType::Float, Value::Float(x)) => {
                buf.extend_from_slice(&x.to_le_bytes())
            }
            (ColType::Str(n), Value::Str(s)) => {
                let bytes = s.as_bytes();
                assert!(bytes.len() <= n, "string exceeds declared width");
                buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                buf.extend_from_slice(bytes);
                buf.resize(buf.len() + (n - bytes.len()), 0);
            }
            (ty, v) => panic!("type mismatch: column {ty:?} vs value {v:?}"),
        }
    }
}

/// A typed decode failure: the page bytes do not match the schema. Surfaced
/// instead of a panic so storage-level corruption maps to per-query error
/// outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What was wrong with the bytes.
    pub reason: &'static str,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt page: {}", self.reason)
    }
}

impl std::error::Error for CodecError {}

/// Decode one row starting at `buf[offset..]`, surfacing corruption as a
/// typed [`CodecError`].
pub fn try_decode_row(
    schema: &Schema,
    buf: &[u8],
    offset: usize,
) -> Result<Row, CodecError> {
    let mut pos = offset;
    let mut row = Row::with_capacity(schema.arity());
    for c in schema.columns() {
        match c.ty {
            ColType::Int => {
                let b: [u8; 8] = buf
                    .get(pos..pos + 8)
                    .and_then(|s| s.try_into().ok())
                    .ok_or(CodecError {
                        reason: "row overruns page",
                    })?;
                row.push(Value::Int(i64::from_le_bytes(b)));
                pos += 8;
            }
            ColType::Float => {
                let b: [u8; 8] = buf
                    .get(pos..pos + 8)
                    .and_then(|s| s.try_into().ok())
                    .ok_or(CodecError {
                        reason: "row overruns page",
                    })?;
                row.push(Value::Float(f64::from_le_bytes(b)));
                pos += 8;
            }
            ColType::Str(n) => {
                let hdr = buf.get(pos..pos + 2).ok_or(CodecError {
                    reason: "row overruns page",
                })?;
                let len = u16::from_le_bytes([hdr[0], hdr[1]]) as usize;
                if len > n {
                    return Err(CodecError {
                        reason: "string length exceeds declared width",
                    });
                }
                let raw = buf.get(pos + 2..pos + 2 + len).ok_or(CodecError {
                    reason: "row overruns page",
                })?;
                let s = std::str::from_utf8(raw).map_err(|_| CodecError {
                    reason: "invalid utf-8",
                })?;
                row.push(Value::str(s));
                pos += 2 + n;
            }
        }
    }
    Ok(row)
}

/// Decode one row starting at `buf[offset..]`; panics on corrupt bytes
/// (hot-path variant — storage verifies page checksums upstream).
pub fn decode_row(schema: &Schema, buf: &[u8], offset: usize) -> Row {
    match try_decode_row(schema, buf, offset) {
        Ok(row) => row,
        Err(e) => panic!("{e}"),
    }
}

/// An immutable storage page: packed rows plus the owning table's schema
/// knowledge is kept externally (pages are schema-less byte containers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Arc<[u8]>,
    rows: u32,
}

impl Page {
    /// Number of rows packed in this page.
    pub fn row_count(&self) -> usize {
        self.rows as usize
    }

    /// Raw byte size (always `PAGE_SIZE` for full pages; the final page of a
    /// table may be shorter).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Raw encoded bytes (header + packed rows) — checksummed by storage.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Decode every row in the page, surfacing corruption as a typed error.
    pub fn try_decode_all(&self, schema: &Schema) -> Result<Vec<Row>, CodecError> {
        let width = schema.row_width();
        let mut out = Vec::with_capacity(self.rows as usize);
        for i in 0..self.rows as usize {
            out.push(try_decode_row(schema, &self.bytes, 4 + i * width)?);
        }
        Ok(out)
    }

    /// Decode every row in the page.
    pub fn decode_all(&self, schema: &Schema) -> Vec<Row> {
        let width = schema.row_width();
        let mut out = Vec::with_capacity(self.rows as usize);
        for i in 0..self.rows as usize {
            out.push(decode_row(schema, &self.bytes, 4 + i * width));
        }
        out
    }

    /// Decode a single row by index.
    pub fn decode_at(&self, schema: &Schema, idx: usize) -> Row {
        assert!(idx < self.rows as usize, "row index out of bounds");
        decode_row(schema, &self.bytes, 4 + idx * schema.row_width())
    }
}

/// Incrementally packs rows into pages.
pub struct PageBuilder<'a> {
    schema: &'a Schema,
    rows_per_page: usize,
    buf: Vec<u8>,
    count: u32,
    pages: Vec<Page>,
}

impl<'a> PageBuilder<'a> {
    /// Start a builder for `schema` with the standard page size.
    pub fn new(schema: &'a Schema) -> Self {
        Self::with_page_size(schema, PAGE_SIZE)
    }

    /// Start a builder with a custom page size (tests).
    pub fn with_page_size(schema: &'a Schema, page_size: usize) -> Self {
        let rows_per_page = schema.rows_per_page(page_size);
        PageBuilder {
            schema,
            rows_per_page,
            buf: Vec::with_capacity(page_size),
            count: 0,
            pages: Vec::new(),
        }
    }

    /// Append one row, sealing a page when full.
    pub fn push(&mut self, row: &[Value]) {
        if self.count == 0 {
            self.buf.extend_from_slice(&0u32.to_le_bytes());
        }
        encode_row(self.schema, row, &mut self.buf);
        self.count += 1;
        if self.count as usize >= self.rows_per_page {
            self.seal();
        }
    }

    fn seal(&mut self) {
        if self.count == 0 {
            return;
        }
        self.buf[0..4].copy_from_slice(&self.count.to_le_bytes());
        let bytes: Arc<[u8]> = Arc::from(std::mem::take(&mut self.buf).into_boxed_slice());
        self.pages.push(Page {
            bytes,
            rows: self.count,
        });
        self.count = 0;
    }

    /// Seal any partial page and return all pages.
    pub fn finish(mut self) -> Vec<Page> {
        self.seal();
        self.pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColType::Int),
            Column::new("v", ColType::Float),
            Column::new("tag", ColType::Str(8)),
        ])
    }

    fn row(i: i64) -> Row {
        vec![
            Value::Int(i),
            Value::Float(i as f64 * 0.5),
            Value::str(&format!("t{i}")),
        ]
    }

    #[test]
    fn roundtrip_single_row() {
        let s = schema();
        let mut buf = Vec::new();
        let r = row(42);
        encode_row(&s, &r, &mut buf);
        assert_eq!(buf.len(), s.row_width());
        assert_eq!(decode_row(&s, &buf, 0), r);
    }

    #[test]
    fn pages_pack_and_decode_in_order() {
        let s = schema();
        let mut b = PageBuilder::with_page_size(&s, 128); // tiny pages
        let rows: Vec<Row> = (0..25).map(row).collect();
        for r in &rows {
            b.push(r);
        }
        let pages = b.finish();
        assert!(pages.len() > 1, "expected multiple pages");
        let decoded: Vec<Row> = pages.iter().flat_map(|p| p.decode_all(&s)).collect();
        assert_eq!(decoded, rows);
    }

    #[test]
    fn decode_at_matches_decode_all() {
        let s = schema();
        let mut b = PageBuilder::new(&s);
        for i in 0..10 {
            b.push(&row(i));
        }
        let pages = b.finish();
        assert_eq!(pages.len(), 1);
        let all = pages[0].decode_all(&s);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(&pages[0].decode_at(&s, i), r);
        }
    }

    #[test]
    fn empty_builder_yields_no_pages() {
        let s = schema();
        let b = PageBuilder::new(&s);
        assert!(b.finish().is_empty());
    }

    #[test]
    fn string_padding_preserves_content() {
        let s = Schema::new(vec![Column::new("s", ColType::Str(16))]);
        let mut buf = Vec::new();
        encode_row(&s, &[Value::str("ab")], &mut buf);
        assert_eq!(buf.len(), 18);
        assert_eq!(decode_row(&s, &buf, 0), vec![Value::str("ab")]);
        // empty string
        let mut buf2 = Vec::new();
        encode_row(&s, &[Value::str("")], &mut buf2);
        assert_eq!(decode_row(&s, &buf2, 0), vec![Value::str("")]);
    }

    #[test]
    #[should_panic(expected = "row index out of bounds")]
    fn decode_at_bounds_checked() {
        let s = schema();
        let mut b = PageBuilder::new(&s);
        b.push(&row(1));
        let pages = b.finish();
        pages[0].decode_at(&s, 5);
    }
}
