//! Query specifications and structural signatures.
//!
//! Every engine configuration consumes the same [`StarQuery`] spec: a fact
//! table, a chain of dimension equi-joins with per-dimension selection
//! predicates (the CJOIN-supported shape), optional fact predicates, and a
//! query-centric aggregation/sort tail. A star query with zero dimensions
//! degenerates to a scan-aggregate query, which is how TPC-H Q1 is expressed.
//!
//! Structural **signatures** (stable hashes that exclude the query id) are
//! what SP matches on: two packets with equal signatures are the *identical
//! sub-plans* of paper §2.2.

use std::hash::Hash;

use crate::fxhash;
use crate::predicate::Predicate;

/// Which relation a column reference addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColSource {
    /// The fact table.
    Fact,
    /// The `i`-th dimension join of the query (0-based).
    Dim(usize),
}

/// A column reference in projection / grouping / aggregation lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Source relation.
    pub source: ColSource,
    /// Column name within that relation.
    pub col: String,
}

impl ColRef {
    /// Reference a fact-table column.
    pub fn fact(col: &str) -> ColRef {
        ColRef {
            source: ColSource::Fact,
            col: col.to_string(),
        }
    }

    /// Reference a column of the `i`-th dimension join.
    pub fn dim(i: usize, col: &str) -> ColRef {
        ColRef {
            source: ColSource::Dim(i),
            col: col.to_string(),
        }
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Sum of a numeric column.
    Sum,
    /// Row count (column ignored).
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
}

/// Aggregate input expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggExpr {
    /// A single column.
    Col(ColRef),
    /// Product of two numeric columns (SSB Q1.x revenue:
    /// `SUM(lo_extendedprice * lo_discount)`).
    Mul(ColRef, ColRef),
}

/// One aggregate output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// Function to apply.
    pub func: AggFn,
    /// Input expression (`None` only for `Count`).
    pub expr: Option<AggExpr>,
}

impl AggSpec {
    /// `SUM(col)`
    pub fn sum(col: ColRef) -> AggSpec {
        AggSpec {
            func: AggFn::Sum,
            expr: Some(AggExpr::Col(col)),
        }
    }

    /// `SUM(a * b)`
    pub fn sum_product(a: ColRef, b: ColRef) -> AggSpec {
        AggSpec {
            func: AggFn::Sum,
            expr: Some(AggExpr::Mul(a, b)),
        }
    }

    /// `COUNT(*)`
    pub fn count() -> AggSpec {
        AggSpec {
            func: AggFn::Count,
            expr: None,
        }
    }
}

/// Sort key over the aggregate output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderKey {
    /// Index into the aggregate output row (group-by columns first, then
    /// aggregates).
    pub output_idx: usize,
    /// Descending order if set.
    pub desc: bool,
}

/// One dimension equi-join of a star query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimJoin {
    /// Dimension table name.
    pub dim: String,
    /// Foreign-key column on the fact table.
    pub fact_fk: String,
    /// Primary-key column on the dimension table.
    pub dim_pk: String,
    /// Selection predicate over the dimension table (bound to its schema).
    pub pred: Predicate,
    /// Dimension columns needed downstream (projection payload).
    pub payload: Vec<String>,
}

/// A star (or scan-aggregate) query specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StarQuery {
    /// Unique submission id (excluded from signatures).
    pub id: u64,
    /// Fact table name.
    pub fact: String,
    /// Predicate over fact columns (bound to the fact schema). Evaluated at
    /// the scan by query-centric plans and on CJOIN's output by the GQP
    /// (paper §3.2: CJOIN does not push fact predicates into the pipeline).
    pub fact_pred: Predicate,
    /// Dimension joins in plan order.
    pub dims: Vec<DimJoin>,
    /// Group-by columns (empty ⇒ a single global group).
    pub group_by: Vec<ColRef>,
    /// Aggregates computed per group.
    pub aggs: Vec<AggSpec>,
    /// Ordering over the aggregate output.
    pub order_by: Vec<OrderKey>,
}

impl StarQuery {
    /// Structural signature of the *whole* plan minus the id. Two queries
    /// with equal full signatures are identical for SP purposes.
    pub fn full_signature(&self) -> u64 {
        fxhash::hash_one(&(
            &self.fact,
            &self.fact_pred,
            &self.dims,
            &self.group_by,
            &self.aggs,
            &self.order_by,
        ))
    }

    /// Signature of the join sub-plan up to and including the `k`-th
    /// dimension join (scan + fact predicate + joins `0..=k`). This is the
    /// pivot-operator identity QPipe-SP matches at the join stage.
    pub fn join_prefix_signature(&self, k: usize) -> u64 {
        assert!(k < self.dims.len(), "join index out of range");
        fxhash::hash_one(&(&self.fact, &self.fact_pred, &self.dims[..=k]))
    }

    /// Signature of the joins-only part (everything below aggregation).
    /// Matches when two queries differ only in their aggregation tail —
    /// the Figure 2a scenario.
    pub fn joins_signature(&self) -> u64 {
        fxhash::hash_one(&(&self.fact, &self.fact_pred, &self.dims))
    }

    /// Signature CJOIN-SP matches on: the star-query part evaluated by the
    /// CJOIN stage — fact table, dimension joins and their predicates, and
    /// the projection implied by payloads. Fact predicates are applied on
    /// CJOIN output per packet, so they are part of the packet identity too.
    pub fn cjoin_signature(&self) -> u64 {
        fxhash::hash_one(&(&self.fact, &self.fact_pred, &self.dims))
    }

    /// Workload-**shape** signature: the structural plan minus predicate
    /// constants — fact table, join structure (dimension tables, key
    /// columns, payloads), the **skeleton** of every predicate (column,
    /// operator kind, term arity — but not the literals), grouping,
    /// aggregates and ordering. Two instances of the same query template
    /// with different parameter values (e.g. two SSB Q3.2 draws with
    /// different nations) share a shape; structurally different templates —
    /// including ones differing only in predicate *form*, like an equality
    /// vs. a wide `IN` disjunction with its very different selectivity and
    /// evaluation cost — do not. This is the key the sharing governor's
    /// per-shape hysteresis and calibration state is kept under: a stream
    /// alternating two shapes routes each by its own incumbent instead of
    /// flip-counting a global one.
    pub fn shape_signature(&self) -> u64 {
        let dim_shape: Vec<(&str, &str, &str, &[String], u64)> = self
            .dims
            .iter()
            .map(|d| {
                (
                    d.dim.as_str(),
                    d.fact_fk.as_str(),
                    d.dim_pk.as_str(),
                    d.payload.as_slice(),
                    predicate_skeleton(&d.pred),
                )
            })
            .collect();
        fxhash::hash_one(&(
            &self.fact,
            predicate_skeleton(&self.fact_pred),
            dim_shape,
            &self.group_by,
            &self.aggs,
            &self.order_by,
        ))
    }

    /// Output arity of the aggregate (group-by columns + aggregates).
    pub fn output_arity(&self) -> usize {
        self.group_by.len() + self.aggs.len()
    }
}

/// Structural hash of a predicate with its literals erased: variant,
/// column, comparison operator, and term arity (an 8-way `IN` differs from
/// a 2-way one — their evaluation cost and selectivity profile differ),
/// recursing through the boolean connectives.
fn predicate_skeleton(p: &Predicate) -> u64 {
    use crate::predicate::Predicate as P;
    match p {
        P::True => fxhash::hash_one(&0u8),
        P::Cmp { col, op, .. } => fxhash::hash_one(&(1u8, *col, *op as u8)),
        P::InSet { col, vals } => fxhash::hash_one(&(2u8, *col, vals.len())),
        P::Between { col, .. } => fxhash::hash_one(&(3u8, *col)),
        P::And(ps) => fxhash::hash_one(&(
            4u8,
            ps.iter().map(predicate_skeleton).collect::<Vec<u64>>(),
        )),
        P::Or(ps) => fxhash::hash_one(&(
            5u8,
            ps.iter().map(predicate_skeleton).collect::<Vec<u64>>(),
        )),
        P::Not(inner) => fxhash::hash_one(&(6u8, predicate_skeleton(inner))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::value::Value;

    fn q(id: u64, nation: &str) -> StarQuery {
        StarQuery {
            id,
            fact: "lineorder".into(),
            fact_pred: Predicate::True,
            dims: vec![
                DimJoin {
                    dim: "customer".into(),
                    fact_fk: "lo_custkey".into(),
                    dim_pk: "c_custkey".into(),
                    pred: Predicate::eq(2, Value::str(nation)),
                    payload: vec!["c_city".into()],
                },
                DimJoin {
                    dim: "supplier".into(),
                    fact_fk: "lo_suppkey".into(),
                    dim_pk: "s_suppkey".into(),
                    pred: Predicate::True,
                    payload: vec!["s_city".into()],
                },
            ],
            group_by: vec![ColRef::dim(0, "c_city")],
            aggs: vec![AggSpec::sum(ColRef::fact("lo_revenue"))],
            order_by: vec![OrderKey {
                output_idx: 1,
                desc: true,
            }],
        }
    }

    #[test]
    fn id_does_not_affect_signatures() {
        let a = q(1, "FRANCE");
        let b = q(2, "FRANCE");
        assert_eq!(a.full_signature(), b.full_signature());
        assert_eq!(a.joins_signature(), b.joins_signature());
        assert_eq!(a.cjoin_signature(), b.cjoin_signature());
    }

    #[test]
    fn predicate_changes_signatures() {
        let a = q(1, "FRANCE");
        let b = q(1, "GERMANY");
        assert_ne!(a.full_signature(), b.full_signature());
        assert_ne!(a.join_prefix_signature(0), b.join_prefix_signature(0));
    }

    #[test]
    fn prefix_signatures_distinguish_depth() {
        let a = q(1, "FRANCE");
        assert_ne!(a.join_prefix_signature(0), a.join_prefix_signature(1));
    }

    #[test]
    fn queries_differing_only_in_agg_share_joins_signature() {
        let a = q(1, "FRANCE");
        let mut b = q(2, "FRANCE");
        b.aggs = vec![AggSpec::count()];
        assert_ne!(a.full_signature(), b.full_signature());
        assert_eq!(a.joins_signature(), b.joins_signature());
    }

    #[test]
    #[should_panic(expected = "join index out of range")]
    fn prefix_bounds_checked() {
        q(1, "FRANCE").join_prefix_signature(5);
    }

    #[test]
    fn output_arity_counts_groups_and_aggs() {
        assert_eq!(q(1, "X").output_arity(), 2);
    }

    #[test]
    fn shape_signature_ignores_predicate_constants_only() {
        // Same template, different parameter: same shape, different plans.
        let a = q(1, "FRANCE");
        let b = q(2, "GERMANY");
        assert_eq!(a.shape_signature(), b.shape_signature());
        assert_ne!(a.full_signature(), b.full_signature());
        // Predicate *structure* is part of the shape: an equality and a
        // wide IN disjunction on the same column are different workload
        // shapes (different selectivity and evaluation-cost profiles)…
        let mut wide = q(1, "FRANCE");
        wide.dims[0].pred = Predicate::in_set(
            2,
            (0..8).map(|i| Value::str(&format!("N{i}"))).collect(),
        );
        assert_ne!(a.shape_signature(), wide.shape_signature());
        // …and so is IN-arity and the fact predicate's skeleton.
        let mut wider = wide.clone();
        wider.dims[0].pred = Predicate::in_set(
            2,
            (0..12).map(|i| Value::str(&format!("N{i}"))).collect(),
        );
        assert_ne!(wide.shape_signature(), wider.shape_signature());
        let mut fp = q(1, "FRANCE");
        fp.fact_pred = Predicate::between(0, 1i64, 3i64);
        assert_ne!(a.shape_signature(), fp.shape_signature());
        // IN literals themselves still don't matter, only the arity.
        let mut same_arity = wide.clone();
        same_arity.dims[0].pred = Predicate::in_set(
            2,
            (10..18).map(|i| Value::str(&format!("N{i}"))).collect(),
        );
        assert_eq!(wide.shape_signature(), same_arity.shape_signature());
        // Structural changes break the shape: fact table…
        let mut c = q(1, "FRANCE");
        c.fact = "lineorder2".into();
        assert_ne!(a.shape_signature(), c.shape_signature());
        // …join structure…
        let mut d = q(1, "FRANCE");
        d.dims.pop();
        assert_ne!(a.shape_signature(), d.shape_signature());
        // …and aggregation tail.
        let mut e = q(1, "FRANCE");
        e.aggs = vec![AggSpec::count()];
        assert_ne!(a.shape_signature(), e.shape_signature());
    }
}
