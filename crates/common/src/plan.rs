//! Query specifications and structural signatures.
//!
//! Every engine configuration consumes the same [`StarQuery`] spec: a fact
//! table, a chain of dimension equi-joins with per-dimension selection
//! predicates (the CJOIN-supported shape), optional fact predicates, and a
//! query-centric aggregation/sort tail. A star query with zero dimensions
//! degenerates to a scan-aggregate query, which is how TPC-H Q1 is expressed.
//!
//! Structural **signatures** (stable hashes that exclude the query id) are
//! what SP matches on: two packets with equal signatures are the *identical
//! sub-plans* of paper §2.2.

use std::hash::Hash;

use crate::fxhash;
use crate::predicate::Predicate;

/// Which relation a column reference addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColSource {
    /// The fact table.
    Fact,
    /// The `i`-th dimension join of the query (0-based).
    Dim(usize),
}

/// A column reference in projection / grouping / aggregation lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Source relation.
    pub source: ColSource,
    /// Column name within that relation.
    pub col: String,
}

impl ColRef {
    /// Reference a fact-table column.
    pub fn fact(col: &str) -> ColRef {
        ColRef {
            source: ColSource::Fact,
            col: col.to_string(),
        }
    }

    /// Reference a column of the `i`-th dimension join.
    pub fn dim(i: usize, col: &str) -> ColRef {
        ColRef {
            source: ColSource::Dim(i),
            col: col.to_string(),
        }
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// Sum of a numeric column.
    Sum,
    /// Row count (column ignored).
    Count,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
}

/// Aggregate input expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggExpr {
    /// A single column.
    Col(ColRef),
    /// Product of two numeric columns (SSB Q1.x revenue:
    /// `SUM(lo_extendedprice * lo_discount)`).
    Mul(ColRef, ColRef),
}

/// One aggregate output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// Function to apply.
    pub func: AggFn,
    /// Input expression (`None` only for `Count`).
    pub expr: Option<AggExpr>,
}

impl AggSpec {
    /// `SUM(col)`
    pub fn sum(col: ColRef) -> AggSpec {
        AggSpec {
            func: AggFn::Sum,
            expr: Some(AggExpr::Col(col)),
        }
    }

    /// `SUM(a * b)`
    pub fn sum_product(a: ColRef, b: ColRef) -> AggSpec {
        AggSpec {
            func: AggFn::Sum,
            expr: Some(AggExpr::Mul(a, b)),
        }
    }

    /// `COUNT(*)`
    pub fn count() -> AggSpec {
        AggSpec {
            func: AggFn::Count,
            expr: None,
        }
    }
}

/// Sort key over the aggregate output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderKey {
    /// Index into the aggregate output row (group-by columns first, then
    /// aggregates).
    pub output_idx: usize,
    /// Descending order if set.
    pub desc: bool,
}

/// One dimension equi-join of a star query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimJoin {
    /// Dimension table name.
    pub dim: String,
    /// Foreign-key column on the fact table.
    pub fact_fk: String,
    /// Primary-key column on the dimension table.
    pub dim_pk: String,
    /// Selection predicate over the dimension table (bound to its schema).
    pub pred: Predicate,
    /// Dimension columns needed downstream (projection payload).
    pub payload: Vec<String>,
}

/// A star (or scan-aggregate) query specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StarQuery {
    /// Unique submission id (excluded from signatures).
    pub id: u64,
    /// Fact table name.
    pub fact: String,
    /// Predicate over fact columns (bound to the fact schema). Evaluated at
    /// the scan by query-centric plans and on CJOIN's output by the GQP
    /// (paper §3.2: CJOIN does not push fact predicates into the pipeline).
    pub fact_pred: Predicate,
    /// Dimension joins in plan order.
    pub dims: Vec<DimJoin>,
    /// Group-by columns (empty ⇒ a single global group).
    pub group_by: Vec<ColRef>,
    /// Aggregates computed per group.
    pub aggs: Vec<AggSpec>,
    /// Ordering over the aggregate output.
    pub order_by: Vec<OrderKey>,
}

impl StarQuery {
    /// Structural signature of the *whole* plan minus the id. Two queries
    /// with equal full signatures are identical for SP purposes.
    pub fn full_signature(&self) -> u64 {
        fxhash::hash_one(&(
            &self.fact,
            &self.fact_pred,
            &self.dims,
            &self.group_by,
            &self.aggs,
            &self.order_by,
        ))
    }

    /// Signature of the join sub-plan up to and including the `k`-th
    /// dimension join (scan + fact predicate + joins `0..=k`). This is the
    /// pivot-operator identity QPipe-SP matches at the join stage.
    pub fn join_prefix_signature(&self, k: usize) -> u64 {
        assert!(k < self.dims.len(), "join index out of range");
        fxhash::hash_one(&(&self.fact, &self.fact_pred, &self.dims[..=k]))
    }

    /// Signature of the joins-only part (everything below aggregation).
    /// Matches when two queries differ only in their aggregation tail —
    /// the Figure 2a scenario.
    pub fn joins_signature(&self) -> u64 {
        fxhash::hash_one(&(&self.fact, &self.fact_pred, &self.dims))
    }

    /// Signature CJOIN-SP matches on: the star-query part evaluated by the
    /// CJOIN stage — fact table, dimension joins and their predicates, and
    /// the projection implied by payloads. Fact predicates are applied on
    /// CJOIN output per packet, so they are part of the packet identity too.
    pub fn cjoin_signature(&self) -> u64 {
        fxhash::hash_one(&(&self.fact, &self.fact_pred, &self.dims))
    }

    /// Output arity of the aggregate (group-by columns + aggregates).
    pub fn output_arity(&self) -> usize {
        self.group_by.len() + self.aggs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::value::Value;

    fn q(id: u64, nation: &str) -> StarQuery {
        StarQuery {
            id,
            fact: "lineorder".into(),
            fact_pred: Predicate::True,
            dims: vec![
                DimJoin {
                    dim: "customer".into(),
                    fact_fk: "lo_custkey".into(),
                    dim_pk: "c_custkey".into(),
                    pred: Predicate::eq(2, Value::str(nation)),
                    payload: vec!["c_city".into()],
                },
                DimJoin {
                    dim: "supplier".into(),
                    fact_fk: "lo_suppkey".into(),
                    dim_pk: "s_suppkey".into(),
                    pred: Predicate::True,
                    payload: vec!["s_city".into()],
                },
            ],
            group_by: vec![ColRef::dim(0, "c_city")],
            aggs: vec![AggSpec::sum(ColRef::fact("lo_revenue"))],
            order_by: vec![OrderKey {
                output_idx: 1,
                desc: true,
            }],
        }
    }

    #[test]
    fn id_does_not_affect_signatures() {
        let a = q(1, "FRANCE");
        let b = q(2, "FRANCE");
        assert_eq!(a.full_signature(), b.full_signature());
        assert_eq!(a.joins_signature(), b.joins_signature());
        assert_eq!(a.cjoin_signature(), b.cjoin_signature());
    }

    #[test]
    fn predicate_changes_signatures() {
        let a = q(1, "FRANCE");
        let b = q(1, "GERMANY");
        assert_ne!(a.full_signature(), b.full_signature());
        assert_ne!(a.join_prefix_signature(0), b.join_prefix_signature(0));
    }

    #[test]
    fn prefix_signatures_distinguish_depth() {
        let a = q(1, "FRANCE");
        assert_ne!(a.join_prefix_signature(0), a.join_prefix_signature(1));
    }

    #[test]
    fn queries_differing_only_in_agg_share_joins_signature() {
        let a = q(1, "FRANCE");
        let mut b = q(2, "FRANCE");
        b.aggs = vec![AggSpec::count()];
        assert_ne!(a.full_signature(), b.full_signature());
        assert_eq!(a.joins_signature(), b.joins_signature());
    }

    #[test]
    #[should_panic(expected = "join index out of range")]
    fn prefix_bounds_checked() {
        q(1, "FRANCE").join_prefix_signature(5);
    }

    #[test]
    fn output_arity_counts_groups_and_aggs() {
        assert_eq!(q(1, "X").output_arity(), 2);
    }
}
