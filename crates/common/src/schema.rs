//! Table schemas with fixed-width physical layout.

use crate::value::Value;

/// Physical column type. Strings carry a fixed maximum byte width so rows
/// have a schema-determined encoded size (Shore-MT-style fixed-width pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 8-byte signed integer.
    Int,
    /// 8-byte IEEE-754 float.
    Float,
    /// Length-prefixed string padded to `max` bytes.
    Str(usize),
}

impl ColType {
    /// Encoded width in bytes.
    pub fn width(self) -> usize {
        match self {
            ColType::Int | ColType::Float => 8,
            ColType::Str(n) => 2 + n,
        }
    }

    /// Whether `v` conforms to this type (strings must fit the max width).
    pub fn admits(self, v: &Value) -> bool {
        match (self, v) {
            (ColType::Int, Value::Int(_)) => true,
            (ColType::Float, Value::Float(_)) => true,
            (ColType::Str(n), Value::Str(s)) => s.len() <= n,
            _ => false,
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Column name (unique within its schema).
    pub name: String,
    /// Physical type.
    pub ty: ColType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: &str, ty: ColType) -> Column {
        Column {
            name: name.to_string(),
            ty,
        }
    }
}

/// An ordered set of columns describing one table (or operator output).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    cols: Vec<Column>,
}

impl Schema {
    /// Build a schema; panics on duplicate column names.
    pub fn new(cols: Vec<Column>) -> Schema {
        for (i, c) in cols.iter().enumerate() {
            for other in &cols[..i] {
                assert_ne!(c.name, other.name, "duplicate column '{}'", c.name);
            }
        }
        Schema { cols }
    }

    /// Columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Index of `name`; panics if absent (schema errors are programming
    /// errors in this system — plans are machine-generated).
    pub fn col(&self, name: &str) -> usize {
        self.try_col(name)
            .unwrap_or_else(|| panic!("no column '{name}' in schema {:?}", self.names()))
    }

    /// Index of `name`, if present.
    pub fn try_col(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|c| c.name == name)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.cols.iter().map(|c| c.name.as_str()).collect()
    }

    /// Encoded row width in bytes (fixed for the whole table).
    pub fn row_width(&self) -> usize {
        self.cols.iter().map(|c| c.ty.width()).sum()
    }

    /// Rows that fit one page of `page_size` bytes after the 4-byte header.
    pub fn rows_per_page(&self, page_size: usize) -> usize {
        let usable = page_size - 4;
        let w = self.row_width().max(1);
        (usable / w).max(1)
    }

    /// Check that a row conforms (arity + per-column types).
    pub fn validate(&self, row: &[Value]) -> bool {
        row.len() == self.cols.len()
            && row.iter().zip(&self.cols).all(|(v, c)| c.ty.admits(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("k", ColType::Int),
            Column::new("x", ColType::Float),
            Column::new("name", ColType::Str(10)),
        ])
    }

    #[test]
    fn widths_sum() {
        let s = sample();
        assert_eq!(s.row_width(), 8 + 8 + 12);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.col("x"), 1);
        assert_eq!(s.try_col("missing"), None);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics() {
        sample().col("zzz");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            Column::new("a", ColType::Int),
            Column::new("a", ColType::Int),
        ]);
    }

    #[test]
    fn validation_checks_types_and_width() {
        let s = sample();
        assert!(s.validate(&[Value::Int(1), Value::Float(2.0), Value::str("ok")]));
        assert!(!s.validate(&[Value::Int(1), Value::Int(2), Value::str("ok")]));
        assert!(!s.validate(&[Value::Int(1), Value::Float(2.0)]));
        // 11 chars exceed Str(10)
        assert!(!s.validate(&[
            Value::Int(1),
            Value::Float(2.0),
            Value::str("0123456789A")
        ]));
    }

    #[test]
    fn rows_per_page_floors() {
        let s = sample(); // 28-byte rows
        assert_eq!(s.rows_per_page(32 * 1024), (32 * 1024 - 4) / 28);
    }
}
