//! Selection predicate AST.
//!
//! Predicates are structural data (not closures) so that SP can hash and
//! compare them when detecting identical sub-plans, and so that CJOIN can
//! store them per query slot inside shared selection operators.

use std::hash::{Hash, Hasher};

use crate::bitmap::{BitmapBank, SelVec};
use crate::value::{Row, Value};

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// A predicate over a row; columns are referenced by index into the schema
/// the predicate is bound to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Always true (no selection).
    True,
    /// `col <op> literal`
    Cmp {
        /// Column index.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        val: Value,
    },
    /// `col IN (v1, v2, …)` — the disjunctions the Fig. 11 selectivity
    /// experiment builds over nation attributes.
    InSet {
        /// Column index.
        col: usize,
        /// Membership list (kept sorted for canonical signatures).
        vals: Vec<Value>,
    },
    /// `lo <= col AND col <= hi` (the SSB year-range predicate).
    Between {
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Build a canonical `IN` predicate (sorts the value list).
    pub fn in_set(col: usize, mut vals: Vec<Value>) -> Predicate {
        vals.sort();
        vals.dedup();
        Predicate::InSet { col, vals }
    }

    /// Build an equality predicate.
    pub fn eq(col: usize, val: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            col,
            op: CmpOp::Eq,
            val: val.into(),
        }
    }

    /// Build a between predicate.
    pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Predicate {
        Predicate::Between {
            col,
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Conjunction of `preds`, flattening nested `And`s and dropping `True`s.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().unwrap(),
            _ => Predicate::And(flat),
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, val } => op.apply(&row[*col], val),
            Predicate::InSet { col, vals } => vals.binary_search(&row[*col]).is_ok(),
            Predicate::Between { col, lo, hi } => &row[*col] >= lo && &row[*col] <= hi,
            Predicate::And(ps) => ps.iter().all(|p| p.eval(row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(row)),
            Predicate::Not(p) => !p.eval(row),
        }
    }

    /// Batch evaluation: returns the selection bitmap of rows satisfying the
    /// predicate. Convenience wrapper over [`Predicate::eval_batch_into`].
    pub fn eval_batch(&self, rows: &[Row]) -> SelVec {
        let mut sel = SelVec::new();
        self.eval_batch_into(rows, &mut sel);
        sel
    }

    /// Batch evaluation into a reusable selection bitmap (zero allocations
    /// once `sel`'s capacity has grown to the batch size).
    ///
    /// The common shapes take vectorized fast paths: `True` is a bulk fill,
    /// `Cmp` dispatches the operator once and runs a tight loop over the
    /// still-selected rows, and `And` narrows the selection term by term
    /// (rows deselected by an earlier conjunct are never touched again —
    /// word-level skipping makes low-selectivity conjunctions cheap).
    pub fn eval_batch_into(&self, rows: &[Row], sel: &mut SelVec) {
        sel.reset(rows.len(), true);
        self.restrict(&|i| &rows[i], sel);
    }

    /// Evaluate **many predicates** over one batch in a single pass,
    /// producing a per-query selection bank: bit `q` of tuple `i` is set iff
    /// `preds[q]` selects `rows[i]`. The bank is word-strided
    /// ([`BitmapBank`]), so a row selected by several queries carries all
    /// their bits side by side — the CJOIN shared admission scan reads one
    /// row's bits, maps them to query slots, and performs a **single**
    /// dimension-entry insert for the whole pending batch instead of one
    /// scan per query.
    ///
    /// Each predicate still takes its vectorized fast path
    /// ([`Predicate::eval_batch_into`] via `scratch`); the sharing is in the
    /// page decode and the row-major insert that follow, not in the
    /// predicate arithmetic itself. `hit_counts` is filled with each
    /// predicate's selected-row count (the admission selectivity signal,
    /// free here vs re-scanning the bank column per query).
    pub fn eval_batch_multi(
        preds: &[&Predicate],
        rows: &[Row],
        bank: &mut BitmapBank,
        scratch: &mut SelVec,
        hit_counts: &mut Vec<usize>,
    ) {
        bank.reset_zeros(rows.len(), preds.len().max(1));
        hit_counts.clear();
        for (q, p) in preds.iter().enumerate() {
            p.eval_batch_into(rows, scratch);
            hit_counts.push(scratch.count());
            for i in scratch.iter_ones() {
                bank.set(i, q);
            }
        }
    }

    /// Narrow an existing selection over a gathered subset: position `j` of
    /// `sel` corresponds to `rows[idx[j]]`; rows already deselected are
    /// never evaluated. This is how the CJOIN distributor applies per-query
    /// fact predicates to exactly the rows in the query's routing column,
    /// without materializing the survivors.
    pub fn restrict_batch_gather(&self, rows: &[Row], idx: &[u32], sel: &mut SelVec) {
        debug_assert_eq!(sel.len(), idx.len());
        self.restrict(&|j| &rows[idx[j] as usize], sel);
    }

    /// Narrow `sel` to rows (as mapped by `row_at`) satisfying `self`.
    fn restrict<'a>(&self, row_at: &dyn Fn(usize) -> &'a Row, sel: &mut SelVec) {
        match self {
            Predicate::True => {}
            Predicate::Cmp { col, op, val } => {
                let col = *col;
                // Dispatch the operator once per batch, not once per tuple.
                if let Value::Int(k) = val {
                    let k = *k;
                    let f: fn(i64, i64) -> bool = match op {
                        CmpOp::Eq => |a, b| a == b,
                        CmpOp::Ne => |a, b| a != b,
                        CmpOp::Lt => |a, b| a < b,
                        CmpOp::Le => |a, b| a <= b,
                        CmpOp::Gt => |a, b| a > b,
                        CmpOp::Ge => |a, b| a >= b,
                    };
                    sel.retain(|i| match &row_at(i)[col] {
                        Value::Int(v) => f(*v, k),
                        other => op.apply(other, val),
                    });
                } else {
                    let op = *op;
                    sel.retain(|i| op.apply(&row_at(i)[col], val));
                }
            }
            Predicate::Between { col, lo, hi } => {
                let col = *col;
                if let (Value::Int(lo), Value::Int(hi)) = (lo, hi) {
                    let (lo, hi) = (*lo, *hi);
                    sel.retain(|i| match &row_at(i)[col] {
                        Value::Int(v) => (lo..=hi).contains(v),
                        other => {
                            other >= &Value::Int(lo) && other <= &Value::Int(hi)
                        }
                    });
                } else {
                    sel.retain(|i| {
                        let v = &row_at(i)[col];
                        v >= lo && v <= hi
                    });
                }
            }
            Predicate::InSet { col, vals } => {
                let col = *col;
                sel.retain(|i| vals.binary_search(&row_at(i)[col]).is_ok());
            }
            Predicate::And(ps) => {
                for p in ps {
                    if !sel.any() {
                        break;
                    }
                    p.restrict(row_at, sel);
                }
            }
            other => {
                // Or / Not: fall back to row-at-a-time over the survivors.
                sel.retain(|i| other.eval(row_at(i)));
            }
        }
    }

    /// Number of atomic comparison terms — used by the cost model to charge
    /// predicate evaluation.
    pub fn term_count(&self) -> usize {
        match self {
            Predicate::True => 0,
            Predicate::Cmp { .. } => 1,
            Predicate::InSet { vals, .. } => {
                // Binary search: log2 cost, at least one term.
                (vals.len().max(2) as f64).log2().ceil() as usize
            }
            Predicate::Between { .. } => 2,
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().map(|p| p.term_count()).sum()
            }
            Predicate::Not(p) => p.term_count(),
        }
    }

    /// Structural 64-bit signature (SP identity matching).
    pub fn signature(&self) -> u64 {
        let mut h = crate::fxhash::FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![Value::Int(10), Value::str("FRANCE"), Value::Float(2.5)]
    }

    #[test]
    fn cmp_ops_all_work() {
        let r = row();
        for (op, expect) in [
            (CmpOp::Eq, false),
            (CmpOp::Ne, true),
            (CmpOp::Lt, true),
            (CmpOp::Le, true),
            (CmpOp::Gt, false),
            (CmpOp::Ge, false),
        ] {
            let p = Predicate::Cmp {
                col: 0,
                op,
                val: Value::Int(11),
            };
            assert_eq!(p.eval(&r), expect, "{op:?}");
        }
    }

    #[test]
    fn in_set_is_sorted_and_binary_searched() {
        let p = Predicate::in_set(
            1,
            vec![Value::str("GERMANY"), Value::str("FRANCE"), Value::str("FRANCE")],
        );
        assert!(p.eval(&row()));
        if let Predicate::InSet { vals, .. } = &p {
            assert_eq!(vals.len(), 2, "dedup");
            assert!(vals.windows(2).all(|w| w[0] < w[1]), "sorted");
        } else {
            unreachable!()
        }
    }

    #[test]
    fn between_inclusive_bounds() {
        let p = Predicate::between(0, 10i64, 12i64);
        assert!(p.eval(&row()));
        let p = Predicate::between(0, 11i64, 12i64);
        assert!(!p.eval(&row()));
    }

    #[test]
    fn and_flattens_and_simplifies() {
        let p = Predicate::and(vec![
            Predicate::True,
            Predicate::and(vec![Predicate::eq(0, 10i64), Predicate::True]),
        ]);
        assert_eq!(p, Predicate::eq(0, 10i64));
        assert!(p.eval(&row()));
        assert_eq!(Predicate::and(vec![]), Predicate::True);
    }

    #[test]
    fn or_and_not() {
        let p = Predicate::Or(vec![
            Predicate::eq(0, 99i64),
            Predicate::eq(1, Value::str("FRANCE")),
        ]);
        assert!(p.eval(&row()));
        assert!(!Predicate::Not(Box::new(p)).eval(&row()));
    }

    #[test]
    fn identical_predicates_share_signature() {
        let a = Predicate::in_set(1, vec![Value::str("A"), Value::str("B")]);
        let b = Predicate::in_set(1, vec![Value::str("B"), Value::str("A")]);
        assert_eq!(a.signature(), b.signature(), "canonical order");
        let c = Predicate::in_set(1, vec![Value::str("C")]);
        assert_ne!(a.signature(), c.signature());
    }

    fn batch_rows() -> Vec<Vec<Value>> {
        (0..200i64)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::str(if i % 3 == 0 { "FRANCE" } else { "GERMANY" }),
                    Value::Float(i as f64 / 2.0),
                ]
            })
            .collect()
    }

    #[test]
    fn eval_batch_agrees_with_scalar_eval() {
        let rows = batch_rows();
        let preds = vec![
            Predicate::True,
            Predicate::eq(0, 7i64),
            Predicate::Cmp {
                col: 0,
                op: CmpOp::Ge,
                val: Value::Int(150),
            },
            Predicate::eq(1, Value::str("FRANCE")),
            Predicate::between(0, 20i64, 90i64),
            Predicate::in_set(0, (0..40).step_by(3).map(Value::Int).collect()),
            Predicate::And(vec![
                Predicate::between(0, 10i64, 180i64),
                Predicate::eq(1, Value::str("GERMANY")),
            ]),
            Predicate::Or(vec![
                Predicate::eq(0, 3i64),
                Predicate::Cmp {
                    col: 2,
                    op: CmpOp::Gt,
                    val: Value::Float(90.0),
                },
            ]),
            Predicate::Not(Box::new(Predicate::between(0, 50i64, 150i64))),
        ];
        for p in &preds {
            let sel = p.eval_batch(&rows);
            let expect: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| p.eval(r))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(sel.iter_ones().collect::<Vec<_>>(), expect, "{p:?}");
            assert_eq!(sel.count(), expect.len());
        }
    }

    #[test]
    fn restrict_batch_gather_maps_positions_and_narrows() {
        let rows = batch_rows();
        let idx: Vec<u32> = [5u32, 21, 60, 150, 199].into();
        let p = Predicate::between(0, 20i64, 160i64);
        let mut sel = crate::bitmap::SelVec::new();
        sel.reset(idx.len(), true);
        p.restrict_batch_gather(&rows, &idx, &mut sel);
        let expect: Vec<usize> = idx
            .iter()
            .enumerate()
            .filter(|(_, &ri)| p.eval(&rows[ri as usize]))
            .map(|(j, _)| j)
            .collect();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), expect);
        assert_eq!(sel.len(), idx.len());
        // Pre-deselected positions stay deselected and are never revived.
        let mut narrowed = crate::bitmap::SelVec::new();
        narrowed.reset(idx.len(), true);
        narrowed.clear(expect[0]);
        p.restrict_batch_gather(&rows, &idx, &mut narrowed);
        assert_eq!(
            narrowed.iter_ones().collect::<Vec<_>>(),
            expect[1..].to_vec()
        );
    }

    #[test]
    fn eval_batch_multi_matches_per_predicate_eval() {
        let rows = batch_rows();
        let preds = [
            Predicate::eq(1, Value::str("FRANCE")),
            Predicate::between(0, 20i64, 90i64),
            Predicate::True,
            Predicate::Not(Box::new(Predicate::between(0, 50i64, 150i64))),
        ];
        let refs: Vec<&Predicate> = preds.iter().collect();
        let mut bank = crate::bitmap::BitmapBank::new();
        let mut scratch = crate::bitmap::SelVec::new();
        let mut hits = Vec::new();
        Predicate::eval_batch_multi(&refs, &rows, &mut bank, &mut scratch, &mut hits);
        assert_eq!(bank.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            for (q, p) in preds.iter().enumerate() {
                assert_eq!(bank.get(i, q), p.eval(row), "row {i} pred {q}");
            }
        }
        for (q, p) in preds.iter().enumerate() {
            let expect = rows.iter().filter(|r| p.eval(r)).count();
            assert_eq!(bank.count_column(q), expect, "pred {q}");
            assert_eq!(hits[q], expect, "hit count of pred {q}");
        }
        // Reuse across batches of different sizes must not leak stale bits.
        Predicate::eval_batch_multi(&refs[..1], &rows[..7], &mut bank, &mut scratch, &mut hits);
        assert_eq!(bank.len(), 7);
        assert_eq!(bank.stride(), 1);
        assert_eq!(hits.len(), 1, "hit counts cover only this call's predicates");
        for (i, row) in rows[..7].iter().enumerate() {
            assert_eq!(bank.get(i, 0), preds[0].eval(row));
            assert!(!bank.get(i, 1), "only predicate 0 was evaluated");
        }
        // Zero predicates: a well-formed all-zero bank.
        Predicate::eval_batch_multi(&[], &rows[..3], &mut bank, &mut scratch, &mut hits);
        assert_eq!(bank.len(), 3);
        assert!(hits.is_empty());
        assert!(!bank.any_alive());
    }

    #[test]
    fn eval_batch_reuses_capacity() {
        let rows = batch_rows();
        let p = Predicate::eq(1, Value::str("FRANCE"));
        let mut sel = crate::bitmap::SelVec::new();
        p.eval_batch_into(&rows, &mut sel);
        let first = sel.count();
        // Second run over a smaller batch reuses the buffer and must not
        // leak stale bits past the new length.
        p.eval_batch_into(&rows[..10], &mut sel);
        assert_eq!(sel.len(), 10);
        assert!(sel.count() <= 10);
        p.eval_batch_into(&rows, &mut sel);
        assert_eq!(sel.count(), first);
    }

    #[test]
    fn term_counts() {
        assert_eq!(Predicate::True.term_count(), 0);
        assert_eq!(Predicate::eq(0, 1i64).term_count(), 1);
        assert_eq!(Predicate::between(0, 1i64, 2i64).term_count(), 2);
        let big = Predicate::in_set(0, (0..16).map(Value::Int).collect());
        assert_eq!(big.term_count(), 4); // log2(16)
    }
}
