//! Selection predicate AST.
//!
//! Predicates are structural data (not closures) so that SP can hash and
//! compare them when detecting identical sub-plans, and so that CJOIN can
//! store them per query slot inside shared selection operators.

use std::hash::{Hash, Hasher};

use crate::value::Value;

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

/// A predicate over a row; columns are referenced by index into the schema
/// the predicate is bound to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Always true (no selection).
    True,
    /// `col <op> literal`
    Cmp {
        /// Column index.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        val: Value,
    },
    /// `col IN (v1, v2, …)` — the disjunctions the Fig. 11 selectivity
    /// experiment builds over nation attributes.
    InSet {
        /// Column index.
        col: usize,
        /// Membership list (kept sorted for canonical signatures).
        vals: Vec<Value>,
    },
    /// `lo <= col AND col <= hi` (the SSB year-range predicate).
    Between {
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Build a canonical `IN` predicate (sorts the value list).
    pub fn in_set(col: usize, mut vals: Vec<Value>) -> Predicate {
        vals.sort();
        vals.dedup();
        Predicate::InSet { col, vals }
    }

    /// Build an equality predicate.
    pub fn eq(col: usize, val: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            col,
            op: CmpOp::Eq,
            val: val.into(),
        }
    }

    /// Build a between predicate.
    pub fn between(col: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Predicate {
        Predicate::Between {
            col,
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Conjunction of `preds`, flattening nested `And`s and dropping `True`s.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().unwrap(),
            _ => Predicate::And(flat),
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp { col, op, val } => op.apply(&row[*col], val),
            Predicate::InSet { col, vals } => vals.binary_search(&row[*col]).is_ok(),
            Predicate::Between { col, lo, hi } => &row[*col] >= lo && &row[*col] <= hi,
            Predicate::And(ps) => ps.iter().all(|p| p.eval(row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(row)),
            Predicate::Not(p) => !p.eval(row),
        }
    }

    /// Number of atomic comparison terms — used by the cost model to charge
    /// predicate evaluation.
    pub fn term_count(&self) -> usize {
        match self {
            Predicate::True => 0,
            Predicate::Cmp { .. } => 1,
            Predicate::InSet { vals, .. } => {
                // Binary search: log2 cost, at least one term.
                (vals.len().max(2) as f64).log2().ceil() as usize
            }
            Predicate::Between { .. } => 2,
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().map(|p| p.term_count()).sum()
            }
            Predicate::Not(p) => p.term_count(),
        }
    }

    /// Structural 64-bit signature (SP identity matching).
    pub fn signature(&self) -> u64 {
        let mut h = crate::fxhash::FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![Value::Int(10), Value::str("FRANCE"), Value::Float(2.5)]
    }

    #[test]
    fn cmp_ops_all_work() {
        let r = row();
        for (op, expect) in [
            (CmpOp::Eq, false),
            (CmpOp::Ne, true),
            (CmpOp::Lt, true),
            (CmpOp::Le, true),
            (CmpOp::Gt, false),
            (CmpOp::Ge, false),
        ] {
            let p = Predicate::Cmp {
                col: 0,
                op,
                val: Value::Int(11),
            };
            assert_eq!(p.eval(&r), expect, "{op:?}");
        }
    }

    #[test]
    fn in_set_is_sorted_and_binary_searched() {
        let p = Predicate::in_set(
            1,
            vec![Value::str("GERMANY"), Value::str("FRANCE"), Value::str("FRANCE")],
        );
        assert!(p.eval(&row()));
        if let Predicate::InSet { vals, .. } = &p {
            assert_eq!(vals.len(), 2, "dedup");
            assert!(vals.windows(2).all(|w| w[0] < w[1]), "sorted");
        } else {
            unreachable!()
        }
    }

    #[test]
    fn between_inclusive_bounds() {
        let p = Predicate::between(0, 10i64, 12i64);
        assert!(p.eval(&row()));
        let p = Predicate::between(0, 11i64, 12i64);
        assert!(!p.eval(&row()));
    }

    #[test]
    fn and_flattens_and_simplifies() {
        let p = Predicate::and(vec![
            Predicate::True,
            Predicate::and(vec![Predicate::eq(0, 10i64), Predicate::True]),
        ]);
        assert_eq!(p, Predicate::eq(0, 10i64));
        assert!(p.eval(&row()));
        assert_eq!(Predicate::and(vec![]), Predicate::True);
    }

    #[test]
    fn or_and_not() {
        let p = Predicate::Or(vec![
            Predicate::eq(0, 99i64),
            Predicate::eq(1, Value::str("FRANCE")),
        ]);
        assert!(p.eval(&row()));
        assert!(!Predicate::Not(Box::new(p)).eval(&row()));
    }

    #[test]
    fn identical_predicates_share_signature() {
        let a = Predicate::in_set(1, vec![Value::str("A"), Value::str("B")]);
        let b = Predicate::in_set(1, vec![Value::str("B"), Value::str("A")]);
        assert_eq!(a.signature(), b.signature(), "canonical order");
        let c = Predicate::in_set(1, vec![Value::str("C")]);
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn term_counts() {
        assert_eq!(Predicate::True.term_count(), 0);
        assert_eq!(Predicate::eq(0, 1i64).term_count(), 1);
        assert_eq!(Predicate::between(0, 1i64, 2i64).term_count(), 2);
        let big = Predicate::in_set(0, (0..16).map(Value::Int).collect());
        assert_eq!(big.term_count(), 4); // log2(16)
    }
}
