//! Inter-packet exchanges: push-based FIFOs vs pull-based Shared Pages Lists.

mod fifo;
mod spl;

use std::sync::Arc;

pub use fifo::FifoExchange;
pub use spl::SplExchange;

use workshare_common::CostModel;
use workshare_sim::{Machine, SimCtx};

use crate::batch::TupleBatch;

/// Which exchange implementation a configuration uses (paper Figure 6's
/// `(FIFO)` vs `(SPL)` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeKind {
    /// Push-only model: producer forwards (copies) pages to every satellite.
    Fifo,
    /// Pull-based Shared Pages List: consumers read a shared list.
    Spl,
}

/// A single-producer, multi-consumer page exchange.
///
/// The first attached reader is the *primary* (the host's own downstream
/// packet); additional readers are *satellites*. Under [`ExchangeKind::Fifo`]
/// the producer pays a deep copy per satellite page — the §4 serialization
/// point. Under [`ExchangeKind::Spl`] all readers share one page instance.
#[derive(Clone)]
pub enum Exchange {
    /// Push-based implementation.
    Fifo(FifoExchange),
    /// Pull-based implementation.
    Spl(SplExchange),
}

impl Exchange {
    /// Create an exchange of `kind` holding at most `cap_pages` in flight
    /// (the paper's 256 KB SPL cap ÷ 32 KB pages = 8).
    pub fn new(
        kind: ExchangeKind,
        machine: &Machine,
        cost: CostModel,
        cap_pages: usize,
    ) -> Exchange {
        match kind {
            ExchangeKind::Fifo => {
                Exchange::Fifo(FifoExchange::new(machine, cost, cap_pages))
            }
            ExchangeKind::Spl => {
                Exchange::Spl(SplExchange::new(machine, cost, cap_pages))
            }
        }
    }

    /// Attach a reader. `budget` bounds how many pages the reader consumes
    /// (`Some(n)` for linear-WoP circular scans, `None` = read until close).
    pub fn attach(&self, budget: Option<u64>) -> ExchangeReader {
        match self {
            Exchange::Fifo(f) => ExchangeReader::Fifo(f.attach(budget)),
            Exchange::Spl(s) => ExchangeReader::Spl(s.attach(budget)),
        }
    }

    /// Emit one page (blocks in virtual time on back-pressure).
    pub fn emit(&self, ctx: &SimCtx, batch: Arc<TupleBatch>) {
        match self {
            Exchange::Fifo(f) => f.emit(ctx, batch),
            Exchange::Spl(s) => s.emit(ctx, batch),
        }
    }

    /// Close the stream: readers drain then see `None`.
    pub fn close(&self) {
        match self {
            Exchange::Fifo(f) => f.close(),
            Exchange::Spl(s) => s.close(),
        }
    }

    /// Pages emitted so far (step-WoP checks `emitted() == 0`).
    pub fn emitted(&self) -> u64 {
        match self {
            Exchange::Fifo(f) => f.emitted(),
            Exchange::Spl(s) => s.emitted(),
        }
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        match self {
            Exchange::Fifo(f) => f.is_closed(),
            Exchange::Spl(s) => s.is_closed(),
        }
    }

    /// Number of currently attached readers.
    pub fn reader_count(&self) -> usize {
        match self {
            Exchange::Fifo(f) => f.reader_count(),
            Exchange::Spl(s) => s.reader_count(),
        }
    }
}

/// Reading end of an [`Exchange`].
pub enum ExchangeReader {
    /// Reader over a push-based FIFO.
    Fifo(fifo::FifoReader),
    /// Reader over a Shared Pages List.
    Spl(spl::SplReader),
}

impl ExchangeReader {
    /// Next page, or `None` when the stream closed or the budget is spent.
    pub fn next(&mut self, ctx: &SimCtx) -> Option<Arc<TupleBatch>> {
        match self {
            ExchangeReader::Fifo(r) => r.next(ctx),
            ExchangeReader::Spl(r) => r.next(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::Value;
    use workshare_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 8,
            ..Default::default()
        })
    }

    fn batch(tag: i64, rows: usize) -> Arc<TupleBatch> {
        Arc::new(TupleBatch::new(
            (0..rows).map(|i| vec![Value::Int(tag * 1000 + i as i64)]).collect(),
        ))
    }

    /// Both kinds deliver every page, in order, to every reader.
    fn delivery_roundtrip(kind: ExchangeKind) {
        let m = machine();
        let ex = Exchange::new(kind, &m, CostModel::default(), 4);
        let readers: Vec<_> = (0..3).map(|_| ex.attach(None)).collect();
        let exp = ex.clone();
        let coordinator = m.spawn("coord", move |ctx| {
            let producer = {
                let exp = exp.clone();
                ctx.machine().spawn("prod", move |ctx| {
                    for i in 0..20 {
                        exp.emit(ctx, batch(i, 5));
                    }
                    exp.close();
                })
            };
            let consumers: Vec<_> = readers
                .into_iter()
                .enumerate()
                .map(|(ci, mut r)| {
                    ctx.machine().spawn(&format!("cons{ci}"), move |ctx| {
                        let mut tags = Vec::new();
                        while let Some(b) = r.next(ctx) {
                            tags.push(b.rows[0][0].as_int() / 1000);
                        }
                        tags
                    })
                })
                .collect();
            producer.join().unwrap();
            consumers
                .into_iter()
                .map(|c| c.join().unwrap())
                .collect::<Vec<_>>()
        });
        let results = coordinator.join().unwrap();
        for tags in results {
            assert_eq!(tags, (0..20).collect::<Vec<i64>>());
        }
    }

    #[test]
    fn fifo_delivers_all_pages_in_order_to_all_readers() {
        delivery_roundtrip(ExchangeKind::Fifo);
    }

    #[test]
    fn spl_delivers_all_pages_in_order_to_all_readers() {
        delivery_roundtrip(ExchangeKind::Spl);
    }

    /// The defining cost difference: with S satellites, push-based FIFO
    /// charges ~S deep copies per page; SPL charges none.
    #[test]
    fn fifo_charges_copy_per_satellite_spl_does_not() {
        use workshare_sim::CostKind;
        for (kind, expect_copies) in [(ExchangeKind::Fifo, true), (ExchangeKind::Spl, false)]
        {
            let m = machine();
            let ex = Exchange::new(kind, &m, CostModel::default(), 4);
            let readers: Vec<_> = (0..4).map(|_| ex.attach(None)).collect();
            let exp = ex.clone();
            m.spawn("coord", move |ctx| {
                let p = {
                    let exp = exp.clone();
                    ctx.machine().spawn("prod", move |ctx| {
                        for i in 0..10 {
                            exp.emit(ctx, batch(i, 50));
                        }
                        exp.close();
                    })
                };
                let cs: Vec<_> = readers
                    .into_iter()
                    .map(|mut r| {
                        ctx.machine()
                            .spawn("c", move |ctx| while r.next(ctx).is_some() {})
                    })
                    .collect();
                p.join().unwrap();
                for c in cs {
                    c.join().unwrap();
                }
            })
            .join()
            .unwrap();
            let copy_ns = m.cpu_breakdown().get(CostKind::Copy);
            if expect_copies {
                assert!(copy_ns > 0.0, "{kind:?} must pay forwarding copies");
            } else {
                assert_eq!(copy_ns, 0.0, "{kind:?} must not pay forwarding copies");
            }
        }
    }

    #[test]
    fn emitted_counter_tracks_pages() {
        let m = machine();
        let ex = Exchange::new(ExchangeKind::Spl, &m, CostModel::default(), 4);
        assert_eq!(ex.emitted(), 0);
        let _r = ex.attach(None);
        let exp = ex.clone();
        m.spawn("p", move |ctx| {
            exp.emit(ctx, batch(1, 1));
            exp.close();
        })
        .join()
        .unwrap();
        assert_eq!(ex.emitted(), 1);
        assert!(ex.is_closed());
    }
}
