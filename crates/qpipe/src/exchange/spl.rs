//! Shared Pages Lists — the paper's §4 pull-based SP mechanism.
//!
//! A SPL is a bounded list of pages with **one producer and many
//! consumers** (Figure 8):
//!
//! * The producer appends at the head; consumers read from their private
//!   cursors toward the head, entirely independently — the producer does *no*
//!   forwarding work, eliminating the push-model serialization point.
//! * Every page carries a reference count initialized to the number of
//!   consumers that will read it; the **last** consumer to read a page frees
//!   it (§4.1).
//! * For linear WoPs (§4.2) each consumer records its **point of entry** and
//!   a page *budget* (one full wrap of a circular scan). When the producer
//!   emits the page just before a consumer's entry point, that consumer is a
//!   *finishing packet*: it stops participating in the reference counts of
//!   subsequent pages and exits the SPL upon reading its final page.
//! * The list is bounded (`max_pages`, default 256 KB / 32 KB = 8): the
//!   producer blocks when the window is full, regulating differently paced
//!   actors exactly like a FIFO buffer would.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use workshare_common::fxhash::FxHashMap;
use workshare_common::CostModel;
use workshare_sim::{CostKind, Machine, SimCtx, WaitSet};

use crate::batch::TupleBatch;

struct PageSlot {
    batch: Arc<TupleBatch>,
    /// Consumers that still have to read this page.
    remaining: usize,
}

struct SplState {
    window: VecDeque<PageSlot>,
    /// Sequence number of `window[0]`.
    head_seq: u64,
    /// Sequence number the next emitted page receives.
    next_seq: u64,
    /// Consumers whose `end_seq > next_seq` (they will read the next page).
    active: usize,
    /// `end_seq → how many consumers finish just before that sequence`.
    ends: FxHashMap<u64, usize>,
    closed: bool,
}

struct SplShared {
    state: Mutex<SplState>,
    ws: WaitSet,
    cost: CostModel,
    max_pages: usize,
    emitted: AtomicU64,
    readers: AtomicU64,
}

/// Pull-based shared pages list. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct SplExchange {
    shared: Arc<SplShared>,
}

impl SplExchange {
    /// Create a SPL bounded to `max_pages` in-flight pages.
    pub fn new(machine: &Machine, cost: CostModel, max_pages: usize) -> SplExchange {
        SplExchange {
            shared: Arc::new(SplShared {
                state: Mutex::new(SplState {
                    window: VecDeque::new(),
                    head_seq: 0,
                    next_seq: 0,
                    active: 0,
                    ends: FxHashMap::default(),
                    closed: false,
                }),
                ws: WaitSet::new(machine),
                cost,
                max_pages: max_pages.max(1),
                emitted: AtomicU64::new(0),
                readers: AtomicU64::new(0),
            }),
        }
    }

    /// Attach a consumer starting at the current head of production (its
    /// *point of entry*). With `budget = Some(n)` the consumer reads exactly
    /// `n` pages (linear WoP); with `None` it reads until the SPL closes.
    pub fn attach(&self, budget: Option<u64>) -> SplReader {
        let mut s = self.shared.state.lock();
        let start = s.next_seq;
        let end = match budget {
            Some(n) => start.saturating_add(n),
            None => u64::MAX,
        };
        if end > start {
            s.active += 1;
            if end != u64::MAX {
                *s.ends.entry(end).or_insert(0) += 1;
            }
        }
        self.shared.readers.fetch_add(1, Ordering::Relaxed);
        SplReader {
            shared: Arc::clone(&self.shared),
            cursor: start,
            end_seq: end,
            detached: end == start,
        }
    }

    /// Append a page. Blocks (virtual time) while the window is full. Pages
    /// emitted with zero active consumers are dropped (nobody will read
    /// them) but still advance the sequence.
    pub fn emit(&self, ctx: &SimCtx, batch: Arc<TupleBatch>) {
        let sh = &self.shared;
        // One list-lock acquisition + append; no per-consumer work: this is
        // the whole point of pull-based SP.
        ctx.charge(CostKind::Locks, sh.cost.lock_acquire_ns);
        ctx.charge(CostKind::Misc, sh.cost.exchange_page_ns);
        sh.ws.wait_until(|| {
            let s = sh.state.lock();
            s.window.len() < sh.max_pages || s.active == 0
        });
        {
            let mut s = sh.state.lock();
            assert!(!s.closed, "emit after close");
            let readers = s.active;
            let seq = s.next_seq;
            s.next_seq = seq + 1;
            // Finishing packets: consumers whose entry point is the *next*
            // page read this one as their last and leave the active set.
            if let Some(n) = s.ends.remove(&(seq + 1)) {
                s.active -= n;
            }
            if readers > 0 {
                if s.window.is_empty() {
                    s.head_seq = seq;
                }
                s.window.push_back(PageSlot {
                    batch,
                    remaining: readers,
                });
            } else if s.window.is_empty() {
                s.head_seq = seq + 1;
            }
        }
        sh.emitted.fetch_add(1, Ordering::Relaxed);
        sh.ws.notify_all();
    }

    /// Close the stream; unbudgeted readers drain and then see `None`.
    pub fn close(&self) {
        self.shared.state.lock().closed = true;
        self.shared.ws.notify_all();
    }

    /// Pages emitted so far.
    pub fn emitted(&self) -> u64 {
        self.shared.emitted.load(Ordering::Relaxed)
    }

    /// Whether the SPL is closed.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().closed
    }

    /// Attached (not yet dropped) readers.
    pub fn reader_count(&self) -> usize {
        self.shared.readers.load(Ordering::Relaxed) as usize
    }

    /// Number of consumers that will read the next emitted page.
    pub fn active_consumers(&self) -> usize {
        self.shared.state.lock().active
    }

    /// Pages currently retained in the window.
    pub fn window_len(&self) -> usize {
        self.shared.state.lock().window.len()
    }
}

/// A consumer cursor over a [`SplExchange`].
pub struct SplReader {
    shared: Arc<SplShared>,
    cursor: u64,
    end_seq: u64,
    detached: bool,
}

impl SplReader {
    /// Next page: `None` when the budget is exhausted or the SPL closed and
    /// drained. Blocks in virtual time while the producer is behind.
    pub fn next(&mut self, ctx: &SimCtx) -> Option<Arc<TupleBatch>> {
        if self.cursor >= self.end_seq {
            self.detached = true;
            return None;
        }
        let sh = Arc::clone(&self.shared);
        ctx.charge(CostKind::Locks, sh.cost.lock_acquire_ns);
        ctx.charge(CostKind::Misc, sh.cost.exchange_page_ns);
        let cursor = self.cursor;
        let got: Option<Arc<TupleBatch>> = sh.ws.wait_for(|| {
            let mut s = sh.state.lock();
            if cursor < s.next_seq {
                debug_assert!(
                    cursor >= s.head_seq,
                    "cursor {cursor} fell behind head {}",
                    s.head_seq
                );
                let idx = (cursor - s.head_seq) as usize;
                let slot = &mut s.window[idx];
                let batch = Arc::clone(&slot.batch);
                slot.remaining -= 1;
                // Last reader of the head page(s) frees them.
                let mut freed = false;
                while s
                    .window
                    .front()
                    .is_some_and(|f| f.remaining == 0)
                {
                    s.window.pop_front();
                    s.head_seq += 1;
                    freed = true;
                }
                drop(s);
                if freed {
                    sh.ws.notify_all();
                }
                return Some(Some(batch));
            }
            if s.closed {
                return Some(None);
            }
            None
        });
        match got {
            Some(batch) => {
                self.cursor += 1;
                if self.cursor >= self.end_seq {
                    self.detached = true; // budget complete: clean exit
                }
                Some(batch)
            }
            None => {
                // Closed before the budget completed: release claims.
                self.release();
                None
            }
        }
    }

    /// Pages read so far relative to the point of entry.
    pub fn pages_read(&self) -> u64 {
        self.cursor
    }

    fn release(&mut self) {
        if self.detached {
            return;
        }
        self.detached = true;
        let mut s = self.shared.state.lock();
        // Un-claim retained pages this reader was counted for.
        let upto = self.end_seq.min(s.next_seq);
        let head = s.head_seq;
        for seq in self.cursor.max(head)..upto {
            let idx = (seq - head) as usize;
            if let Some(slot) = s.window.get_mut(idx) {
                slot.remaining -= 1;
            }
        }
        while s.window.front().is_some_and(|f| f.remaining == 0) {
            s.window.pop_front();
            s.head_seq += 1;
        }
        // Un-register the future-page claim.
        if self.end_seq > s.next_seq {
            s.active -= 1;
            if self.end_seq != u64::MAX {
                if let Some(n) = s.ends.get_mut(&self.end_seq) {
                    *n -= 1;
                    if *n == 0 {
                        s.ends.remove(&self.end_seq);
                    }
                }
            }
        }
        drop(s);
        self.shared.ws.notify_all();
    }
}

impl Drop for SplReader {
    fn drop(&mut self) {
        self.release();
        self.shared.readers.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::Value;
    use workshare_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 8,
            ..Default::default()
        })
    }

    fn batch(tag: i64) -> Arc<TupleBatch> {
        Arc::new(TupleBatch::new(vec![vec![Value::Int(tag)]]))
    }

    fn tag(b: &TupleBatch) -> i64 {
        b.rows[0][0].as_int()
    }

    #[test]
    fn budgeted_reader_stops_exactly_at_budget() {
        let m = machine();
        let spl = SplExchange::new(&m, CostModel::default(), 4);
        let mut r = spl.attach(Some(3));
        let sp = spl.clone();
        m.spawn("coord", move |ctx| {
            let p = {
                let sp = sp.clone();
                ctx.machine().spawn("prod", move |ctx| {
                    for i in 0..10 {
                        sp.emit(ctx, batch(i));
                    }
                    sp.close();
                })
            };
            let c = ctx.machine().spawn("cons", move |ctx| {
                let mut seen = Vec::new();
                while let Some(b) = r.next(ctx) {
                    seen.push(tag(&b));
                }
                seen
            });
            p.join().unwrap();
            assert_eq!(c.join().unwrap(), vec![0, 1, 2]);
        })
        .join()
        .unwrap();
        // All pages were reclaimed: budget-complete readers stopped claiming.
        assert_eq!(spl.window_len(), 0);
        assert_eq!(spl.active_consumers(), 0);
    }

    #[test]
    fn late_attach_reads_only_future_pages() {
        let m = machine();
        let spl = SplExchange::new(&m, CostModel::default(), 4);
        let sp = spl.clone();
        m.spawn("coord", move |ctx| {
            // No consumers yet: first 3 pages are dropped.
            let sp2 = sp.clone();
            let p1 = ctx.machine().spawn("prod1", move |ctx| {
                for i in 0..3 {
                    sp2.emit(ctx, batch(i));
                }
            });
            p1.join().unwrap();
            let mut r = sp.attach(None);
            let sp3 = sp.clone();
            let p2 = ctx.machine().spawn("prod2", move |ctx| {
                for i in 3..6 {
                    sp3.emit(ctx, batch(i));
                }
                sp3.close();
            });
            let c = ctx.machine().spawn("cons", move |ctx| {
                let mut seen = Vec::new();
                while let Some(b) = r.next(ctx) {
                    seen.push(tag(&b));
                }
                seen
            });
            p2.join().unwrap();
            assert_eq!(c.join().unwrap(), vec![3, 4, 5]);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn window_respects_max_size_with_slow_consumer() {
        let m = machine();
        let spl = SplExchange::new(&m, CostModel::default(), 2);
        let mut r = spl.attach(None);
        let sp = spl.clone();
        let probe = spl.clone();
        m.spawn("coord", move |ctx| {
            let p = {
                let sp = sp.clone();
                ctx.machine().spawn("prod", move |ctx| {
                    for i in 0..20 {
                        sp.emit(ctx, batch(i));
                    }
                    sp.close();
                })
            };
            let c = ctx.machine().spawn("cons", move |ctx| {
                let mut n = 0;
                while let Some(_b) = r.next(ctx) {
                    // Slow consumer: the producer must stall at the cap.
                    ctx.charge(CostKind::Misc, 10_000.0);
                    n += 1;
                }
                n
            });
            // While running, the window can never exceed 2 pages.
            let w = ctx.machine().spawn("watch", move |ctx| {
                for _ in 0..50 {
                    assert!(probe.window_len() <= 2);
                    ctx.sleep(1_000.0);
                }
            });
            p.join().unwrap();
            assert_eq!(c.join().unwrap(), 20);
            w.join().unwrap();
        })
        .join()
        .unwrap();
    }

    #[test]
    fn pages_freed_by_last_reader_only() {
        let m = machine();
        let spl = SplExchange::new(&m, CostModel::default(), 8);
        let mut fast = spl.attach(None);
        let mut slow = spl.attach(None);
        let sp = spl.clone();
        let probe = spl.clone();
        m.spawn("coord", move |ctx| {
            let p = {
                let sp = sp.clone();
                ctx.machine().spawn("prod", move |ctx| {
                    for i in 0..4 {
                        sp.emit(ctx, batch(i));
                    }
                    sp.close();
                })
            };
            p.join().unwrap();
            // Fast reader drains everything; pages must be retained for slow.
            let f = ctx.machine().spawn("fast", move |ctx| {
                let mut n = 0;
                while fast.next(ctx).is_some() {
                    n += 1;
                }
                n
            });
            assert_eq!(f.join().unwrap(), 4);
            assert_eq!(probe.window_len(), 4, "slow reader still holds claims");
            let s = ctx.machine().spawn("slow", move |ctx| {
                let mut n = 0;
                while slow.next(ctx).is_some() {
                    n += 1;
                }
                n
            });
            assert_eq!(s.join().unwrap(), 4);
            assert_eq!(probe.window_len(), 0, "last reader freed the pages");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn dropping_a_reader_releases_its_claims() {
        let m = machine();
        let spl = SplExchange::new(&m, CostModel::default(), 2);
        let mut keeper = spl.attach(None);
        let straggler = spl.attach(None);
        let sp = spl.clone();
        m.spawn("coord", move |ctx| {
            // Drop the straggler before reading anything: the producer must
            // then be able to push all pages through `keeper` alone.
            drop(straggler);
            let p = {
                let sp = sp.clone();
                ctx.machine().spawn("prod", move |ctx| {
                    for i in 0..10 {
                        sp.emit(ctx, batch(i));
                    }
                    sp.close();
                })
            };
            let c = ctx.machine().spawn("cons", move |ctx| {
                let mut n = 0;
                while keeper.next(ctx).is_some() {
                    n += 1;
                }
                n
            });
            p.join().unwrap();
            assert_eq!(c.join().unwrap(), 10);
        })
        .join()
        .unwrap();
        assert_eq!(spl.reader_count(), 0);
    }

    #[test]
    fn close_unblocks_waiting_reader() {
        let m = machine();
        let spl = SplExchange::new(&m, CostModel::default(), 2);
        let mut r = spl.attach(None);
        let sp = spl.clone();
        m.spawn("coord", move |ctx| {
            let c = ctx
                .machine()
                .spawn("cons", move |ctx| r.next(ctx).is_none());
            let cl = ctx.machine().spawn("closer", move |ctx| {
                ctx.sleep(1e6);
                sp.close();
            });
            cl.join().unwrap();
            assert!(c.join().unwrap());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn zero_budget_reader_returns_none_immediately() {
        let m = machine();
        let spl = SplExchange::new(&m, CostModel::default(), 2);
        let mut r = spl.attach(Some(0));
        m.spawn("c", move |ctx| {
            assert!(r.next(ctx).is_none());
        })
        .join()
        .unwrap();
        assert_eq!(spl.active_consumers(), 0);
    }

    #[test]
    fn many_consumers_interleaved_budgets() {
        // Consumers with different budgets attached at different points all
        // see exactly their windows.
        let m = machine();
        let spl = SplExchange::new(&m, CostModel::default(), 4);
        let sp = spl.clone();
        m.spawn("coord", move |ctx| {
            let mut r_all = sp.attach(Some(12));
            let all = ctx.machine().spawn("all", move |ctx| {
                let mut v = Vec::new();
                while let Some(b) = r_all.next(ctx) {
                    v.push(tag(&b));
                }
                v
            });
            let sp2 = sp.clone();
            let prod = ctx.machine().spawn("prod", move |ctx| {
                for i in 0..12 {
                    sp2.emit(ctx, batch(i));
                }
            });
            // Attach a second consumer mid-stream from this thread; its
            // entry point is wherever production currently stands.
            ctx.sleep(1.0);
            let mut r_mid = sp.attach(Some(2));
            let mid = ctx.machine().spawn("mid", move |ctx| {
                let mut v = Vec::new();
                while let Some(b) = r_mid.next(ctx) {
                    v.push(tag(&b));
                }
                v
            });
            prod.join().unwrap();
            let got_all = all.join().unwrap();
            let got_mid = mid.join().unwrap();
            assert_eq!(got_all, (0..12).collect::<Vec<i64>>());
            assert_eq!(got_mid.len(), 2);
            // Mid's pages are consecutive and within range.
            assert_eq!(got_mid[1], got_mid[0] + 1);
            sp.close();
        })
        .join()
        .unwrap();
    }
}
