//! Push-based FIFO exchange — the original QPipe communication model.
//!
//! "Pipelined execution with push-only communication typically uses FIFO
//! buffers to exchange results between operators. […] During SP, this forces
//! the single thread of the pivot operator of the host packet to forward
//! results to all satellite packets sequentially, which creates a
//! serialization point" (paper §4, Figure 7a).
//!
//! The first attached reader is the host's own downstream (the page moves by
//! reference, as in any pipeline). Every additional reader is a satellite:
//! the producer **deep-copies** the page into that reader's FIFO and charges
//! the copy to its own timeline — the serialization the SPL removes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use workshare_common::CostModel;
use workshare_sim::{CostKind, Machine, SimCtx, SimQueue};

use crate::batch::TupleBatch;

struct ConsumerSlot {
    queue: SimQueue<Arc<TupleBatch>>,
    budget: Option<u64>,
    pushed: u64,
    primary: bool,
    dead: bool,
}

struct FifoShared {
    machine: Machine,
    cost: CostModel,
    cap_pages: usize,
    consumers: Mutex<Vec<ConsumerSlot>>,
    emitted: AtomicU64,
    closed: AtomicU64, // 0 | 1
    readers: AtomicU64,
}

/// Push-based exchange. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct FifoExchange {
    shared: Arc<FifoShared>,
}

impl FifoExchange {
    /// Create a FIFO exchange whose per-consumer queues hold `cap_pages`.
    pub fn new(machine: &Machine, cost: CostModel, cap_pages: usize) -> FifoExchange {
        FifoExchange {
            shared: Arc::new(FifoShared {
                machine: machine.clone(),
                cost,
                cap_pages: cap_pages.max(1),
                consumers: Mutex::new(Vec::new()),
                emitted: AtomicU64::new(0),
                closed: AtomicU64::new(0),
                readers: AtomicU64::new(0),
            }),
        }
    }

    /// Attach a reader (the first one is the primary / host consumer).
    pub fn attach(&self, budget: Option<u64>) -> FifoReader {
        let queue = SimQueue::bounded(&self.shared.machine, self.shared.cap_pages);
        let mut consumers = self.shared.consumers.lock();
        let primary = consumers.iter().all(|c| c.dead || !c.primary);
        if self.shared.closed.load(Ordering::Acquire) == 1 {
            queue.close();
        }
        consumers.push(ConsumerSlot {
            queue: queue.clone(),
            budget,
            pushed: 0,
            primary,
            dead: false,
        });
        self.shared.readers.fetch_add(1, Ordering::Relaxed);
        FifoReader {
            shared: Arc::clone(&self.shared),
            queue,
            budget,
            taken: 0,
        }
    }

    /// Emit one page: move it to the primary, deep-copy it to each
    /// satellite, charging [`CostKind::Copy`] per satellite — the
    /// serialization point.
    pub fn emit(&self, ctx: &SimCtx, batch: Arc<TupleBatch>) {
        let sh = &self.shared;
        ctx.charge(CostKind::Misc, sh.cost.exchange_page_ns);
        // Snapshot targets under the lock; push outside it (pushes block).
        let targets: Vec<(SimQueue<Arc<TupleBatch>>, bool)> = {
            let mut consumers = sh.consumers.lock();
            consumers
                .iter_mut()
                .filter(|c| !c.dead && c.budget.is_none_or(|b| c.pushed < b))
                .map(|c| {
                    c.pushed += 1;
                    (c.queue.clone(), c.primary)
                })
                .collect()
        };
        for (queue, primary) in targets {
            let page = if primary {
                Arc::clone(&batch)
            } else {
                // Physical forwarding: copy the page, pay for it.
                ctx.charge(CostKind::Copy, sh.cost.copy_cost(batch.bytes));
                Arc::new(batch.deep_clone())
            };
            if queue.push(page).is_err() {
                // Reader went away; mark dead so we stop copying for it.
                let mut consumers = sh.consumers.lock();
                if let Some(c) = consumers.iter_mut().find(|c| {
                    // Identify by queue identity via closed state; cheap scan.
                    c.queue.is_closed() && !c.dead
                }) {
                    c.dead = true;
                }
            }
        }
        sh.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Close all consumer queues.
    pub fn close(&self) {
        self.shared.closed.store(1, Ordering::Release);
        for c in self.shared.consumers.lock().iter() {
            c.queue.close();
        }
    }

    /// Pages emitted so far.
    pub fn emitted(&self) -> u64 {
        self.shared.emitted.load(Ordering::Relaxed)
    }

    /// Whether [`close`](Self::close) was called.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire) == 1
    }

    /// Attached (not yet dropped) readers.
    pub fn reader_count(&self) -> usize {
        self.shared.readers.load(Ordering::Relaxed) as usize
    }
}

/// Reading end of a [`FifoExchange`].
pub struct FifoReader {
    shared: Arc<FifoShared>,
    queue: SimQueue<Arc<TupleBatch>>,
    budget: Option<u64>,
    taken: u64,
}

impl FifoReader {
    /// Next page, or `None` at close/budget exhaustion.
    pub fn next(&mut self, ctx: &SimCtx) -> Option<Arc<TupleBatch>> {
        if self.budget.is_some_and(|b| self.taken >= b) {
            self.queue.close();
            return None;
        }
        ctx.charge(CostKind::Misc, self.shared.cost.exchange_page_ns);
        match self.queue.pop() {
            Some(b) => {
                self.taken += 1;
                Some(b)
            }
            None => None,
        }
    }
}

impl Drop for FifoReader {
    fn drop(&mut self) {
        self.queue.close();
        self.shared.readers.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::Value;
    use workshare_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 8,
            ..Default::default()
        })
    }

    fn batch(tag: i64) -> Arc<TupleBatch> {
        Arc::new(TupleBatch::new(vec![vec![Value::Int(tag)]]))
    }

    #[test]
    fn budget_limits_reader() {
        let m = machine();
        let ex = FifoExchange::new(&m, CostModel::default(), 4);
        let mut r = ex.attach(Some(2));
        let exp = ex.clone();
        m.spawn("coord", move |ctx| {
            let p = {
                let exp = exp.clone();
                ctx.machine().spawn("prod", move |ctx| {
                    for i in 0..5 {
                        exp.emit(ctx, batch(i));
                    }
                    exp.close();
                })
            };
            let c = ctx.machine().spawn("cons", move |ctx| {
                let mut n = 0;
                while r.next(ctx).is_some() {
                    n += 1;
                }
                n
            });
            p.join().unwrap();
            assert_eq!(c.join().unwrap(), 2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn producer_does_not_push_past_budget() {
        let m = machine();
        let ex = FifoExchange::new(&m, CostModel::default(), 2);
        // Budget 1 with capacity 2: even if the reader never drains, the
        // producer must not block on this consumer after 1 page.
        let _r = ex.attach(Some(1));
        let mut r2 = ex.attach(None);
        let exp = ex.clone();
        m.spawn("coord", move |ctx| {
            let p = {
                let exp = exp.clone();
                ctx.machine().spawn("prod", move |ctx| {
                    for i in 0..10 {
                        exp.emit(ctx, batch(i));
                    }
                    exp.close();
                })
            };
            let c = ctx.machine().spawn("cons2", move |ctx| {
                let mut n = 0;
                while r2.next(ctx).is_some() {
                    n += 1;
                }
                n
            });
            p.join().unwrap();
            assert_eq!(c.join().unwrap(), 10);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn first_reader_is_primary_no_copy_single_consumer() {
        use workshare_sim::CostKind;
        let m = machine();
        let ex = FifoExchange::new(&m, CostModel::default(), 4);
        let mut r = ex.attach(None);
        let exp = ex.clone();
        m.spawn("coord", move |ctx| {
            let p = {
                let exp = exp.clone();
                ctx.machine().spawn("prod", move |ctx| {
                    for i in 0..10 {
                        exp.emit(ctx, batch(i));
                    }
                    exp.close();
                })
            };
            let c = ctx
                .machine()
                .spawn("cons", move |ctx| while r.next(ctx).is_some() {});
            p.join().unwrap();
            c.join().unwrap();
        })
        .join()
        .unwrap();
        assert_eq!(
            m.cpu_breakdown().get(CostKind::Copy),
            0.0,
            "a plain pipeline (one consumer) copies nothing"
        );
    }

    #[test]
    fn attach_after_close_sees_empty_stream() {
        let m = machine();
        let ex = FifoExchange::new(&m, CostModel::default(), 4);
        ex.close();
        let mut r = ex.attach(None);
        m.spawn("c", move |ctx| assert!(r.next(ctx).is_none()))
            .join()
            .unwrap();
    }
}
