//! Table-scan stage: circular (shared) scans and independent scans.
//!
//! The table-scan operator has a **linear WoP**: "the linear WoP of the table
//! scan operator is translated into a circular scan of each table" (§2.2).
//! The scan service keeps one scanner vthread per table; scan packets attach
//! to it at the current position (their *point of entry*) with a page budget
//! of exactly one wrap. With SPL exchanges consumers share the decoded
//! pages; with FIFO exchanges the scanner pushes a copy to each attached
//! packet — the paper's `CS (FIFO)` configuration.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use workshare_common::fxhash::FxHashMap;
use workshare_common::CostModel;
use workshare_sim::{CostKind, Machine, WaitSet};

use workshare_storage::{StorageManager, TableId};

use crate::batch::TupleBatch;
use crate::exchange::{Exchange, ExchangeKind, ExchangeReader};

struct ScanInner {
    machine: Machine,
    storage: StorageManager,
    cost: CostModel,
    kind: ExchangeKind,
    cap_pages: usize,
    scanners: Mutex<FxHashMap<TableId, Exchange>>,
    wake: WaitSet,
    shutdown: AtomicBool,
    satellites: AtomicU64,
    hosts: AtomicU64,
}

/// Shared circular-scan service (one scanner vthread per table, lazily
/// created). Cheap to clone.
#[derive(Clone)]
pub struct ScanService {
    inner: Arc<ScanInner>,
}

impl ScanService {
    /// Create the service.
    pub fn new(
        machine: &Machine,
        storage: &StorageManager,
        cost: CostModel,
        kind: ExchangeKind,
        cap_pages: usize,
    ) -> ScanService {
        ScanService {
            inner: Arc::new(ScanInner {
                machine: machine.clone(),
                storage: storage.clone(),
                cost,
                kind,
                cap_pages,
                scanners: Mutex::new(FxHashMap::default()),
                wake: WaitSet::new(machine),
                shutdown: AtomicBool::new(false),
                satellites: AtomicU64::new(0),
                hosts: AtomicU64::new(0),
            }),
        }
    }

    /// Attach a scan packet to the circular scan of `table`, starting at the
    /// scanner's current position with a budget of one full wrap.
    pub fn attach(&self, table: TableId) -> ExchangeReader {
        let inner = &self.inner;
        let pages = inner.storage.page_count(table) as u64;
        let mut scanners = inner.scanners.lock();
        let exchange = match scanners.get(&table) {
            Some(ex) => {
                inner.satellites.fetch_add(1, Ordering::Relaxed);
                ex.clone()
            }
            None => {
                inner.hosts.fetch_add(1, Ordering::Relaxed);
                let ex = Exchange::new(inner.kind, &inner.machine, inner.cost, inner.cap_pages);
                scanners.insert(table, ex.clone());
                self.spawn_scanner(table, ex.clone());
                ex
            }
        };
        let reader = exchange.attach(Some(pages));
        drop(scanners);
        inner.wake.notify_all();
        reader
    }

    fn spawn_scanner(&self, table: TableId, exchange: Exchange) {
        let inner = Arc::clone(&self.inner);
        let name = format!("cscan-{}", inner.storage.table_name(table));
        inner.machine.clone().spawn(&name, move |ctx| {
            let storage = inner.storage.clone();
            let schema = storage.schema(table);
            let npages = storage.page_count(table);
            let stream = storage.new_stream();
            let mut pos = 0usize;
            loop {
                // Park while nobody consumes; wake on attach or shutdown.
                inner.wake.wait_until(|| {
                    inner.shutdown.load(Ordering::Acquire)
                        || pending_consumers(&exchange) > 0
                });
                if inner.shutdown.load(Ordering::Acquire) {
                    exchange.close();
                    return;
                }
                // Fail-stop on an unrecoverable page read (transient
                // faults were already retried with backoff inside the
                // manager): close the exchange so attached consumers see
                // end-of-stream instead of hanging behind a dead scanner.
                let page = match storage.try_read_page(ctx, table, pos, stream) {
                    Ok(p) => p,
                    Err(_) => {
                        exchange.close();
                        return;
                    }
                };
                let rows = page.decode_all(&schema);
                ctx.charge(
                    CostKind::Scan,
                    inner.cost.scan_page_fixed_ns
                        + inner.cost.scan_tuple_ns * rows.len() as f64,
                );
                let bytes = page.byte_len();
                exchange.emit(ctx, Arc::new(TupleBatch::with_bytes(rows, bytes)));
                pos = (pos + 1) % npages.max(1);
            }
        });
    }

    /// (hosts created, satellites attached) — the scan stage's sharing stats.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.hosts.load(Ordering::Relaxed),
            self.inner.satellites.load(Ordering::Relaxed),
        )
    }

    /// Stop all scanner vthreads and close their exchanges.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake.notify_all();
    }
}

fn pending_consumers(ex: &Exchange) -> usize {
    match ex {
        Exchange::Spl(s) => s.active_consumers(),
        Exchange::Fifo(f) => f.reader_count(),
    }
}

/// Spawn an **independent** (query-centric) scan of `table`: a producer
/// vthread reads the table front-to-back once and closes. Returns the
/// reading end. This is the no-sharing baseline whose buffer-pool and disk
/// contention the paper's `QPipe` configuration exhibits.
// The parameter list mirrors the shared-scan spawn path one-for-one; a
// params struct would only obscure the symmetry.
#[allow(clippy::too_many_arguments)]
pub fn spawn_independent_scan(
    machine: &Machine,
    storage: &StorageManager,
    cost: CostModel,
    kind: ExchangeKind,
    cap_pages: usize,
    table: TableId,
    gate: Option<WaitSet>,
    gate_open: Arc<AtomicBool>,
) -> ExchangeReader {
    let exchange = Exchange::new(kind, machine, cost, cap_pages);
    let reader = exchange.attach(None);
    let storage = storage.clone();
    let name = format!("scan-{}", storage.table_name(table));
    machine.spawn(&name, move |ctx| {
        if let Some(g) = &gate {
            g.wait_until(|| gate_open.load(Ordering::Acquire));
        }
        let schema = storage.schema(table);
        let stream = storage.new_stream();
        for pos in 0..storage.page_count(table) {
            // Same fail-stop shape as the shared scanner: an unrecoverable
            // read closes the exchange rather than panicking the producer.
            let page = match storage.try_read_page(ctx, table, pos, stream) {
                Ok(p) => p,
                Err(_) => break,
            };
            let rows = page.decode_all(&schema);
            ctx.charge(
                CostKind::Scan,
                cost.scan_page_fixed_ns + cost.scan_tuple_ns * rows.len() as f64,
            );
            let bytes = page.byte_len();
            exchange.emit(ctx, Arc::new(TupleBatch::with_bytes(rows, bytes)));
        }
        exchange.close();
    });
    reader
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_sim::SimCtx;
    use workshare_common::codec::PageBuilder;
    use workshare_common::{ColType, Column, Schema, Value};
    use workshare_sim::MachineConfig;
    use workshare_storage::{IoMode, StorageConfig};

    fn setup(rows: usize) -> (Machine, StorageManager, TableId) {
        let m = Machine::new(MachineConfig {
            cores: 8,
            ..Default::default()
        });
        let sm = StorageManager::new(
            StorageConfig {
                io_mode: IoMode::Memory,
                ..Default::default()
            },
            CostModel::default(),
        );
        let schema = Schema::new(vec![
            Column::new("k", ColType::Int),
            Column::new("pad", ColType::Str(64)),
        ]);
        let mut b = PageBuilder::new(&schema);
        for i in 0..rows {
            b.push(&[Value::Int(i as i64), Value::str("x")]);
        }
        let pages = b.finish();
        let t = sm.create_table("t", schema, pages);
        (m, sm, t)
    }

    fn drain_sum(mut r: ExchangeReader, ctx: &SimCtx) -> (usize, i64) {
        let mut n = 0;
        let mut sum = 0;
        while let Some(b) = r.next(ctx) {
            n += b.len();
            for row in &b.rows {
                sum += row[0].as_int();
            }
        }
        (n, sum)
    }

    #[test]
    fn independent_scan_reads_whole_table_once() {
        let (m, sm, t) = setup(3000);
        let cost = CostModel::default();
        let sm2 = sm.clone();
        let got = m
            .spawn("coord", move |ctx| {
                let r = spawn_independent_scan(
                    ctx.machine(),
                    &sm2,
                    cost,
                    ExchangeKind::Spl,
                    8,
                    t,
                    None,
                    Arc::new(AtomicBool::new(true)),
                );
                drain_sum(r, ctx)
            })
            .join()
            .unwrap();
        assert_eq!(got.0, 3000);
        assert_eq!(got.1, (0..3000i64).sum::<i64>());
    }

    #[test]
    fn circular_scan_serves_full_wrap_to_each_consumer() {
        let (m, sm, t) = setup(3000);
        let svc = ScanService::new(&m, &sm, CostModel::default(), ExchangeKind::Spl, 8);
        let svc2 = svc.clone();
        let results = m
            .spawn("coord", move |ctx| {
                let readers: Vec<_> = (0..4).map(|_| svc2.attach(t)).collect();
                let workers: Vec<_> = readers
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| {
                        ctx.machine()
                            .spawn(&format!("q{i}"), move |ctx| drain_sum(r, ctx))
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().unwrap())
                    .collect::<Vec<_>>()
            })
            .join()
            .unwrap();
        for (n, sum) in results {
            assert_eq!(n, 3000, "every consumer sees exactly one wrap");
            assert_eq!(sum, (0..3000i64).sum::<i64>());
        }
        let (hosts, satellites) = svc.stats();
        assert_eq!(hosts, 1);
        assert_eq!(satellites, 3);
        svc.shutdown();
    }

    #[test]
    fn late_consumer_wraps_around() {
        let (m, sm, t) = setup(2000);
        let svc = ScanService::new(&m, &sm, CostModel::default(), ExchangeKind::Spl, 8);
        let svc2 = svc.clone();
        m.spawn("coord", move |ctx| {
            // First consumer drives the scan forward, then a second joins
            // mid-scan and must still see the full table via wrap-around.
            let r1 = svc2.attach(t);
            let w1 = ctx.machine().spawn("q1", move |ctx| drain_sum(r1, ctx));
            ctx.sleep(1e5); // let the scan progress
            let r2 = svc2.attach(t);
            let w2 = ctx.machine().spawn("q2", move |ctx| drain_sum(r2, ctx));
            let a = w1.join().unwrap();
            let b = w2.join().unwrap();
            assert_eq!(a.0, 2000);
            assert_eq!(b.0, 2000);
            assert_eq!(a.1, b.1, "same multiset of rows regardless of entry");
        })
        .join()
        .unwrap();
        svc.shutdown();
    }

    #[test]
    fn fifo_mode_also_delivers_full_wraps() {
        let (m, sm, t) = setup(1500);
        let svc = ScanService::new(&m, &sm, CostModel::default(), ExchangeKind::Fifo, 8);
        let svc2 = svc.clone();
        let results = m
            .spawn("coord", move |ctx| {
                let readers: Vec<_> = (0..3).map(|_| svc2.attach(t)).collect();
                let ws: Vec<_> = readers
                    .into_iter()
                    .map(|r| ctx.machine().spawn("q", move |ctx| drain_sum(r, ctx)))
                    .collect();
                ws.into_iter().map(|w| w.join().unwrap()).collect::<Vec<_>>()
            })
            .join()
            .unwrap();
        for (n, _) in results {
            assert_eq!(n, 1500);
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_stops_scanners() {
        let (m, sm, t) = setup(500);
        let svc = ScanService::new(&m, &sm, CostModel::default(), ExchangeKind::Spl, 8);
        let svc2 = svc.clone();
        m.spawn("coord", move |ctx| {
            let r = svc2.attach(t);
            let w = ctx.machine().spawn("q", move |ctx| drain_sum(r, ctx));
            w.join().unwrap();
            svc2.shutdown();
        })
        .join()
        .unwrap();
        // Scanner threads exit; only this check matters (no hang).
        for _ in 0..100 {
            if m.live_threads() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(m.live_threads(), 0, "scanner exited after shutdown");
    }
}
