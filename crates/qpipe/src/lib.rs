//! # workshare-qpipe — staged execution engine with Simultaneous Pipelining
//!
//! A QPipe-style engine (paper §2.3): each relational operator is a *stage*;
//! a query plan becomes a tree of *packets* connected by page-based
//! exchanges; stages detect identical in-flight sub-plans and let a new
//! (*satellite*) packet reuse the results of an in-progress (*host*) packet.
//!
//! The two exchange implementations are the paper's §4 protagonists:
//!
//! * [`exchange::FifoExchange`] — **push-based**: the producer copies every
//!   page into each satellite's FIFO (charging real copy cost), which is the
//!   serialization point of the original QPipe design.
//! * [`exchange::SplExchange`] — **pull-based Shared Pages List**: a bounded
//!   single-producer/multi-consumer list of pages; consumers read
//!   independently, the producer never forwards. Implements the full §4.1 /
//!   §4.2 protocol: per-consumer points of entry, page reference counts,
//!   finishing-packet bookkeeping for linear WoPs, max-size back-pressure.
//!
//! Sharing windows ([`wop`]) follow Figure 2b: *step* (joins, aggregates —
//! reuse only before the first output) and *linear* (scans — reuse from
//! arrival, realized as circular scans in [`scan`]).

pub mod batch;
pub mod engine;
pub mod exchange;
pub mod ops;
pub mod registry;
pub mod scan;
pub mod wop;

pub use batch::TupleBatch;
pub use engine::{QpipeConfig, QpipeEngine, QueryHandle, SharingStats};
pub use exchange::{Exchange, ExchangeKind, ExchangeReader};
pub use wop::Wop;
