//! Operator packet bodies: selection/projection, hash-join, aggregation.
//!
//! Each body runs inside one packet vthread, pulls pages from an input
//! exchange, performs the real data work, charges the corresponding virtual
//! CPU categories, and pushes page-sized batches downstream.


use workshare_common::bind::BoundQuery;
use workshare_common::fxhash::FxHashMap;
use workshare_common::value::Row;
use workshare_common::{CostModel, Predicate, SelVec};
use workshare_sim::{CostKind, SimCtx};

use crate::batch::BatchBuilder;
use crate::exchange::{Exchange, ExchangeReader};

/// Fact-side select/project: applies the fact predicate to full scan rows
/// and projects them to the working layout `[fks… | fact payload…]`.
pub fn run_fact_select(
    ctx: &SimCtx,
    mut input: ExchangeReader,
    out: Exchange,
    pred: &Predicate,
    bound: &BoundQuery,
    cost: &CostModel,
) {
    let terms = pred.term_count();
    let mut builder = BatchBuilder::new();
    let mut sel = SelVec::new();
    while let Some(batch) = input.next(ctx) {
        // Batch-at-a-time: one vectorized predicate pass produces the
        // selection bitmap; only survivors are projected.
        ctx.charge(CostKind::Select, cost.select_batch_cost(terms, batch.len()));
        pred.eval_batch_into(&batch.rows, &mut sel);
        for row in batch.selected_rows(&sel) {
            if let Some(full) = builder.push(bound.project_fact(row)) {
                out.emit(ctx, full);
            }
        }
    }
    if let Some(rest) = builder.flush() {
        out.emit(ctx, rest);
    }
    out.close();
}

/// Dimension-side select/project: applies the dimension predicate and emits
/// build rows `[pk | payload…]`.
pub fn run_dim_select(
    ctx: &SimCtx,
    mut input: ExchangeReader,
    out: Exchange,
    pred: &Predicate,
    pk_idx: usize,
    payload_idx: &[usize],
    cost: &CostModel,
) {
    let terms = pred.term_count();
    let mut builder = BatchBuilder::new();
    let mut sel = SelVec::new();
    while let Some(batch) = input.next(ctx) {
        ctx.charge(CostKind::Select, cost.select_batch_cost(terms, batch.len()));
        pred.eval_batch_into(&batch.rows, &mut sel);
        for row in batch.selected_rows(&sel) {
            let mut projected = Row::with_capacity(1 + payload_idx.len());
            projected.push(row[pk_idx].clone());
            for &i in payload_idx {
                projected.push(row[i].clone());
            }
            if let Some(full) = builder.push(projected) {
                out.emit(ctx, full);
            }
        }
    }
    if let Some(rest) = builder.flush() {
        out.emit(ctx, rest);
    }
    out.close();
}

/// Query-centric hash join: consumes the build side fully (rows
/// `[pk | payload…]`), then probes the stream side on column
/// `probe_key_idx`, emitting `probe_row ++ payload`.
pub fn run_hash_join(
    ctx: &SimCtx,
    mut build: ExchangeReader,
    mut probe: ExchangeReader,
    out: Exchange,
    probe_key_idx: usize,
    cost: &CostModel,
) {
    // Build phase.
    let mut table: FxHashMap<i64, Row> = FxHashMap::default();
    while let Some(batch) = build.next(ctx) {
        ctx.charge(
            CostKind::Hashing,
            cost.hash_build_tuple_ns * batch.len() as f64,
        );
        for row in &batch.rows {
            let key = row[0].as_int();
            table.insert(key, row[1..].to_vec());
        }
    }
    // Probe phase.
    let mut builder = BatchBuilder::new();
    while let Some(batch) = probe.next(ctx) {
        ctx.charge(
            CostKind::Hashing,
            cost.hash_probe_tuple_ns * batch.len() as f64,
        );
        let mut matches = 0usize;
        for row in &batch.rows {
            if let Some(payload) = table.get(&row[probe_key_idx].as_int()) {
                matches += 1;
                let mut joined = row.clone();
                joined.extend(payload.iter().cloned());
                if let Some(full) = builder.push(joined) {
                    out.emit(ctx, full);
                }
            }
        }
        if matches > 0 {
            ctx.charge(
                CostKind::Join,
                cost.join_output_tuple_ns * matches as f64,
            );
        }
    }
    if let Some(rest) = builder.flush() {
        out.emit(ctx, rest);
    }
    out.close();
}

/// Aggregate + sort tail: folds the joined stream, finalizes groups, sorts
/// by the query's order keys, and returns the result rows.
pub fn run_aggregate(
    ctx: &SimCtx,
    mut input: ExchangeReader,
    bound: &BoundQuery,
    order: &[workshare_common::OrderKey],
    cost: &CostModel,
) -> Vec<Row> {
    let mut agg = workshare_common::agg::Aggregator::new(bound);
    while let Some(batch) = input.next(ctx) {
        ctx.charge(
            CostKind::Aggregation,
            cost.agg_update_tuple_ns * batch.len() as f64,
        );
        for row in &batch.rows {
            agg.update(row);
        }
    }
    let groups = agg.group_count();
    ctx.charge(
        CostKind::Aggregation,
        cost.agg_group_output_ns * groups as f64,
    );
    if !order.is_empty() {
        ctx.charge(CostKind::Sort, cost.sort_cost(groups));
    }
    agg.finish(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use crate::batch::TupleBatch;
    use crate::exchange::ExchangeKind;
    use workshare_common::bind::{bind, BoundQuery};
    use workshare_common::{
        AggSpec, ColRef, ColType, Column, DimJoin, OrderKey, Schema, StarQuery, Value,
    };
    use workshare_sim::{Machine, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 8,
            ..Default::default()
        })
    }

    fn fact_schema() -> Schema {
        Schema::new(vec![
            Column::new("fk", ColType::Int),
            Column::new("m", ColType::Int),
        ])
    }

    fn dim_schema() -> Schema {
        Schema::new(vec![
            Column::new("pk", ColType::Int),
            Column::new("tag", ColType::Str(4)),
        ])
    }

    fn query() -> StarQuery {
        StarQuery {
            id: 0,
            fact: "f".into(),
            fact_pred: Predicate::between(1, 0i64, 1_000i64),
            dims: vec![DimJoin {
                dim: "d".into(),
                fact_fk: "fk".into(),
                dim_pk: "pk".into(),
                pred: Predicate::True,
                payload: vec!["tag".into()],
            }],
            group_by: vec![ColRef::dim(0, "tag")],
            aggs: vec![AggSpec::sum(ColRef::fact("m"))],
            order_by: vec![OrderKey {
                output_idx: 0,
                desc: false,
            }],
        }
    }

    fn bound() -> BoundQuery {
        bind(&fact_schema(), &[&dim_schema()], &query())
    }

    fn feed(m: &Machine, rows: Vec<Row>) -> (Exchange, ExchangeReader) {
        let ex = Exchange::new(ExchangeKind::Spl, m, CostModel::default(), 8);
        let r = ex.attach(None);
        let exp = ex.clone();
        m.spawn("feeder", move |ctx| {
            exp.emit(ctx, Arc::new(TupleBatch::new(rows)));
            exp.close();
        });
        (ex, r)
    }

    #[test]
    fn select_filters_and_projects() {
        let m = machine();
        let q = query();
        let b = bound();
        let rows: Vec<Row> = (0..10)
            .map(|i| vec![Value::Int(i % 3), Value::Int(i * 200)])
            .collect();
        let cost = CostModel::default();
        let out = m
            .spawn("coord", move |ctx| {
                let (_fex, fr) = feed(ctx.machine(), rows);
                let out_ex =
                    Exchange::new(ExchangeKind::Spl, ctx.machine(), cost, 8);
                let mut out_r = out_ex.attach(None);
                run_fact_select(ctx, fr, out_ex, &q.fact_pred, &b, &cost);
                let mut got = Vec::new();
                while let Some(batch) = out_r.next(ctx) {
                    got.extend(batch.rows.clone());
                }
                got
            })
            .join()
            .unwrap();
        // m <= 1000 keeps i*200 for i in 0..=5 → 6 rows, layout [fk, m].
        assert_eq!(out.len(), 6);
        for r in &out {
            assert!(r[1].as_int() <= 1000);
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn join_matches_and_appends_payload() {
        let m = machine();
        let cost = CostModel::default();
        let out = m
            .spawn("coord", move |ctx| {
                let build_rows: Vec<Row> = (0..3)
                    .map(|i| vec![Value::Int(i), Value::str(&format!("t{i}"))])
                    .collect();
                let probe_rows: Vec<Row> = (0..10)
                    .map(|i| vec![Value::Int(i % 5), Value::Int(i)])
                    .collect();
                let (_bex, br) = feed(ctx.machine(), build_rows);
                let (_pex, pr) = feed(ctx.machine(), probe_rows);
                let out_ex = Exchange::new(ExchangeKind::Spl, ctx.machine(), cost, 8);
                let mut out_r = out_ex.attach(None);
                run_hash_join(ctx, br, pr, out_ex, 0, &cost);
                let mut got = Vec::new();
                while let Some(b) = out_r.next(ctx) {
                    got.extend(b.rows.clone());
                }
                got
            })
            .join()
            .unwrap();
        // keys 0,1,2 of i%5 match → i ∈ {0,1,2,5,6,7} → 6 rows of arity 3.
        assert_eq!(out.len(), 6);
        for r in &out {
            assert_eq!(r.len(), 3);
            let key = r[0].as_int();
            assert_eq!(r[2].as_str(), format!("t{key}"));
        }
    }

    #[test]
    fn aggregate_groups_and_sorts() {
        let m = machine();
        let cost = CostModel::default();
        let b = bound();
        let order = query().order_by;
        // Joined layout: [fk, m, tag]
        let rows: Vec<Row> = vec![
            vec![Value::Int(0), Value::Int(10), Value::str("b")],
            vec![Value::Int(1), Value::Int(5), Value::str("a")],
            vec![Value::Int(0), Value::Int(7), Value::str("b")],
        ];
        let out = m
            .spawn("coord", move |ctx| {
                let (_ex, r) = feed(ctx.machine(), rows);
                run_aggregate(ctx, r, &b, &order, &cost)
            })
            .join()
            .unwrap();
        assert_eq!(
            out,
            vec![
                vec![Value::str("a"), Value::Float(5.0)],
                vec![Value::str("b"), Value::Float(17.0)],
            ]
        );
    }

    #[test]
    fn full_mini_pipeline_end_to_end() {
        // scan rows → fact select → join → aggregate, all as packets.
        let m = machine();
        let cost = CostModel::default();
        let q = query();
        let b = bound();
        let out = m
            .spawn("coord", move |ctx| {
                let fact_rows: Vec<Row> = (0..100)
                    .map(|i| vec![Value::Int(i % 4), Value::Int(i)])
                    .collect();
                let dim_rows: Vec<Row> = (0..4)
                    .map(|i| vec![Value::Int(i), Value::str(if i % 2 == 0 { "ev" } else { "od" })])
                    .collect();
                let (_fex, fr) = feed(ctx.machine(), fact_rows);
                let (_dex, dr) = feed(ctx.machine(), dim_rows);

                let sel_out = Exchange::new(ExchangeKind::Spl, ctx.machine(), cost, 8);
                let sel_r = sel_out.attach(None);
                let q2 = q.clone();
                let b2 = b.clone();
                let sel_out2 = sel_out.clone();
                let sel = ctx.machine().spawn("sel", move |ctx| {
                    run_fact_select(ctx, fr, sel_out2, &q2.fact_pred, &b2, &cost)
                });

                let join_out = Exchange::new(ExchangeKind::Spl, ctx.machine(), cost, 8);
                let join_r = join_out.attach(None);
                let join_out2 = join_out.clone();
                let join = ctx.machine().spawn("join", move |ctx| {
                    run_hash_join(ctx, dr, sel_r, join_out2, 0, &cost)
                });

                let res = run_aggregate(ctx, join_r, &b, &q.order_by, &cost);
                sel.join().unwrap();
                join.join().unwrap();
                res
            })
            .join()
            .unwrap();
        // Groups "ev" (fk 0,2) and "od" (fk 1,3); all m ≤ 1000 pass.
        assert_eq!(out.len(), 2);
        let ev: f64 = (0..100).filter(|i| i % 4 % 2 == 0).map(|i| i as f64).sum();
        let od: f64 = (0..100).filter(|i| i % 4 % 2 == 1).map(|i| i as f64).sum();
        assert_eq!(out[0], vec![Value::str("ev"), Value::Float(ev)]);
        assert_eq!(out[1], vec![Value::str("od"), Value::Float(od)]);
    }
}
