//! Windows of Opportunity (paper §2.2, Figure 2b).
//!
//! The WoP of a pivot operator bounds how much of an in-progress (host)
//! evaluation a newly arrived identical (satellite) packet can reuse:
//!
//! * **Step** — full reuse iff the satellite arrives before the host's first
//!   output tuple; zero afterwards. Joins and aggregations.
//! * **Linear** — reuse proportional to the remaining work from the arrival
//!   point; the satellite later re-issues the part it missed. Table scans
//!   (realized as circular scans: the missed prefix is produced after the
//!   wrap) and sorts.

/// Window-of-opportunity class of a pivot operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Wop {
    /// Full reuse only before the first output tuple.
    Step,
    /// Reuse from arrival onward; the missed prefix is recomputed/wrapped.
    Linear,
}

impl Wop {
    /// Whether a satellite arriving when the host has already emitted
    /// `emitted_pages` (out of `total_pages`, if known) may attach.
    pub fn can_attach(self, emitted_pages: u64, host_closed: bool) -> bool {
        match self {
            Wop::Step => emitted_pages == 0 && !host_closed,
            Wop::Linear => !host_closed,
        }
    }

    /// Fraction of the host's results a satellite arriving at progress
    /// `p ∈ [0,1]` gains (Figure 2b's y-axis). Purely informational —
    /// used by reports and tests of the WoP semantics.
    pub fn gain(self, progress: f64) -> f64 {
        let p = progress.clamp(0.0, 1.0);
        match self {
            Wop::Step => {
                if p == 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Wop::Linear => 1.0 - p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_attaches_only_before_first_output() {
        assert!(Wop::Step.can_attach(0, false));
        assert!(!Wop::Step.can_attach(1, false));
        assert!(!Wop::Step.can_attach(0, true));
    }

    #[test]
    fn linear_attaches_until_host_finishes() {
        assert!(Wop::Linear.can_attach(0, false));
        assert!(Wop::Linear.can_attach(1_000, false));
        assert!(!Wop::Linear.can_attach(5, true));
    }

    #[test]
    fn gain_shapes_match_figure_2b() {
        // Step: all-or-nothing.
        assert_eq!(Wop::Step.gain(0.0), 1.0);
        assert_eq!(Wop::Step.gain(0.01), 0.0);
        // Linear: complementary ramp.
        assert_eq!(Wop::Linear.gain(0.0), 1.0);
        assert!((Wop::Linear.gain(0.25) - 0.75).abs() < 1e-12);
        assert_eq!(Wop::Linear.gain(1.0), 0.0);
        // Clamping.
        assert_eq!(Wop::Linear.gain(2.0), 0.0);
    }
}
