//! SP sharing registries: detecting identical in-flight sub-plans.
//!
//! "This design allows each stage to monitor only its packets for detecting
//! sharing opportunities efficiently. If it finds an identical packet, and
//! their interarrival delay is inside the WoP of the pivot operator, it
//! attaches the new packet (satellite packet) to it (host packet)" (§2.3).
//!
//! A registry maps a structural plan signature to the host's output
//! exchange. `try_attach` enforces the pivot operator's WoP against the
//! host's progress (pages emitted / closed).

use std::sync::Arc;

use parking_lot::Mutex;

use workshare_common::fxhash::FxHashMap;

use crate::exchange::{Exchange, ExchangeReader};
use crate::wop::Wop;

#[derive(Default)]
struct RegState {
    entries: FxHashMap<u64, Exchange>,
    hosts: u64,
    satellites: u64,
}

/// A per-stage SP registry. Cheap to clone.
#[derive(Clone, Default)]
pub struct SpRegistry {
    state: Arc<Mutex<RegState>>,
}

impl SpRegistry {
    /// Create an empty registry.
    pub fn new() -> SpRegistry {
        SpRegistry::default()
    }

    /// Register `exchange` as the host output for plans with `signature`.
    /// An existing *usable* host is kept (first packet wins); stale entries
    /// (already producing or closed beyond their WoP) are replaced.
    pub fn register(&self, signature: u64, exchange: Exchange, wop: Wop) {
        let mut s = self.state.lock();
        let replace = match s.entries.get(&signature) {
            Some(old) => !wop.can_attach(old.emitted(), old.is_closed()),
            None => true,
        };
        if replace {
            s.entries.insert(signature, exchange);
            s.hosts += 1;
        }
    }

    /// Attach to the host with `signature` if one exists and its WoP is
    /// still open; returns a satellite reader.
    pub fn try_attach(
        &self,
        signature: u64,
        wop: Wop,
        budget: Option<u64>,
    ) -> Option<ExchangeReader> {
        let mut s = self.state.lock();
        let ex = s.entries.get(&signature)?;
        if !wop.can_attach(ex.emitted(), ex.is_closed()) {
            return None;
        }
        let reader = ex.attach(budget);
        s.satellites += 1;
        Some(reader)
    }

    /// (hosts registered, satellites attached).
    pub fn stats(&self) -> (u64, u64) {
        let s = self.state.lock();
        (s.hosts, s.satellites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::TupleBatch;
    use crate::exchange::ExchangeKind;
    use workshare_common::{CostModel, Value};
    use workshare_sim::{Machine, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 4,
            ..Default::default()
        })
    }

    fn exchange(m: &Machine) -> Exchange {
        Exchange::new(ExchangeKind::Spl, m, CostModel::default(), 8)
    }

    #[test]
    fn attach_before_first_output_succeeds_step_wop() {
        let m = machine();
        let reg = SpRegistry::new();
        let ex = exchange(&m);
        reg.register(7, ex.clone(), Wop::Step);
        assert!(reg.try_attach(7, Wop::Step, None).is_some());
        assert_eq!(reg.stats(), (1, 1));
    }

    #[test]
    fn attach_after_first_output_fails_step_wop() {
        let m = machine();
        let reg = SpRegistry::new();
        let ex = exchange(&m);
        let _keep = ex.attach(None);
        reg.register(7, ex.clone(), Wop::Step);
        let exp = ex.clone();
        m.spawn("p", move |ctx| {
            exp.emit(ctx, Arc::new(TupleBatch::new(vec![vec![Value::Int(1)]])));
        })
        .join()
        .unwrap();
        assert!(reg.try_attach(7, Wop::Step, None).is_none());
    }

    #[test]
    fn linear_wop_attaches_mid_production_but_not_after_close() {
        let m = machine();
        let reg = SpRegistry::new();
        let ex = exchange(&m);
        let _keep = ex.attach(None);
        reg.register(9, ex.clone(), Wop::Linear);
        let exp = ex.clone();
        m.spawn("p", move |ctx| {
            exp.emit(ctx, Arc::new(TupleBatch::new(vec![vec![Value::Int(1)]])));
        })
        .join()
        .unwrap();
        assert!(reg.try_attach(9, Wop::Linear, Some(5)).is_some());
        ex.close();
        assert!(reg.try_attach(9, Wop::Linear, Some(5)).is_none());
    }

    #[test]
    fn unknown_signature_misses() {
        let reg = SpRegistry::new();
        assert!(reg.try_attach(42, Wop::Step, None).is_none());
    }

    #[test]
    fn stale_host_is_replaced_on_register() {
        let m = machine();
        let reg = SpRegistry::new();
        let old = exchange(&m);
        reg.register(5, old.clone(), Wop::Step);
        old.close(); // stale now
        let fresh = exchange(&m);
        reg.register(5, fresh.clone(), Wop::Step);
        // Attach must hit the fresh host (hold the reader: drop detaches).
        let reader = reg.try_attach(5, Wop::Step, None);
        assert!(reader.is_some());
        assert_eq!(fresh.reader_count(), 1);
        assert_eq!(old.reader_count(), 0);
    }

    #[test]
    fn usable_host_is_not_replaced() {
        let m = machine();
        let reg = SpRegistry::new();
        let first = exchange(&m);
        reg.register(5, first.clone(), Wop::Step);
        let second = exchange(&m);
        reg.register(5, second.clone(), Wop::Step);
        let reader = reg.try_attach(5, Wop::Step, None);
        assert!(reader.is_some());
        assert_eq!(first.reader_count(), 1, "first host kept");
        assert_eq!(second.reader_count(), 0);
    }
}
