//! The QPipe engine: plan instantiation, packet spawning, SP wiring.
//!
//! `submit` converts a [`StarQuery`] into a tree of packet vthreads connected
//! by exchanges:
//!
//! ```text
//! scan(fact) → fact-select ─┐
//! scan(dim0) → dim-select ──┤→ join0 ─┐
//! scan(dim1) → dim-select ────────────┤→ join1 → … → aggregate/sort → result
//! ```
//!
//! Sharing hooks, all switchable per configuration:
//!
//! * **Circular scans** (`circular_scans`) — scan packets attach to the
//!   shared per-table scanner (linear WoP) instead of scanning privately.
//! * **SP at the join stage** (`sp_joins`) — before building join level `k`,
//!   the engine probes the join registry for an in-flight identical sub-plan
//!   (deepest prefix first); on a hit the satellite consumes the host's
//!   output exchange and only builds the plan *above* the shared pivot.
//! * **SP at the top** (`sp_aggs`) — fully identical queries reuse the
//!   host's buffered final result (full step WoP, paper §3.1 "identical
//!   queries"). Off by default, as in the paper's experiments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use workshare_common::bind::{bind, BoundQuery};
use workshare_common::fxhash::FxHashMap;
use workshare_common::value::Row;
use workshare_common::{CostModel, StarQuery};
use workshare_sim::{CostKind, Machine, SimCtx, WaitSet};
use workshare_storage::{StorageManager, TableId};

use crate::exchange::{Exchange, ExchangeKind, ExchangeReader};
use crate::ops;
use crate::registry::SpRegistry;
use crate::scan::{spawn_independent_scan, ScanService};
use crate::wop::Wop;

/// QPipe engine configuration (one row of the paper's §5.1 matrix).
#[derive(Debug, Clone, Copy)]
pub struct QpipeConfig {
    /// Exchange implementation (push FIFO vs pull SPL).
    pub exchange: ExchangeKind,
    /// Share table scans via circular scans (`QPipe-CS`).
    pub circular_scans: bool,
    /// SP at the join stage (`QPipe-SP`).
    pub sp_joins: bool,
    /// SP for identical whole plans at the top stage (off in the paper's
    /// experiments, available for completeness).
    pub sp_aggs: bool,
    /// The run-time prediction model of Johnson et al. \[14\] ("To share or
    /// not to share?"): only share scans when the machine is saturated
    /// (in-flight queries ≥ cores). The paper argues SPL makes this model
    /// unnecessary; the flag exists for the Fig. 6 ablation.
    pub cs_prediction: bool,
    /// Exchange capacity in pages (256 KB / 32 KB = 8, paper §4).
    pub cap_pages: usize,
}

impl Default for QpipeConfig {
    fn default() -> Self {
        QpipeConfig {
            exchange: ExchangeKind::Spl,
            circular_scans: false,
            sp_joins: false,
            sp_aggs: false,
            cs_prediction: false,
            cap_pages: 8,
        }
    }
}

/// Result sink of one query.
pub struct QueryResult {
    rows: Mutex<Option<Arc<Vec<Row>>>>,
    done: AtomicBool,
    ws: WaitSet,
    start_ns: f64,
    finish_ns: Mutex<f64>,
}

impl QueryResult {
    fn new(machine: &Machine, start_ns: f64) -> QueryResult {
        QueryResult {
            rows: Mutex::new(None),
            done: AtomicBool::new(false),
            ws: WaitSet::new(machine),
            start_ns,
            finish_ns: Mutex::new(0.0),
        }
    }

    fn complete(&self, rows: Arc<Vec<Row>>, now_ns: f64) {
        *self.rows.lock() = Some(rows);
        *self.finish_ns.lock() = now_ns;
        self.done.store(true, Ordering::Release);
        self.ws.notify_all();
    }

    /// Whether the query finished.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

/// Handle to a submitted query.
#[derive(Clone)]
pub struct QueryHandle {
    /// The query's submission id.
    pub id: u64,
    result: Arc<QueryResult>,
}

impl QueryHandle {
    /// Block (virtual time if called from a vthread) until the query
    /// completes; returns its result rows.
    pub fn wait(&self) -> Arc<Vec<Row>> {
        let r = Arc::clone(&self.result);
        self.result
            .ws
            .wait_for(move || {
                if r.done.load(Ordering::Acquire) {
                    Some(r.rows.lock().clone().expect("done without rows"))
                } else {
                    None
                }
            })
    }

    /// Response time in virtual seconds (valid after completion).
    pub fn latency_secs(&self) -> f64 {
        (*self.result.finish_ns.lock() - self.result.start_ns) / 1e9
    }

    /// Completion time in virtual nanoseconds.
    pub fn finish_ns(&self) -> f64 {
        *self.result.finish_ns.lock()
    }

    /// Whether the query finished.
    pub fn is_done(&self) -> bool {
        self.result.is_done()
    }
}

/// Aggregate sharing statistics of an engine instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Circular-scan hosts created.
    pub scan_hosts: u64,
    /// Scan packets that attached to an existing circular scan.
    pub scan_satellites: u64,
    /// Join sub-plans registered as hosts.
    pub join_hosts: u64,
    /// Satellite attachments by join level (index 0 = first hash-join),
    /// mirroring the paper's Fig. 15 "1st/2nd/3rd hash-join" counts.
    pub join_satellites_by_level: Vec<u64>,
    /// Whole-plan result reuses (sp_aggs).
    pub result_satellites: u64,
}

struct EngineInner {
    machine: Machine,
    storage: StorageManager,
    cost: CostModel,
    config: QpipeConfig,
    scan: ScanService,
    joins: SpRegistry,
    results: Mutex<FxHashMap<u64, Arc<QueryResult>>>,
    gate_ws: WaitSet,
    gate_open: Arc<AtomicBool>,
    join_level_shares: Mutex<Vec<u64>>,
    result_shares: AtomicU64,
    /// Queries submitted but not yet completed (the prediction model's
    /// saturation signal).
    in_flight: Arc<AtomicU64>,
    /// Completed-query count and response-time EWMA (virtual ns) — the
    /// observed-latency feedback signal the sharing governor consumes.
    completed: AtomicU64,
    lat_ewma_ns: Mutex<f64>,
}

impl EngineInner {
    /// Fold one completed query's response time into the EWMA (α = 0.2).
    fn observe_latency(&self, lat_ns: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut ewma = self.lat_ewma_ns.lock();
        *ewma = if *ewma == 0.0 {
            lat_ns
        } else {
            0.8 * *ewma + 0.2 * lat_ns
        };
    }
}

/// The staged execution engine. Cheap to clone.
#[derive(Clone)]
pub struct QpipeEngine {
    inner: Arc<EngineInner>,
}

impl QpipeEngine {
    /// Create an engine over `storage` on `machine`.
    pub fn new(
        machine: &Machine,
        storage: &StorageManager,
        config: QpipeConfig,
        cost: CostModel,
    ) -> QpipeEngine {
        QpipeEngine {
            inner: Arc::new(EngineInner {
                machine: machine.clone(),
                storage: storage.clone(),
                cost,
                config,
                scan: ScanService::new(machine, storage, cost, config.exchange, config.cap_pages),
                joins: SpRegistry::new(),
                results: Mutex::new(FxHashMap::default()),
                gate_ws: WaitSet::new(machine),
                gate_open: Arc::new(AtomicBool::new(true)),
                join_level_shares: Mutex::new(Vec::new()),
                result_shares: AtomicU64::new(0),
                in_flight: Arc::new(AtomicU64::new(0)),
                completed: AtomicU64::new(0),
                lat_ewma_ns: Mutex::new(0.0),
            }),
        }
    }

    /// The machine this engine runs on.
    pub fn machine(&self) -> &Machine {
        &self.inner.machine
    }

    /// The engine's storage manager.
    pub fn storage(&self) -> &StorageManager {
        &self.inner.storage
    }

    /// Active configuration.
    pub fn config(&self) -> QpipeConfig {
        self.inner.config
    }

    /// Hold packets at the start line (batch submission: close, submit all,
    /// open — "queries are submitted at the same time", §5.1).
    pub fn close_gate(&self) {
        self.inner.gate_open.store(false, Ordering::Release);
    }

    /// Release all packets held at the gate.
    pub fn open_gate(&self) {
        self.inner.gate_open.store(true, Ordering::Release);
        self.inner.gate_ws.notify_all();
    }

    fn spawn_packet<F>(&self, name: &str, body: F)
    where
        F: FnOnce(&SimCtx) + Send + 'static,
    {
        let gate_ws = self.inner.gate_ws.clone();
        let gate_open = Arc::clone(&self.inner.gate_open);
        self.inner.machine.spawn(name, move |ctx| {
            if !gate_open.load(Ordering::Acquire) {
                gate_ws.wait_until(|| gate_open.load(Ordering::Acquire));
            }
            body(ctx);
        });
    }

    fn scan_reader(&self, table: TableId) -> ExchangeReader {
        let inner = &self.inner;
        // Prediction model [14]: "first parallelize with a query-centric
        // model before sharing" — only attach to the shared scan when the
        // in-flight query count saturates the cores.
        let share = inner.config.circular_scans
            && (!inner.config.cs_prediction
                || self.in_flight() >= inner.machine.cores() as u64);
        if share {
            inner.scan.attach(table)
        } else {
            spawn_independent_scan(
                &inner.machine,
                &inner.storage,
                inner.cost,
                inner.config.exchange,
                inner.config.cap_pages,
                table,
                Some(inner.gate_ws.clone()),
                Arc::clone(&inner.gate_open),
            )
        }
    }

    /// Queries submitted and not yet completed.
    pub fn in_flight(&self) -> u64 {
        self.inner.in_flight.load(Ordering::Acquire)
    }

    /// Observed response-time EWMA over completed queries, virtual seconds
    /// (`None` until the first completion). The sharing governor uses this
    /// to calibrate its cost-model estimates against reality.
    pub fn observed_latency_ewma_secs(&self) -> Option<f64> {
        (self.inner.completed.load(Ordering::Relaxed) > 0)
            .then(|| *self.inner.lat_ewma_ns.lock() / 1e9)
    }

    /// Submit one query; returns immediately with a handle. Callable from a
    /// coordinator vthread (deterministic batches) or an external thread.
    pub fn submit(&self, q: &StarQuery) -> QueryHandle {
        let inner = &self.inner;
        let cost = inner.cost;
        let now = inner.machine.now_ns();
        inner.in_flight.fetch_add(1, Ordering::AcqRel);
        let result = Arc::new(QueryResult::new(&inner.machine, now));
        let handle = QueryHandle {
            id: q.id,
            result: Arc::clone(&result),
        };

        // ---- whole-plan SP (identical queries) --------------------------
        if inner.config.sp_aggs {
            let sig = q.full_signature();
            let mut map = inner.results.lock();
            if let Some(host) = map.get(&sig) {
                if !host.is_done() {
                    let host = Arc::clone(host);
                    let res = Arc::clone(&result);
                    let in_flight = Arc::clone(&inner.in_flight);
                    inner.result_shares.fetch_add(1, Ordering::Relaxed);
                    let inner2 = Arc::clone(&self.inner);
                    self.spawn_packet(&format!("res-sat-q{}", q.id), move |ctx| {
                        let rows = host.ws.wait_for(|| {
                            if host.done.load(Ordering::Acquire) {
                                Some(host.rows.lock().clone().expect("done w/o rows"))
                            } else {
                                None
                            }
                        });
                        // Copy the buffered final results to this client.
                        let bytes: usize = rows.len() * 64;
                        ctx.charge(CostKind::Copy, cost.copy_cost(bytes));
                        let done_ns = ctx.machine().now_ns();
                        res.complete(rows, done_ns);
                        inner2.observe_latency(done_ns - now);
                        in_flight.fetch_sub(1, Ordering::AcqRel);
                    });
                    return handle;
                }
            }
            map.insert(sig, Arc::clone(&result));
        }

        // ---- bind -------------------------------------------------------
        let d = q.dims.len();
        let fact_t = inner.storage.table(&q.fact);
        let dim_ts: Vec<TableId> =
            q.dims.iter().map(|dj| inner.storage.table(&dj.dim)).collect();
        let fact_schema = inner.storage.schema(fact_t);
        let dim_schemas: Vec<_> = dim_ts.iter().map(|&t| inner.storage.schema(t)).collect();
        let dim_refs: Vec<&workshare_common::Schema> =
            dim_schemas.iter().map(|s| s.as_ref()).collect();
        let bound: Arc<BoundQuery> = Arc::new(bind(&fact_schema, &dim_refs, q));

        // ---- SP at the join stage: reuse the deepest identical prefix ----
        let mut stream: Option<ExchangeReader> = None;
        let mut start_level = 0usize;
        if inner.config.sp_joins && d > 0 {
            for k in (0..d).rev() {
                if let Some(r) =
                    inner
                        .joins
                        .try_attach(q.join_prefix_signature(k), Wop::Step, None)
                {
                    let mut shares = inner.join_level_shares.lock();
                    if shares.len() <= k {
                        shares.resize(k + 1, 0);
                    }
                    shares[k] += 1;
                    stream = Some(r);
                    start_level = k + 1;
                    break;
                }
            }
        }

        // ---- fact scan + select (only when nothing was reused) -----------
        let mut stream = match stream {
            Some(r) => r,
            None => {
                let scan_r = self.scan_reader(fact_t);
                let sel_out =
                    Exchange::new(inner.config.exchange, &inner.machine, cost, inner.config.cap_pages);
                let primary = sel_out.attach(None);
                let pred = q.fact_pred.clone();
                let b = Arc::clone(&bound);
                self.spawn_packet(&format!("fsel-q{}", q.id), move |ctx| {
                    ops::run_fact_select(ctx, scan_r, sel_out, &pred, &b, &cost);
                });
                primary
            }
        };

        // ---- joins --------------------------------------------------------
        for (k, &dim_t) in dim_ts.iter().enumerate().skip(start_level) {
            let dscan_r = self.scan_reader(dim_t);
            let build_ex =
                Exchange::new(inner.config.exchange, &inner.machine, cost, inner.config.cap_pages);
            let build_r = build_ex.attach(None);
            let pred = q.dims[k].pred.clone();
            let pk = bound.dim_pk_idx[k];
            let payload = bound.dim_payload_idx[k].clone();
            self.spawn_packet(&format!("dsel-q{}-{k}", q.id), move |ctx| {
                ops::run_dim_select(ctx, dscan_r, build_ex, &pred, pk, &payload, &cost);
            });

            let out =
                Exchange::new(inner.config.exchange, &inner.machine, cost, inner.config.cap_pages);
            if inner.config.sp_joins {
                inner
                    .joins
                    .register(q.join_prefix_signature(k), out.clone(), Wop::Step);
            }
            let out_primary = out.attach(None);
            let probe = stream;
            stream = out_primary;
            self.spawn_packet(&format!("join-q{}-{k}", q.id), move |ctx| {
                ops::run_hash_join(ctx, build_r, probe, out, k, &cost);
            });
        }

        // ---- aggregate / sort / result ------------------------------------
        let order = q.order_by.clone();
        let b = Arc::clone(&bound);
        let in_flight = Arc::clone(&inner.in_flight);
        let inner2 = Arc::clone(&self.inner);
        self.spawn_packet(&format!("agg-q{}", q.id), move |ctx| {
            let rows = ops::run_aggregate(ctx, stream, &b, &order, &cost);
            let done_ns = ctx.machine().now_ns();
            result.complete(Arc::new(rows), done_ns);
            inner2.observe_latency(done_ns - now);
            in_flight.fetch_sub(1, Ordering::AcqRel);
        });
        handle
    }

    /// Aggregate sharing statistics.
    pub fn sharing_stats(&self) -> SharingStats {
        let (scan_hosts, scan_satellites) = self.inner.scan.stats();
        let (join_hosts, _) = self.inner.joins.stats();
        SharingStats {
            scan_hosts,
            scan_satellites,
            join_hosts,
            join_satellites_by_level: self.inner.join_level_shares.lock().clone(),
            result_satellites: self.inner.result_shares.load(Ordering::Relaxed),
        }
    }

    /// Stop shared scanners (call when the workload is complete).
    pub fn shutdown(&self) {
        self.inner.scan.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::codec::PageBuilder;
    use workshare_common::{
        AggSpec, ColRef, ColType, Column, DimJoin, OrderKey, Predicate, Schema, Value,
    };
    use workshare_sim::MachineConfig;
    use workshare_storage::{IoMode, StorageConfig};

    fn setup() -> (Machine, StorageManager) {
        let m = Machine::new(MachineConfig {
            cores: 8,
            ..Default::default()
        });
        let sm = StorageManager::new(
            StorageConfig {
                io_mode: IoMode::Memory,
                ..Default::default()
            },
            CostModel::default(),
        );
        // fact(fk, m): 2000 rows; dim(pk, tag): 10 rows.
        let fs = Schema::new(vec![
            Column::new("fk", ColType::Int),
            Column::new("m", ColType::Int),
        ]);
        let mut fb = PageBuilder::new(&fs);
        for i in 0..2000i64 {
            fb.push(&[Value::Int(i % 10), Value::Int(i)]);
        }
        let fpages = fb.finish();
        sm.create_table("fact", fs, fpages);
        let ds = Schema::new(vec![
            Column::new("pk", ColType::Int),
            Column::new("tag", ColType::Str(4)),
        ]);
        let mut db = PageBuilder::new(&ds);
        for i in 0..10i64 {
            db.push(&[Value::Int(i), Value::str(if i < 5 { "lo" } else { "hi" })]);
        }
        let dpages = db.finish();
        sm.create_table("dim", ds, dpages);
        (m, sm)
    }

    fn query(id: u64, lo_only: bool) -> StarQuery {
        StarQuery {
            id,
            fact: "fact".into(),
            fact_pred: Predicate::True,
            dims: vec![DimJoin {
                dim: "dim".into(),
                fact_fk: "fk".into(),
                dim_pk: "pk".into(),
                pred: if lo_only {
                    Predicate::eq(1, Value::str("lo"))
                } else {
                    Predicate::True
                },
                payload: vec!["tag".into()],
            }],
            group_by: vec![ColRef::dim(0, "tag")],
            aggs: vec![AggSpec::sum(ColRef::fact("m"))],
            order_by: vec![OrderKey {
                output_idx: 0,
                desc: false,
            }],
        }
    }

    /// Ground truth computed naively.
    fn expected(lo_only: bool) -> Vec<Vec<Value>> {
        let mut lo = 0.0;
        let mut hi = 0.0;
        for i in 0..2000i64 {
            if i % 10 < 5 {
                lo += i as f64;
            } else {
                hi += i as f64;
            }
        }
        if lo_only {
            vec![vec![Value::str("lo"), Value::Float(lo)]]
        } else {
            vec![
                vec![Value::str("hi"), Value::Float(hi)],
                vec![Value::str("lo"), Value::Float(lo)],
            ]
        }
    }

    fn run_config(config: QpipeConfig, queries: Vec<StarQuery>) -> (Vec<Arc<Vec<Row>>>, QpipeEngine) {
        let (m, sm) = setup();
        let engine = QpipeEngine::new(&m, &sm, config, CostModel::default());
        let e2 = engine.clone();
        let out = m
            .spawn("coord", move |_ctx| {
                e2.close_gate();
                let handles: Vec<_> = queries.iter().map(|q| e2.submit(q)).collect();
                e2.open_gate();
                handles.iter().map(|h| h.wait()).collect::<Vec<_>>()
            })
            .join()
            .unwrap();
        engine.shutdown();
        (out, engine)
    }

    fn all_configs() -> Vec<QpipeConfig> {
        let mut v = Vec::new();
        for kind in [ExchangeKind::Spl, ExchangeKind::Fifo] {
            for cs in [false, true] {
                for sp in [false, true] {
                    v.push(QpipeConfig {
                        exchange: kind,
                        circular_scans: cs,
                        sp_joins: sp,
                        sp_aggs: false,
                        cs_prediction: false,
                        cap_pages: 4,
                    });
                }
            }
        }
        v
    }

    #[test]
    fn single_query_correct_on_every_config() {
        for config in all_configs() {
            let (res, _) = run_config(config, vec![query(1, false)]);
            assert_eq!(*res[0], expected(false), "{config:?}");
        }
    }

    #[test]
    fn mixed_batch_correct_on_every_config() {
        for config in all_configs() {
            let queries = vec![
                query(1, false),
                query(2, true),
                query(3, false),
                query(4, true),
            ];
            let (res, _) = run_config(config, queries);
            assert_eq!(*res[0], expected(false), "{config:?}");
            assert_eq!(*res[1], expected(true), "{config:?}");
            assert_eq!(*res[2], expected(false), "{config:?}");
            assert_eq!(*res[3], expected(true), "{config:?}");
        }
    }

    #[test]
    fn sp_joins_shares_identical_subplans() {
        let config = QpipeConfig {
            exchange: ExchangeKind::Spl,
            circular_scans: true,
            sp_joins: true,
            sp_aggs: false,
            cs_prediction: false,
            cap_pages: 4,
        };
        let queries = vec![query(1, false), query(2, false), query(3, false)];
        let (res, engine) = run_config(config, queries);
        for r in &res {
            assert_eq!(**r, expected(false));
        }
        let stats = engine.sharing_stats();
        assert_eq!(
            stats.join_satellites_by_level.first().copied().unwrap_or(0),
            2,
            "two satellites on the first (only) join level: {stats:?}"
        );
    }

    #[test]
    fn circular_scans_count_satellites() {
        let config = QpipeConfig {
            exchange: ExchangeKind::Spl,
            circular_scans: true,
            sp_joins: false,
            sp_aggs: false,
            cs_prediction: false,
            cap_pages: 4,
        };
        let (res, engine) = run_config(config, vec![query(1, true), query(2, false)]);
        assert_eq!(*res[0], expected(true));
        assert_eq!(*res[1], expected(false));
        let stats = engine.sharing_stats();
        // fact + dim hosts; second query's fact and dim scans are satellites.
        assert_eq!(stats.scan_hosts, 2, "{stats:?}");
        assert_eq!(stats.scan_satellites, 2, "{stats:?}");
    }

    #[test]
    fn sp_aggs_reuses_identical_whole_plans() {
        let config = QpipeConfig {
            exchange: ExchangeKind::Spl,
            circular_scans: true,
            sp_joins: true,
            sp_aggs: true,
            cs_prediction: false,
            cap_pages: 4,
        };
        let queries = vec![query(1, false), query(2, false)];
        let (res, engine) = run_config(config, queries);
        assert_eq!(*res[0], expected(false));
        assert_eq!(*res[1], expected(false));
        assert_eq!(engine.sharing_stats().result_satellites, 1);
    }

    #[test]
    fn sharing_reduces_total_cpu_work() {
        let queries: Vec<StarQuery> = (0..8).map(|i| query(i, false)).collect();
        let none = QpipeConfig {
            exchange: ExchangeKind::Spl,
            circular_scans: false,
            sp_joins: false,
            sp_aggs: false,
            cs_prediction: false,
            cap_pages: 4,
        };
        let shared = QpipeConfig {
            sp_joins: true,
            circular_scans: true,
            ..none
        };
        let (m1, sm1) = setup();
        let e1 = QpipeEngine::new(&m1, &sm1, none, CostModel::default());
        let qs = queries.clone();
        let e1c = e1.clone();
        m1.spawn("coord", move |_| {
            e1c.close_gate();
            let hs: Vec<_> = qs.iter().map(|q| e1c.submit(q)).collect();
            e1c.open_gate();
            for h in hs {
                h.wait();
            }
        })
        .join()
        .unwrap();
        e1.shutdown();

        let (m2, sm2) = setup();
        let e2 = QpipeEngine::new(&m2, &sm2, shared, CostModel::default());
        let e2c = e2.clone();
        m2.spawn("coord", move |_| {
            e2c.close_gate();
            let hs: Vec<_> = queries.iter().map(|q| e2c.submit(q)).collect();
            e2c.open_gate();
            for h in hs {
                h.wait();
            }
        })
        .join()
        .unwrap();
        e2.shutdown();

        let work_none = m1.cpu_breakdown().total_ns();
        let work_shared = m2.cpu_breakdown().total_ns();
        assert!(
            work_shared < work_none * 0.5,
            "sharing must cut CPU work: shared={work_shared} none={work_none}"
        );
    }

    #[test]
    fn latency_is_positive_and_ordered() {
        let (res, _) = run_config(QpipeConfig::default(), vec![query(1, false)]);
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn observed_latency_ewma_tracks_completions() {
        let (m, sm) = setup();
        let engine = QpipeEngine::new(&m, &sm, QpipeConfig::default(), CostModel::default());
        assert_eq!(engine.observed_latency_ewma_secs(), None, "no completions yet");
        let e2 = engine.clone();
        m.spawn("coord", move |_| {
            for i in 0..3 {
                e2.submit(&query(i, false)).wait();
            }
        })
        .join()
        .unwrap();
        let ewma = engine.observed_latency_ewma_secs().expect("completions observed");
        assert!(ewma > 0.0);
        engine.shutdown();
    }
}
