//! Pages of tuples flowing between packets.

use std::sync::Arc;

use workshare_common::value::{Row, Value};
use workshare_common::{SelVec, PAGE_SIZE};

/// A page worth of decoded tuples. Exchanged by `Arc` so SPL consumers share
/// one copy; push-based FIFOs deep-clone per satellite (the copy the paper's
/// serialization point pays for).
#[derive(Debug, Clone, PartialEq)]
pub struct TupleBatch {
    /// The rows.
    pub rows: Vec<Row>,
    /// Approximate encoded size in bytes (drives copy costs and batching).
    pub bytes: usize,
}

fn approx_row_bytes(row: &Row) -> usize {
    row.iter()
        .map(|v| match v {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 2 + s.len(),
        })
        .sum()
}

impl TupleBatch {
    /// Build a batch, computing its approximate byte size.
    pub fn new(rows: Vec<Row>) -> TupleBatch {
        let bytes = rows.iter().map(approx_row_bytes).sum();
        TupleBatch { rows, bytes }
    }

    /// Build a batch with a pre-computed byte size (scan pages know theirs).
    pub fn with_bytes(rows: Vec<Row>, bytes: usize) -> TupleBatch {
        TupleBatch { rows, bytes }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Deep copy (what push-based SP physically does per satellite).
    pub fn deep_clone(&self) -> TupleBatch {
        TupleBatch {
            rows: self.rows.clone(),
            bytes: self.bytes,
        }
    }

    /// Iterate the rows a selection bitmap keeps (the batch-at-a-time
    /// contract: operators produce a [`SelVec`] with
    /// `Predicate::eval_batch_into` and consumers walk only the survivors).
    pub fn selected_rows<'a>(&'a self, sel: &'a SelVec) -> impl Iterator<Item = &'a Row> {
        debug_assert_eq!(sel.len(), self.rows.len());
        sel.iter_ones().map(|i| &self.rows[i])
    }

    /// Materialize the selected rows as a new batch (recomputing bytes).
    pub fn gather(&self, sel: &SelVec) -> TupleBatch {
        TupleBatch::new(self.selected_rows(sel).cloned().collect())
    }
}

/// Accumulates output rows and emits page-sized batches through a closure.
pub struct BatchBuilder {
    rows: Vec<Row>,
    bytes: usize,
    target_bytes: usize,
}

impl BatchBuilder {
    /// Builder targeting the standard page size.
    pub fn new() -> BatchBuilder {
        BatchBuilder {
            rows: Vec::new(),
            bytes: 0,
            target_bytes: PAGE_SIZE,
        }
    }

    /// Builder with a custom flush threshold (tests).
    pub fn with_target(target_bytes: usize) -> BatchBuilder {
        BatchBuilder {
            rows: Vec::new(),
            bytes: 0,
            target_bytes: target_bytes.max(1),
        }
    }

    /// Append a row; returns a full batch when the page fills.
    #[must_use]
    pub fn push(&mut self, row: Row) -> Option<Arc<TupleBatch>> {
        self.bytes += approx_row_bytes(&row);
        self.rows.push(row);
        if self.bytes >= self.target_bytes {
            return self.flush();
        }
        None
    }

    /// Emit whatever is buffered, if anything.
    #[must_use]
    pub fn flush(&mut self) -> Option<Arc<TupleBatch>> {
        if self.rows.is_empty() {
            return None;
        }
        let rows = std::mem::take(&mut self.rows);
        let bytes = std::mem::replace(&mut self.bytes, 0);
        Some(Arc::new(TupleBatch::with_bytes(rows, bytes)))
    }
}

impl Default for BatchBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Row {
        vec![Value::Int(i), Value::str("abc")]
    }

    #[test]
    fn batch_byte_accounting() {
        let b = TupleBatch::new(vec![row(1), row(2)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.bytes, 2 * (8 + 2 + 3));
        assert!(!b.is_empty());
    }

    #[test]
    fn deep_clone_is_equal_but_independent() {
        let b = TupleBatch::new(vec![row(1)]);
        let c = b.deep_clone();
        assert_eq!(b, c);
    }

    #[test]
    fn builder_flushes_at_target() {
        let mut bb = BatchBuilder::with_target(30);
        assert!(bb.push(row(1)).is_none()); // 13 bytes
        assert!(bb.push(row(2)).is_none()); // 26
        let full = bb.push(row(3)); // 39 >= 30
        assert!(full.is_some());
        assert_eq!(full.unwrap().len(), 3);
        assert!(bb.flush().is_none(), "builder drained");
    }

    #[test]
    fn final_flush_returns_partial() {
        let mut bb = BatchBuilder::with_target(1000);
        let _ = bb.push(row(1));
        let out = bb.flush().unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn selected_rows_walks_survivors_only() {
        let b = TupleBatch::new((0..10).map(row).collect());
        let mut sel = SelVec::new();
        sel.reset(10, true);
        sel.retain(|i| i % 4 == 0);
        let got: Vec<i64> = b.selected_rows(&sel).map(|r| r[0].as_int()).collect();
        assert_eq!(got, vec![0, 4, 8]);
        let gathered = b.gather(&sel);
        assert_eq!(gathered.len(), 3);
        assert_eq!(gathered.bytes, 3 * (8 + 2 + 3));
    }
}
