//! Model-aware threads: inside [`crate::model`] each spawn registers a
//! model thread with the deterministic scheduler (spawn and join are
//! happens-before edges and schedule points); outside, this is a thin
//! wrapper over `std::thread`.

use crate::rt;

/// Handle to a spawned thread; join it to retrieve the closure's result.
pub struct JoinHandle<T> {
    inner: rt::JoinInner<T>,
}

impl<T> JoinHandle<T> {
    /// Wait (in model time under the checker) for the thread to finish.
    pub fn join(self) -> std::thread::Result<T> {
        rt::join_thread(self.inner)
    }
}

/// Spawn a thread running `f`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    JoinHandle {
        inner: rt::spawn_thread(f),
    }
}

/// Hand the scheduler an extra preemption point (no memory effect).
pub fn yield_now() {
    if !rt::yield_point() {
        std::thread::yield_now();
    }
}
