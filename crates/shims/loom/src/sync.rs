//! Model-aware synchronization primitives. Inside [`crate::model`] they are
//! mediated by the deterministic scheduler; outside they degrade to their
//! `std::sync` counterparts, so code compiled against this shim still runs
//! normally when no model execution is active.
//!
//! The lock API mirrors `parking_lot` (no poisoning, guard from `lock()`
//! directly) because that is what this workspace uses in production; it is
//! the one deliberate divergence from upstream loom's `std`-shaped API.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;
use std::sync::RwLock as StdRwLock;
use std::sync::RwLockReadGuard as StdRwLockReadGuard;
use std::sync::RwLockWriteGuard as StdRwLockWriteGuard;

use crate::rt;

pub use std::sync::Arc;

/// A mutual-exclusion lock checked by the model (parking_lot-shaped API).
pub struct Mutex<T: ?Sized> {
    cell: rt::ModelRef,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            cell: rt::ModelRef::new(),
            data: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (in model time under the checker).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = rt::mutex_lock(&self.cell);
        // Under the model the protocol above guarantees exclusivity, so
        // this inner lock is uncontended; outside it does the real work.
        let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            cell: &self.cell,
            inner: Some(inner),
            model,
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match rt::mutex_try_lock(&self.cell) {
            Some(false) => None,
            Some(true) => {
                let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
                Some(MutexGuard {
                    cell: &self.cell,
                    inner: Some(inner),
                    model: true,
                })
            }
            None => match self.data.try_lock() {
                Ok(inner) => Some(MutexGuard {
                    cell: &self.cell,
                    inner: Some(inner),
                    model: false,
                }),
                Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                    cell: &self.cell,
                    inner: Some(e.into_inner()),
                    model: false,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard of [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    cell: &'a rt::ModelRef,
    inner: Option<StdMutexGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model release publishes the
        // unlock to other model threads.
        self.inner = None;
        if self.model {
            rt::mutex_unlock(self.cell);
        }
    }
}

/// A reader-writer lock checked by the model (parking_lot-shaped API).
pub struct RwLock<T: ?Sized> {
    cell: rt::ModelRef,
    data: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            cell: rt::ModelRef::new(),
            data: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = rt::rw_lock(&self.cell, false);
        let inner = self.data.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard {
            cell: &self.cell,
            inner: Some(inner),
            model,
        }
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = rt::rw_lock(&self.cell, true);
        let inner = self.data.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard {
            cell: &self.cell,
            inner: Some(inner),
            model,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    cell: &'a rt::ModelRef,
    inner: Option<StdRwLockReadGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.model {
            rt::rw_unlock(self.cell, false);
        }
    }
}

/// RAII guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    cell: &'a rt::ModelRef,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.model {
            rt::rw_unlock(self.cell, true);
        }
    }
}

/// Model-aware atomic types with weak-memory semantics under the checker.
pub mod atomic {
    use super::rt;
    use std::sync::atomic as std_atomic;

    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_impl {
        ($name:ident, $std:ident, $prim:ty, $doc:literal) => {
            #[doc = $doc]
            pub struct $name {
                std: std_atomic::$std,
                cell: rt::ModelRef,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(value: $prim) -> $name {
                    $name {
                        std: std_atomic::$std::new(value),
                        cell: rt::ModelRef::new(),
                    }
                }

                fn init_bits(&self) -> u64 {
                    self.std.load(Ordering::Relaxed) as u64
                }

                /// Load the value with the given ordering.
                pub fn load(&self, order: Ordering) -> $prim {
                    match rt::atomic_load(&self.cell, || self.init_bits(), order) {
                        Some(bits) => bits as $prim,
                        None => self.std.load(order),
                    }
                }

                /// Store a value with the given ordering.
                pub fn store(&self, value: $prim, order: Ordering) {
                    if !rt::atomic_store(&self.cell, || self.init_bits(), value as u64, order) {
                        self.std.store(value, order);
                    }
                }

                /// Swap in a new value, returning the previous one.
                pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                    match rt::atomic_rmw(
                        &self.cell,
                        || self.init_bits(),
                        order,
                        order,
                        &mut |_| Some(value as u64),
                    ) {
                        Some((old, _)) => old as $prim,
                        None => self.std.swap(value, order),
                    }
                }

                /// Add to the value, returning the previous one.
                pub fn fetch_add(&self, delta: $prim, order: Ordering) -> $prim {
                    match rt::atomic_rmw(
                        &self.cell,
                        || self.init_bits(),
                        order,
                        order,
                        &mut |old| Some((old as $prim).wrapping_add(delta) as u64),
                    ) {
                        Some((old, _)) => old as $prim,
                        None => self.std.fetch_add(delta, order),
                    }
                }

                /// Subtract from the value, returning the previous one.
                pub fn fetch_sub(&self, delta: $prim, order: Ordering) -> $prim {
                    match rt::atomic_rmw(
                        &self.cell,
                        || self.init_bits(),
                        order,
                        order,
                        &mut |old| Some((old as $prim).wrapping_sub(delta) as u64),
                    ) {
                        Some((old, _)) => old as $prim,
                        None => self.std.fetch_sub(delta, order),
                    }
                }

                /// Compare-and-exchange: store `new` if the value is
                /// `current`, returning the previous value as Ok/Err.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match rt::atomic_rmw(
                        &self.cell,
                        || self.init_bits(),
                        success,
                        failure,
                        &mut |old| (old as $prim == current).then_some(new as u64),
                    ) {
                        Some((old, true)) => Ok(old as $prim),
                        Some((old, false)) => Err(old as $prim),
                        None => self.std.compare_exchange(current, new, success, failure),
                    }
                }

                /// Fetch-and-update: retries `f` until the CAS succeeds or
                /// `f` returns `None`.
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    mut f: F,
                ) -> Result<$prim, $prim>
                where
                    F: FnMut($prim) -> Option<$prim>,
                {
                    match rt::atomic_rmw(
                        &self.cell,
                        || self.init_bits(),
                        set_order,
                        fetch_order,
                        &mut |old| f(old as $prim).map(|v| v as u64),
                    ) {
                        Some((old, true)) => Ok(old as $prim),
                        Some((old, false)) => Err(old as $prim),
                        None => self.std.fetch_update(set_order, fetch_order, f),
                    }
                }

                /// Consume the atomic, returning the contained value.
                pub fn into_inner(self) -> $prim {
                    self.std.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> $name {
                    $name::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&self.load(Ordering::Relaxed))
                        .finish()
                }
            }
        };
    }

    atomic_impl!(AtomicU64, AtomicU64, u64, "Model-aware `AtomicU64`.");
    atomic_impl!(AtomicUsize, AtomicUsize, usize, "Model-aware `AtomicUsize`.");

    /// Model-aware `AtomicBool`.
    pub struct AtomicBool {
        std: std_atomic::AtomicBool,
        cell: rt::ModelRef,
    }

    impl AtomicBool {
        /// Create a new atomic bool.
        pub const fn new(value: bool) -> AtomicBool {
            AtomicBool {
                std: std_atomic::AtomicBool::new(value),
                cell: rt::ModelRef::new(),
            }
        }

        fn init_bits(&self) -> u64 {
            self.std.load(Ordering::Relaxed) as u64
        }

        /// Load the value with the given ordering.
        pub fn load(&self, order: Ordering) -> bool {
            match rt::atomic_load(&self.cell, || self.init_bits(), order) {
                Some(bits) => bits != 0,
                None => self.std.load(order),
            }
        }

        /// Store a value with the given ordering.
        pub fn store(&self, value: bool, order: Ordering) {
            if !rt::atomic_store(&self.cell, || self.init_bits(), value as u64, order) {
                self.std.store(value, order);
            }
        }

        /// Swap in a new value, returning the previous one.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            match rt::atomic_rmw(
                &self.cell,
                || self.init_bits(),
                order,
                order,
                &mut |_| Some(value as u64),
            ) {
                Some((old, _)) => old != 0,
                None => self.std.swap(value, order),
            }
        }

        /// Compare-and-exchange on the boolean.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            match rt::atomic_rmw(
                &self.cell,
                || self.init_bits(),
                success,
                failure,
                &mut |old| ((old != 0) == current).then_some(new as u64),
            ) {
                Some((old, true)) => Ok(old != 0),
                Some((old, false)) => Err(old != 0),
                None => self.std.compare_exchange(current, new, success, failure),
            }
        }

        /// Consume the atomic, returning the contained value.
        pub fn into_inner(self) -> bool {
            self.std.into_inner()
        }
    }

    impl Default for AtomicBool {
        fn default() -> AtomicBool {
            AtomicBool::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool")
                .field(&self.load(Ordering::Relaxed))
                .finish()
        }
    }
}
