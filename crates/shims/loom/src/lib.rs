//! Offline shim of [loom](https://github.com/tokio-rs/loom): a deterministic
//! concurrency checker for the API subset this workspace needs.
//!
//! [`model`] runs a closure under *every* (bounded) thread interleaving: the
//! threads it spawns through [`thread::spawn`] are real OS threads, but a
//! scheduler baton serializes them so exactly one runs at a time, and every
//! operation on the [`sync`] primitives is a schedule point where the
//! explorer may switch threads. Schedules are enumerated by DFS over the
//! recorded choice path; [`Builder::preemption_bound`] restricts the search
//! to schedules with at most N preemptions (exponentially smaller, and in
//! practice where the bugs are), and [`Builder::max_schedules`] caps the
//! total. Happens-before is tracked with vector clocks (`Synchronize` /
//! `VersionVec`, after upstream loom), so relaxed atomics really do expose
//! stale values: a load may observe any store not superseded by one the
//! loading thread has synchronized with, and the explorer branches on the
//! choice.
//!
//! Divergences from upstream loom, deliberate for this workspace:
//!
//! - [`model`] returns a [`Report`] with the explored-schedule count, so
//!   tests can assert coverage (`report.schedules >= 1000`).
//! - `sync::Mutex` / `sync::RwLock` mirror the `parking_lot` API (guards
//!   from `lock()` directly, no poisoning) — that is what production code
//!   here is written against.
//! - Outside a model run every primitive degrades to its `std::sync`
//!   behavior, so a whole binary can be compiled against the shim (via
//!   `workshare_common::sync`) and still run normally; only code inside
//!   `model` closures is explored.
//! - SeqCst is approximated: SeqCst loads observe the newest store in
//!   modification order (plus the global SeqCst clock join). This is sound
//!   for the flag/counter protocols checked here but does not model every
//!   exotic SC fence idiom.

mod rt;

pub mod sync;
pub mod thread;

pub use rt::{Builder, Report};

/// Check `f` under every (bounded) interleaving with the default
/// [`Builder`]; panics on the first failing schedule.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use super::sync::{Arc, Mutex, RwLock};
    use super::*;

    fn catches<F: Fn() + Send + Sync + 'static>(f: F) -> bool {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model(f))).is_err()
    }

    #[test]
    fn counts_two_thread_schedules_exhaustively() {
        // Two threads with two schedule-visible ops each (increment = one
        // RMW, join adds sync points): the space is small and must be
        // explored completely.
        let report = model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let t = {
                let a = Arc::clone(&a);
                thread::spawn(move || {
                    a.fetch_add(1, Ordering::AcqRel);
                })
            };
            a.fetch_add(1, Ordering::AcqRel);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::Acquire), 2);
        });
        assert!(report.complete, "tiny space must be exhausted");
        assert!(report.schedules >= 2, "got {}", report.schedules);
    }

    #[test]
    fn mutex_protects_a_plain_counter() {
        let report = model(|| {
            let c = Arc::new(Mutex::new(0u64));
            let ts: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let mut g = c.lock();
                        *g += 1;
                    })
                })
                .collect();
            for t in ts {
                t.join().unwrap();
            }
            assert_eq!(*c.lock(), 2);
        });
        assert!(report.complete);
    }

    #[test]
    fn rwlock_readers_see_published_writes() {
        model(|| {
            let v = Arc::new(RwLock::new(0u64));
            let t = {
                let v = Arc::clone(&v);
                thread::spawn(move || {
                    *v.write() = 7;
                })
            };
            let seen = *v.read();
            assert!(seen == 0 || seen == 7);
            t.join().unwrap();
            assert_eq!(*v.read(), 7);
        });
    }

    #[test]
    fn catches_unsynchronized_counter_race() {
        // Classic lost update: load + store instead of an RMW. The checker
        // must find the interleaving where both threads read 0.
        assert!(catches(|| {
            let c = Arc::new(AtomicU64::new(0));
            let ts: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let v = c.load(Ordering::Acquire);
                        c.store(v + 1, Ordering::Release);
                    })
                })
                .collect();
            for t in ts {
                t.join().unwrap();
            }
            assert_eq!(c.load(Ordering::Acquire), 2, "lost update");
        }));
    }

    #[test]
    fn catches_relaxed_message_passing() {
        // data is published Relaxed: the flag read may observe the flag
        // store without the data store — the checker must branch into the
        // stale-read schedule and fail the assert.
        assert!(catches(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let t = {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                thread::spawn(move || {
                    data.store(42, Ordering::Relaxed);
                    flag.store(true, Ordering::Relaxed);
                })
            };
            if flag.load(Ordering::Relaxed) {
                assert_eq!(data.load(Ordering::Relaxed), 42, "saw flag without data");
            }
            t.join().unwrap();
        }));
    }

    #[test]
    fn release_acquire_message_passing_holds() {
        // Same shape with Release/Acquire: must pass under every schedule.
        let report = model(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let t = {
                let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
                thread::spawn(move || {
                    data.store(42, Ordering::Relaxed);
                    flag.store(true, Ordering::Release);
                })
            };
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
        assert!(report.complete);
    }

    #[test]
    fn detects_deadlock() {
        assert!(catches(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
            };
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_gb, _ga));
            t.join().unwrap();
        }));
    }

    #[test]
    fn preemption_bound_caps_the_search() {
        let mut bounded = Builder::new();
        bounded.preemption_bound = Some(1);
        let count = |b: &Builder| {
            b.check(|| {
                let a = Arc::new(AtomicU64::new(0));
                let t = {
                    let a = Arc::clone(&a);
                    thread::spawn(move || {
                        for _ in 0..3 {
                            a.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                };
                for _ in 0..3 {
                    a.fetch_add(1, Ordering::Relaxed);
                }
                t.join().unwrap();
            })
            .schedules
        };
        let full = count(&Builder::new());
        let capped = count(&bounded);
        assert!(
            capped < full,
            "preemption bound must shrink the space ({capped} vs {full})"
        );
    }

    #[test]
    fn cas_rollback_pair_is_exact_under_contention() {
        // The engine's claim/rollback shape: claim a global slot, try the
        // tenant slot, roll back on failure. Under every schedule of three
        // claimants with cap 2 the counter must end balanced.
        let mut b = Builder::new();
        b.max_schedules = 10_000;
        let report = b.check(|| {
            let outstanding = Arc::new(AtomicU64::new(0));
            let ts: Vec<_> = (0..3)
                .map(|_| {
                    let o = Arc::clone(&outstanding);
                    thread::spawn(move || {
                        let claimed = o
                            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
                                (v < 2).then_some(v + 1)
                            })
                            .is_ok();
                        if claimed {
                            o.fetch_sub(1, Ordering::AcqRel);
                        }
                        claimed
                    })
                })
                .collect();
            let mut claims = 0;
            for t in ts {
                claims += t.join().unwrap() as u64;
            }
            assert!(claims >= 2, "cap 2 admits at least two of three");
            assert_eq!(outstanding.load(Ordering::Acquire), 0);
        });
        assert!(report.schedules >= 10);
    }

    #[test]
    fn fallback_outside_model_behaves_like_std() {
        // No model active: primitives must work as real ones across real
        // threads.
        let c = Arc::new(AtomicU64::new(0));
        let m = Arc::new(Mutex::new(Vec::new()));
        let ts: Vec<_> = (0..4)
            .map(|i| {
                let (c, m) = (Arc::clone(&c), Arc::clone(&m));
                thread::spawn(move || {
                    c.fetch_add(i, Ordering::AcqRel);
                    m.lock().push(i);
                })
            })
            .collect();
        for t in ts {
            t.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Acquire), 6);
        let mut v = m.lock().clone();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }
}
