//! The deterministic execution core: one OS thread per model thread, all
//! serialized through a scheduler baton so exactly one runs at a time, with
//! every synchronization operation a *schedule point* where the explorer may
//! switch threads. Schedules are enumerated by depth-first search over the
//! recorded choice path ([`Path`]), optionally restricted by a preemption
//! bound. Happens-before is tracked with vector clocks ([`VersionVec`] /
//! [`Synchronize`], after tokio-rs/loom), which drive the weak-memory
//! visibility rule for atomics: a load may observe any store not already
//! superseded by one the loading thread has synchronized with.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

pub(crate) use std::sync::atomic::Ordering;

/// Maximum model threads per execution (the vector-clock width).
pub(crate) const MAX_THREADS: usize = 8;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock: one logical-time slot per model thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct VersionVec {
    slots: [u64; MAX_THREADS],
}

impl VersionVec {
    pub(crate) fn join(&mut self, other: &VersionVec) {
        for (a, b) in self.slots.iter_mut().zip(other.slots.iter()) {
            *a = (*a).max(*b);
        }
    }

    pub(crate) fn increment(&mut self, tid: usize) {
        self.slots[tid] += 1;
    }

    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.slots[tid]
    }
}

/// The happens-before clock attached to one synchronization point (a lock,
/// an individual atomic store, or the global SeqCst order). Release-flavored
/// writes publish the writer's causality into it; acquire-flavored reads
/// join it into the reader's causality.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Synchronize {
    happens_before: VersionVec,
}

impl Synchronize {
    /// Acquire side: an acquire-or-stronger load joins the published clock
    /// into the loading thread's causality. Relaxed and Release loads
    /// establish nothing.
    fn sync_load(&self, causality: &mut VersionVec, order: Ordering) {
        match order {
            Ordering::Relaxed | Ordering::Release => {}
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                causality.join(&self.happens_before)
            }
            _ => causality.join(&self.happens_before),
        }
    }

    /// Release side: a release-or-stronger store publishes the storing
    /// thread's causality. Relaxed and Acquire stores publish nothing.
    fn sync_store(&mut self, causality: &VersionVec, order: Ordering) {
        match order {
            Ordering::Relaxed | Ordering::Acquire => {}
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => {
                self.happens_before.join(causality)
            }
            _ => self.happens_before.join(causality),
        }
    }
}

// ---------------------------------------------------------------------------
// The DFS choice path
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Choice {
    chosen: usize,
    total: usize,
}

/// The recorded sequence of scheduler/value choices of one execution. The
/// next execution replays the prefix and the DFS `step` advances the last
/// non-exhausted choice — bounded exhaustive exploration of schedule
/// prefixes.
#[derive(Default)]
pub(crate) struct Path {
    choices: Vec<Choice>,
    pos: usize,
}

impl Path {
    /// Take (replaying) or record the next choice among `total` options.
    fn branch(&mut self, total: usize) -> usize {
        debug_assert!(total >= 1);
        if total == 1 {
            // Forced choices are not recorded: they cannot be stepped and
            // would only deepen the DFS stack.
            return 0;
        }
        if self.pos < self.choices.len() {
            let c = self.choices[self.pos];
            self.pos += 1;
            // A mismatching `total` would mean the modeled closure is
            // non-deterministic; clamp defensively rather than index OOB.
            c.chosen.min(total - 1)
        } else {
            self.choices.push(Choice { chosen: 0, total });
            self.pos += 1;
            0
        }
    }

    /// Advance to the next unexplored schedule. `false` when the space is
    /// exhausted.
    pub(crate) fn step(&mut self) -> bool {
        self.choices.truncate(self.pos);
        self.pos = 0;
        while let Some(last) = self.choices.last_mut() {
            if last.chosen + 1 < last.total {
                last.chosen += 1;
                return true;
            }
            self.choices.pop();
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Per-execution state
// ---------------------------------------------------------------------------

/// What a non-runnable thread is waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Blocker {
    Lock(usize),
    Rw(usize),
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Blocker),
    Finished,
}

struct ThreadState {
    run: Run,
    causality: VersionVec,
}

/// One atomic store in an atomic object's modification order.
#[derive(Clone, Copy)]
pub(crate) struct StoreEntry {
    bits: u64,
    sync: Synchronize,
    /// Storing thread and its own clock at the store: a reader that has
    /// synchronized past this point must not read anything older.
    by: usize,
    clock: u64,
}

/// Model state of one synchronization object, indexed by its per-execution
/// object id.
pub(crate) enum ObjState {
    Lock {
        owner: Option<usize>,
        sync: Synchronize,
    },
    Rw {
        writer: Option<usize>,
        readers: Vec<usize>,
        /// Published by write-unlocks; acquired by readers and writers.
        write_sync: Synchronize,
        /// Published by read-unlocks; acquired by writers only (readers do
        /// not synchronize with each other).
        read_sync: Synchronize,
    },
    Atomic {
        stores: Vec<StoreEntry>,
        /// Per-thread coherence floor: index of the newest store each
        /// thread has read (reads may never go backwards).
        last_read: [usize; MAX_THREADS],
    },
}

impl ObjState {
    pub(crate) fn lock() -> ObjState {
        ObjState::Lock {
            owner: None,
            sync: Synchronize::default(),
        }
    }

    pub(crate) fn rwlock() -> ObjState {
        ObjState::Rw {
            writer: None,
            readers: Vec::new(),
            write_sync: Synchronize::default(),
            read_sync: Synchronize::default(),
        }
    }

    pub(crate) fn atomic(init: u64) -> ObjState {
        ObjState::Atomic {
            stores: vec![StoreEntry {
                bits: init,
                sync: Synchronize::default(),
                by: 0,
                clock: 0,
            }],
            last_read: [0; MAX_THREADS],
        }
    }
}

pub(crate) struct Failure {
    pub(crate) msg: String,
    pub(crate) payload: Option<Box<dyn Any + Send + 'static>>,
}

struct ExecState {
    threads: Vec<ThreadState>,
    active: usize,
    path: Path,
    preemptions: usize,
    bound: Option<usize>,
    objects: Vec<ObjState>,
    /// The single total SeqCst order: every SeqCst op acquires and releases
    /// through this clock.
    seq_cst: Synchronize,
    failure: Option<Failure>,
}

impl ExecState {
    fn runnable(&self, tid: usize) -> bool {
        matches!(self.threads[tid].run, Run::Runnable)
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.run, Run::Finished))
    }
}

/// One model execution: shared by its model threads and the controller.
pub(crate) struct Execution {
    pub(crate) id: u64,
    state: StdMutex<ExecState>,
    cv: Condvar,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

// ---------------------------------------------------------------------------
// Thread-local context and panic plumbing
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

/// Sentinel payload used to unwind model threads of a failed execution
/// without reporting a second panic.
pub(crate) struct Abort;

fn abort() -> ! {
    std::panic::panic_any(Abort)
}

/// Install (once, process-wide) a panic hook that silences panics on model
/// threads: the controller reports the first real failure itself, with the
/// schedule count attached, and sentinel unwinds are not failures at all.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if QUIET.with(|q| q.get()) {
                return;
            }
            prev(info);
        }));
    });
}

fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// How a synchronization op should behave on the calling thread.
enum Mode {
    /// No model execution on this thread: behave like the real primitive.
    Fallback,
    /// Model thread that is unwinding (sentinel or real panic): apply state
    /// changes best-effort but never schedule or panic — drop impls run in
    /// this mode.
    Degraded(Arc<Execution>, usize),
    /// Model thread in normal operation.
    Model(Arc<Execution>, usize),
}

fn mode() -> Mode {
    match current() {
        None => Mode::Fallback,
        Some((e, me)) => {
            if std::thread::panicking() {
                Mode::Degraded(e, me)
            } else {
                Mode::Model(e, me)
            }
        }
    }
}

fn panic_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

impl Execution {
    fn new(id: u64, path: Path, bound: Option<usize>) -> Execution {
        Execution {
            id,
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                path,
                preemptions: 0,
                bound,
                objects: Vec::new(),
                seq_cst: Synchronize::default(),
                failure: None,
            }),
            cv: Condvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fail(&self, st: &mut ExecState, msg: String, payload: Option<Box<dyn Any + Send>>) {
        if st.failure.is_none() {
            st.failure = Some(Failure { msg, payload });
        }
        self.cv.notify_all();
    }

    /// Block until this thread holds the baton (is active and runnable), or
    /// unwind if the execution has failed.
    fn wait_active<'a>(
        &'a self,
        me: usize,
        mut st: StdMutexGuard<'a, ExecState>,
    ) -> StdMutexGuard<'a, ExecState> {
        loop {
            if st.failure.is_some() {
                drop(st);
                if std::thread::panicking() {
                    // Reached from a drop during unwind; pretend-resume so
                    // the unwind can finish.
                    return self.lock();
                }
                abort();
            }
            if st.active == me && st.runnable(me) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A schedule point: the explorer picks the next thread to run among
    /// all runnable threads (restricted to the current one once the
    /// preemption budget is spent). Returns with `me` active again.
    fn schedule(&self, me: usize) {
        if std::thread::panicking() {
            return;
        }
        let mut st = self.lock();
        if st.failure.is_some() {
            drop(st);
            abort();
        }
        debug_assert!(st.runnable(me), "schedule() from a non-runnable thread");
        let mut options = Vec::with_capacity(st.threads.len());
        options.push(me);
        for t in 0..st.threads.len() {
            if t != me && st.runnable(t) {
                options.push(t);
            }
        }
        let bounded = st.bound.is_some_and(|b| st.preemptions >= b);
        let n = if bounded { 1 } else { options.len() };
        let idx = st.path.branch(n);
        let next = options[idx];
        if next != me {
            st.preemptions += 1;
            st.active = next;
            self.cv.notify_all();
            let st = self.wait_active(me, st);
            drop(st);
        }
    }

    /// Hand the baton off after `me` blocked (not a preemption: the switch
    /// is forced). Fails the execution with a deadlock report when no
    /// thread is runnable. Returns once `me` is runnable and active again.
    fn yield_blocked(&self, me: usize, mut st: StdMutexGuard<'_, ExecState>) {
        if std::thread::panicking() {
            return;
        }
        let options: Vec<usize> = (0..st.threads.len()).filter(|&t| st.runnable(t)).collect();
        if options.is_empty() {
            let blockers: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, ts)| match ts.run {
                    Run::Blocked(b) => Some(format!("thread {t} on {b:?}")),
                    _ => None,
                })
                .collect();
            self.fail(
                &mut st,
                format!("deadlock: every live thread is blocked ({})", blockers.join(", ")),
                None,
            );
            drop(st);
            abort();
        }
        let idx = st.path.branch(options.len());
        st.active = options[idx];
        self.cv.notify_all();
        let st = self.wait_active(me, st);
        drop(st);
    }

    /// An extra (non-scheduling) choice point, e.g. which visible store a
    /// relaxed load observes.
    fn choose(&self, st: &mut ExecState, total: usize) -> usize {
        st.path.branch(total)
    }

    fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = self.lock();
        let tid = st.threads.len();
        assert!(
            tid < MAX_THREADS,
            "loom shim supports at most {MAX_THREADS} threads per execution"
        );
        let causality = match parent {
            Some(p) => {
                // Spawn is a release/acquire edge from parent to child.
                st.threads[p].causality.increment(p);
                st.threads[p].causality
            }
            None => VersionVec::default(),
        };
        st.threads.push(ThreadState {
            run: Run::Runnable,
            causality,
        });
        tid
    }

    fn track_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(h);
    }

    /// First wait of a freshly spawned model thread, before any user code.
    fn wait_started(&self, me: usize) {
        let st = self.lock();
        let st = self.wait_active(me, st);
        drop(st);
    }

    /// Terminal bookkeeping of a model thread: records a real panic as the
    /// execution failure, wakes joiners, and hands the baton on (or
    /// declares completion / deadlock).
    fn thread_done(&self, me: usize, panic_payload: Option<Box<dyn Any + Send>>) {
        let mut st = self.lock();
        st.threads[me].causality.increment(me);
        st.threads[me].run = Run::Finished;
        for t in 0..st.threads.len() {
            if st.threads[t].run == Run::Blocked(Blocker::Join(me)) {
                st.threads[t].run = Run::Runnable;
            }
        }
        if let Some(p) = panic_payload {
            let msg = format!("model thread panicked: {}", panic_msg(p.as_ref()));
            self.fail(&mut st, msg, Some(p));
            return;
        }
        if st.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        let options: Vec<usize> = (0..st.threads.len()).filter(|&t| st.runnable(t)).collect();
        if options.is_empty() {
            if !st.all_finished() {
                self.fail(&mut st, "deadlock: finished thread leaves only blocked threads".into(), None);
            }
            self.cv.notify_all();
            return;
        }
        let idx = st.path.branch(options.len());
        st.active = options[idx];
        self.cv.notify_all();
    }

    /// Controller side: wait for every model thread to finish, then join
    /// the OS threads so the iteration is fully quiescent.
    fn wait_complete(&self) -> Option<Failure> {
        {
            let mut st = self.lock();
            while !st.all_finished() {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        let handles: Vec<_> = std::mem::take(&mut *self.os_handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        self.lock().failure.take()
    }

    fn take_path(&self) -> Path {
        std::mem::take(&mut self.lock().path)
    }
}

// ---------------------------------------------------------------------------
// Lazily registered object handles
// ---------------------------------------------------------------------------

/// Maps a shim object (which may outlive many executions) to its model
/// state in the current execution, registering it on first touch. Objects
/// created inside the modeled closure are registered from their pristine
/// initial value, which keeps executions deterministic; objects created
/// outside and mutated across iterations are the caller's responsibility.
pub(crate) struct ModelRef {
    slot: StdMutex<(u64, usize)>,
}

impl ModelRef {
    pub(crate) const fn new() -> ModelRef {
        ModelRef {
            slot: StdMutex::new((0, 0)),
        }
    }

    fn get(&self, exec: &Execution, init: impl FnOnce() -> ObjState) -> usize {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.0 != exec.id {
            let mut st = exec.lock();
            st.objects.push(init());
            *slot = (exec.id, st.objects.len() - 1);
        }
        slot.1
    }
}

// ---------------------------------------------------------------------------
// Model operations called by the sync shims
// ---------------------------------------------------------------------------

/// Model-mode mutex lock. `true` when the model protocol ran (the caller's
/// paired unlock must run it too); `false` in fallback/degraded mode.
pub(crate) fn mutex_lock(cell: &ModelRef) -> bool {
    let (exec, me) = match mode() {
        Mode::Model(e, me) => (e, me),
        _ => return false,
    };
    let obj = cell.get(&exec, ObjState::lock);
    loop {
        exec.schedule(me);
        let mut st = exec.lock();
        let ObjState::Lock { owner, sync } = &mut st.objects[obj] else {
            unreachable!("object {obj} is not a lock");
        };
        if owner.is_none() {
            *owner = Some(me);
            let hb = *sync;
            hb.sync_load(&mut st.threads[me].causality, Ordering::Acquire);
            return true;
        }
        st.threads[me].run = Run::Blocked(Blocker::Lock(obj));
        exec.yield_blocked(me, st);
    }
}

/// Model-mode mutex try_lock; `None` in fallback/degraded mode, else
/// whether the lock was taken.
pub(crate) fn mutex_try_lock(cell: &ModelRef) -> Option<bool> {
    let (exec, me) = match mode() {
        Mode::Model(e, me) => (e, me),
        _ => return None,
    };
    let obj = cell.get(&exec, ObjState::lock);
    exec.schedule(me);
    let mut st = exec.lock();
    let ObjState::Lock { owner, sync } = &mut st.objects[obj] else {
        unreachable!("object {obj} is not a lock");
    };
    if owner.is_none() {
        *owner = Some(me);
        let hb = *sync;
        hb.sync_load(&mut st.threads[me].causality, Ordering::Acquire);
        Some(true)
    } else {
        Some(false)
    }
}

pub(crate) fn mutex_unlock(cell: &ModelRef) {
    let (exec, me, degraded) = match mode() {
        Mode::Model(e, me) => (e, me, false),
        Mode::Degraded(e, me) => (e, me, true),
        Mode::Fallback => return,
    };
    let obj = cell.get(&exec, ObjState::lock);
    if !degraded {
        exec.schedule(me);
    }
    let mut st = exec.lock();
    let causality = st.threads[me].causality;
    let ObjState::Lock { owner, sync } = &mut st.objects[obj] else {
        unreachable!("object {obj} is not a lock");
    };
    *owner = None;
    sync.sync_store(&causality, Ordering::Release);
    for t in 0..st.threads.len() {
        if st.threads[t].run == Run::Blocked(Blocker::Lock(obj)) {
            st.threads[t].run = Run::Runnable;
        }
    }
}

/// Model-mode rwlock acquisition. `write` selects writer vs reader entry.
pub(crate) fn rw_lock(cell: &ModelRef, write: bool) -> bool {
    let (exec, me) = match mode() {
        Mode::Model(e, me) => (e, me),
        _ => return false,
    };
    let obj = cell.get(&exec, ObjState::rwlock);
    loop {
        exec.schedule(me);
        let mut st = exec.lock();
        let ObjState::Rw {
            writer,
            readers,
            write_sync,
            read_sync,
        } = &mut st.objects[obj]
        else {
            unreachable!("object {obj} is not a rwlock");
        };
        if write {
            if writer.is_none() && readers.is_empty() {
                *writer = Some(me);
                let (w, r) = (*write_sync, *read_sync);
                w.sync_load(&mut st.threads[me].causality, Ordering::Acquire);
                r.sync_load(&mut st.threads[me].causality, Ordering::Acquire);
                return true;
            }
        } else if writer.is_none() {
            readers.push(me);
            let w = *write_sync;
            w.sync_load(&mut st.threads[me].causality, Ordering::Acquire);
            return true;
        }
        st.threads[me].run = Run::Blocked(Blocker::Rw(obj));
        exec.yield_blocked(me, st);
    }
}

pub(crate) fn rw_unlock(cell: &ModelRef, write: bool) {
    let (exec, me, degraded) = match mode() {
        Mode::Model(e, me) => (e, me, false),
        Mode::Degraded(e, me) => (e, me, true),
        Mode::Fallback => return,
    };
    let obj = cell.get(&exec, ObjState::rwlock);
    if !degraded {
        exec.schedule(me);
    }
    let mut st = exec.lock();
    let causality = st.threads[me].causality;
    let ObjState::Rw {
        writer,
        readers,
        write_sync,
        read_sync,
    } = &mut st.objects[obj]
    else {
        unreachable!("object {obj} is not a rwlock");
    };
    if write {
        *writer = None;
        write_sync.sync_store(&causality, Ordering::Release);
    } else {
        if let Some(i) = readers.iter().position(|&r| r == me) {
            readers.swap_remove(i);
        }
        read_sync.sync_store(&causality, Ordering::Release);
    }
    for t in 0..st.threads.len() {
        if st.threads[t].run == Run::Blocked(Blocker::Rw(obj)) {
            st.threads[t].run = Run::Runnable;
        }
    }
}

/// Model-mode atomic load; `None` in fallback/degraded mode. The returned
/// value is one of the stores visible to this thread under the
/// happens-before/coherence rule, chosen by the explorer (newest first).
pub(crate) fn atomic_load(
    cell: &ModelRef,
    init: impl FnOnce() -> u64,
    order: Ordering,
) -> Option<u64> {
    let (exec, me) = match mode() {
        Mode::Model(e, me) => (e, me),
        _ => return None,
    };
    let obj = cell.get(&exec, || ObjState::atomic(init()));
    exec.schedule(me);
    let mut st = exec.lock();
    let causality = st.threads[me].causality;
    let (floor, len) = {
        let ObjState::Atomic { stores, last_read } = &st.objects[obj] else {
            unreachable!("object {obj} is not an atomic");
        };
        // The newest store this thread is already aware of, through its own
        // reads (coherence) or through happens-before: nothing older may be
        // observed.
        let mut floor = last_read[me];
        for (j, s) in stores.iter().enumerate().skip(floor + 1) {
            if causality.get(s.by) >= s.clock {
                floor = j;
            }
        }
        (floor, stores.len())
    };
    // SeqCst loads participate in the single total order: observe the
    // newest store (a sound over-approximation of C++ SC semantics for the
    // flag/counter patterns this shim targets).
    let idx = if order == Ordering::SeqCst || floor + 1 == len {
        len - 1
    } else {
        let pick = exec.choose(&mut st, len - floor);
        len - 1 - pick
    };
    let ObjState::Atomic { stores, last_read } = &mut st.objects[obj] else {
        unreachable!();
    };
    let store = stores[idx];
    last_read[me] = last_read[me].max(idx);
    store
        .sync
        .sync_load(&mut st.threads[me].causality, order);
    if order == Ordering::SeqCst {
        let g = st.seq_cst;
        g.sync_load(&mut st.threads[me].causality, Ordering::Acquire);
    }
    Some(store.bits)
}

/// Model-mode atomic store; `false` in fallback/degraded mode.
pub(crate) fn atomic_store(
    cell: &ModelRef,
    init: impl FnOnce() -> u64,
    bits: u64,
    order: Ordering,
) -> bool {
    let (exec, me, degraded) = match mode() {
        Mode::Model(e, me) => (e, me, false),
        Mode::Degraded(e, me) => (e, me, true),
        Mode::Fallback => return false,
    };
    let obj = cell.get(&exec, || ObjState::atomic(init()));
    if !degraded {
        exec.schedule(me);
    }
    let mut st = exec.lock();
    st.threads[me].causality.increment(me);
    let causality = st.threads[me].causality;
    // A plain store starts a fresh release sequence: it does NOT carry the
    // clocks of earlier stores it overwrites.
    let mut sync = Synchronize::default();
    sync.sync_store(&causality, order);
    if order == Ordering::SeqCst {
        st.seq_cst.sync_store(&causality, Ordering::Release);
    }
    let clock = causality.get(me);
    let ObjState::Atomic { stores, last_read } = &mut st.objects[obj] else {
        unreachable!("object {obj} is not an atomic");
    };
    stores.push(StoreEntry {
        bits,
        sync,
        by: me,
        clock,
    });
    last_read[me] = stores.len() - 1;
    true
}

/// Model-mode read-modify-write; `None` in fallback/degraded mode, else
/// `(previous, wrote)`. RMWs always read the newest store (atomicity) and a
/// successful write *extends* that store's release sequence (its clock is
/// carried forward), per the C++ model.
pub(crate) fn atomic_rmw(
    cell: &ModelRef,
    init: impl FnOnce() -> u64,
    success: Ordering,
    failure: Ordering,
    f: &mut dyn FnMut(u64) -> Option<u64>,
) -> Option<(u64, bool)> {
    let (exec, me, degraded) = match mode() {
        Mode::Model(e, me) => (e, me, false),
        Mode::Degraded(e, me) => (e, me, true),
        Mode::Fallback => return None,
    };
    let obj = cell.get(&exec, || ObjState::atomic(init()));
    if !degraded {
        exec.schedule(me);
    }
    let mut st = exec.lock();
    let (old, prior_sync, last) = {
        let ObjState::Atomic { stores, .. } = &st.objects[obj] else {
            unreachable!("object {obj} is not an atomic");
        };
        let last = stores.len() - 1;
        (stores[last].bits, stores[last].sync, last)
    };
    match f(old) {
        None => {
            prior_sync.sync_load(&mut st.threads[me].causality, failure);
            if failure == Ordering::SeqCst {
                let g = st.seq_cst;
                g.sync_load(&mut st.threads[me].causality, Ordering::Acquire);
            }
            let ObjState::Atomic { last_read, .. } = &mut st.objects[obj] else {
                unreachable!();
            };
            last_read[me] = last_read[me].max(last);
            Some((old, false))
        }
        Some(new) => {
            prior_sync.sync_load(&mut st.threads[me].causality, success);
            st.threads[me].causality.increment(me);
            let causality = st.threads[me].causality;
            let mut sync = prior_sync;
            sync.sync_store(&causality, success);
            if success == Ordering::SeqCst {
                let g = st.seq_cst;
                g.sync_load(&mut st.threads[me].causality, Ordering::Acquire);
                st.seq_cst.sync_store(&causality, Ordering::Release);
            }
            let clock = causality.get(me);
            let ObjState::Atomic { stores, last_read } = &mut st.objects[obj] else {
                unreachable!();
            };
            stores.push(StoreEntry {
                bits: new,
                sync,
                by: me,
                clock,
            });
            last_read[me] = stores.len() - 1;
            Some((old, true))
        }
    }
}

/// A plain scheduling point with no memory effect (`thread::yield_now`).
pub(crate) fn yield_point() -> bool {
    match mode() {
        Mode::Model(exec, me) => {
            exec.schedule(me);
            true
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

pub(crate) enum JoinInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        exec: Arc<Execution>,
        tid: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
}

/// Spawn a model (or fallback) thread running `f`.
pub(crate) fn spawn_thread<F, T>(f: F) -> JoinInner<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = match mode() {
        Mode::Model(e, me) => (e, me),
        _ => return JoinInner::Std(std::thread::spawn(f)),
    };
    let tid = exec.register_thread(Some(me));
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let os = {
        let exec = Arc::clone(&exec);
        let result = Arc::clone(&result);
        std::thread::Builder::new()
            .name(format!("loom-{}-{tid}", exec.id))
            .spawn(move || run_model_thread(exec, tid, result, f))
            .expect("spawn model thread")
    };
    exec.track_os_handle(os);
    // Spawning is itself a schedule point: the child may run immediately.
    exec.schedule(me);
    JoinInner::Model { exec, tid, result }
}

fn run_model_thread<F, T>(
    exec: Arc<Execution>,
    tid: usize,
    result: Arc<StdMutex<Option<T>>>,
    f: F,
) where
    F: FnOnce() -> T,
{
    QUIET.with(|q| q.set(true));
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    let out = catch_unwind(AssertUnwindSafe(|| {
        exec.wait_started(tid);
        f()
    }));
    match out {
        Ok(v) => {
            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            exec.thread_done(tid, None);
        }
        Err(p) if p.is::<Abort>() => exec.thread_done(tid, None),
        Err(p) => exec.thread_done(tid, Some(p)),
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
    QUIET.with(|q| q.set(false));
}

/// Join a model thread: blocks (in model time) until it finishes, and
/// establishes the join happens-before edge.
pub(crate) fn join_thread<T>(inner: JoinInner<T>) -> std::thread::Result<T> {
    match inner {
        JoinInner::Std(h) => h.join(),
        JoinInner::Model { exec, tid, result } => {
            if let Mode::Model(e, me) = mode() {
                debug_assert!(Arc::ptr_eq(&e, &exec), "join across executions");
                loop {
                    e.schedule(me);
                    let mut st = e.lock();
                    if matches!(st.threads[tid].run, Run::Finished) {
                        let c = st.threads[tid].causality;
                        st.threads[me].causality.join(&c);
                        break;
                    }
                    st.threads[me].run = Run::Blocked(Blocker::Join(tid));
                    e.yield_blocked(me, st);
                }
            }
            match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                Some(v) => Ok(v),
                None => Err(Box::new(Abort)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The explorer driver
// ---------------------------------------------------------------------------

static NEXT_EXEC_ID: StdAtomicU64 = StdAtomicU64::new(1);

/// Outcome of a [`crate::model`] run: how much of the schedule space was
/// explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules (complete executions) explored.
    pub schedules: u64,
    /// Whether the (bounded) schedule space was exhausted, as opposed to
    /// stopping at [`crate::Builder::max_schedules`].
    pub complete: bool,
}

/// Exploration configuration; see [`crate::model`] for the defaults.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum context switches at points where the running thread could
    /// have continued (Musuvathi/Qadeer-style preemption bounding). `None`
    /// explores every interleaving.
    pub preemption_bound: Option<usize>,
    /// Stop after this many schedules even if the space is not exhausted.
    pub max_schedules: u64,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            preemption_bound: None,
            max_schedules: 100_000,
        }
    }
}

impl Builder {
    /// Construct the default builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Run `f` under every (bounded) schedule; panics on the first failing
    /// one with the schedule count attached.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_hook();
        let f = Arc::new(f);
        let mut path = Path::default();
        let mut schedules: u64 = 0;
        loop {
            let exec = Arc::new(Execution::new(
                NEXT_EXEC_ID.fetch_add(1, StdOrdering::Relaxed),
                path,
                self.preemption_bound,
            ));
            let root = exec.register_thread(None);
            debug_assert_eq!(root, 0);
            {
                let exec2 = Arc::clone(&exec);
                let f = Arc::clone(&f);
                let os = std::thread::Builder::new()
                    .name(format!("loom-{}-root", exec.id))
                    .spawn(move || {
                        run_model_thread(exec2, root, Arc::new(StdMutex::new(None)), move || f())
                    })
                    .expect("spawn model root thread");
                exec.track_os_handle(os);
            }
            let failure = exec.wait_complete();
            schedules += 1;
            if let Some(fail) = failure {
                let msg = format!(
                    "deterministic model check failed on schedule #{schedules}: {}",
                    fail.msg
                );
                match fail.payload {
                    Some(p) => {
                        eprintln!("{msg}");
                        std::panic::resume_unwind(p);
                    }
                    None => panic!("{msg}"),
                }
            }
            path = exec.take_path();
            if !path.step() {
                return Report {
                    schedules,
                    complete: true,
                };
            }
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    complete: false,
                };
            }
        }
    }
}
