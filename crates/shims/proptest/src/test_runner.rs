//! Deterministic case runner plumbing for the [`proptest!`](crate::proptest)
//! macro expansion: per-case RNGs, and the failing-seed persistence that
//! stands in for real proptest's `proptest-regressions/` files.

use std::io::Write as _;
use std::path::PathBuf;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies: deterministic per (test name, case index),
/// overridable globally via the `PROPTEST_SEED` env var for replay.
pub struct TestRng {
    inner: StdRng,
    seed: u64,
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_CAFE_F00D_0001);
        // FNV-1a over the test name keeps distinct tests on distinct streams.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(base ^ h ^ ((case as u64) << 32))
    }

    /// RNG replaying an exact persisted seed: the same stream
    /// [`TestRng::for_case`] produced when it failed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this case ran with (printed on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value below `bound` (`bound == 0` yields 0).
    pub fn bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform size drawn from a half-open range (empty range yields start).
    pub fn usize_in(&mut self, r: std::ops::Range<usize>) -> usize {
        if r.start >= r.end {
            return r.start;
        }
        r.start + self.bounded((r.end - r.start) as u64) as usize
    }
}

/// Directory the failing seeds persist to: `$PROPTEST_REGRESSIONS` when
/// set (tests use this; CI could point it at a cache), else
/// `proptest-regressions/` under the running crate's manifest — the same
/// location real proptest uses, so the files ride along in the repo and a
/// failure found once replays everywhere.
fn regressions_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("PROPTEST_REGRESSIONS") {
        return PathBuf::from(dir);
    }
    let base = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    PathBuf::from(base).join("proptest-regressions")
}

/// One seed file per test: `<dir>/<test_name>.txt`, lines of `cc 0x<seed>`
/// (comments start with `#`), mirroring real proptest's `cc <digest>` rows.
fn seed_file(test_name: &str) -> PathBuf {
    regressions_dir().join(format!("{test_name}.txt"))
}

/// Seeds persisted by earlier failing runs of `test_name`, in file order.
/// The [`proptest!`](crate::proptest) expansion replays these **before**
/// generating fresh cases, so a once-caught regression is re-checked first
/// on every subsequent run.
pub fn persisted_seeds(test_name: &str) -> Vec<u64> {
    let Ok(contents) = std::fs::read_to_string(seed_file(test_name)) else {
        return Vec::new();
    };
    contents
        .lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            u64::from_str_radix(rest.trim().trim_start_matches("0x"), 16).ok()
        })
        .collect()
}

/// Append `seed` to `test_name`'s regression file (deduplicated; the file
/// and directory are created on first failure). Best-effort: persistence
/// failing must not mask the test failure itself.
pub(crate) fn persist_failure(test_name: &str, seed: u64) {
    if persisted_seeds(test_name).contains(&seed) {
        return;
    }
    let path = seed_file(test_name);
    let _ = std::fs::create_dir_all(regressions_dir());
    let fresh = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
        return;
    };
    if fresh {
        let _ = writeln!(
            f,
            "# Seeds for failing cases of `{test_name}` (proptest shim). Each\n\
             # line is replayed before fresh cases on every run; delete the\n\
             # line once the regression is fixed and re-verified."
        );
    }
    let _ = writeln!(f, "cc {seed:#x}");
}

/// Prints replay context if a case body panics, and persists the failing
/// seed to `proptest-regressions/` so the next run replays it first (no
/// shrinking: the seed is the whole replay handle).
pub struct CaseGuard {
    test_name: &'static str,
    /// Generated case index; `None` when replaying a persisted seed (a
    /// replay failure is already persisted — don't duplicate it).
    case: Option<u32>,
    seed: u64,
    passed: bool,
}

impl CaseGuard {
    /// Arm the guard for one generated case.
    pub fn new(test_name: &'static str, case: u32, seed: u64) -> CaseGuard {
        CaseGuard {
            test_name,
            case: Some(case),
            seed,
            passed: false,
        }
    }

    /// Arm the guard for the replay of a persisted seed.
    pub fn replay(test_name: &'static str, seed: u64) -> CaseGuard {
        CaseGuard {
            test_name,
            case: None,
            seed,
            passed: false,
        }
    }

    /// Disarm: the case body completed without panicking.
    pub fn passed(mut self) {
        self.passed = true;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.passed || !std::thread::panicking() {
            return;
        }
        match self.case {
            Some(case) => {
                persist_failure(self.test_name, self.seed);
                eprintln!(
                    "proptest shim: test `{}` failed at case {case} (seed {:#x}); \
                     seed persisted to proptest-regressions/ and will replay first",
                    self.test_name, self.seed
                );
            }
            None => eprintln!(
                "proptest shim: test `{}` still failing on persisted seed {:#x} \
                 (see proptest-regressions/)",
                self.test_name, self.seed
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single test covering the whole persistence lifecycle (one test so
    /// the `PROPTEST_REGRESSIONS` env override is not raced by a sibling).
    #[test]
    fn failing_seeds_persist_dedupe_and_replay() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-regr-{}", std::process::id()));
        std::env::set_var("PROPTEST_REGRESSIONS", &dir);

        assert!(persisted_seeds("lifecycle_test").is_empty());

        // A failing generated case persists its seed via the guard's drop
        // during unwinding…
        let boom = std::panic::catch_unwind(|| {
            let _guard = CaseGuard::new("lifecycle_test", 3, 0xABCD);
            panic!("injected case failure");
        });
        assert!(boom.is_err());
        assert_eq!(persisted_seeds("lifecycle_test"), vec![0xABCD]);

        // …deduplicated on repeat failures, ordered on new ones…
        persist_failure("lifecycle_test", 0xABCD);
        persist_failure("lifecycle_test", 0x1234);
        assert_eq!(persisted_seeds("lifecycle_test"), vec![0xABCD, 0x1234]);

        // …a failing *replay* does not append a duplicate…
        let again = std::panic::catch_unwind(|| {
            let _guard = CaseGuard::replay("lifecycle_test", 0xABCD);
            panic!("still failing");
        });
        assert!(again.is_err());
        assert_eq!(persisted_seeds("lifecycle_test"), vec![0xABCD, 0x1234]);

        // …and the replay RNG reproduces the failing stream exactly.
        let mut replayed = TestRng::from_seed(0xABCD);
        let mut original = TestRng::from_seed(0xABCD);
        assert_eq!(replayed.next_u64(), original.next_u64());
        assert_eq!(replayed.seed(), 0xABCD);

        std::env::remove_var("PROPTEST_REGRESSIONS");
        let _ = std::fs::remove_dir_all(dir);
    }
}
