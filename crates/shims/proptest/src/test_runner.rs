//! Deterministic case runner plumbing for the [`proptest!`](crate::proptest)
//! macro expansion.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies: deterministic per (test name, case index),
/// overridable globally via the `PROPTEST_SEED` env var for replay.
pub struct TestRng {
    inner: StdRng,
    seed: u64,
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_CAFE_F00D_0001);
        // FNV-1a over the test name keeps distinct tests on distinct streams.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = base ^ h ^ ((case as u64) << 32);
        TestRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this case ran with (printed on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value below `bound` (`bound == 0` yields 0).
    pub fn bounded(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform size drawn from a half-open range (empty range yields start).
    pub fn usize_in(&mut self, r: std::ops::Range<usize>) -> usize {
        if r.start >= r.end {
            return r.start;
        }
        r.start + self.bounded((r.end - r.start) as u64) as usize
    }
}

/// Prints replay context if a case body panics (no shrinking: the case
/// number and seed are the replay handle).
pub struct CaseGuard {
    test_name: &'static str,
    case: u32,
    seed: u64,
    passed: bool,
}

impl CaseGuard {
    /// Arm the guard for one case.
    pub fn new(test_name: &'static str, case: u32, seed: u64) -> CaseGuard {
        CaseGuard {
            test_name,
            case,
            seed,
            passed: false,
        }
    }

    /// Disarm: the case body completed without panicking.
    pub fn passed(mut self) {
        self.passed = true;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if !self.passed && std::thread::panicking() {
            eprintln!(
                "proptest shim: test `{}` failed at case {} (seed {:#x}); \
                 set PROPTEST_SEED to replay",
                self.test_name, self.case, self.seed
            );
        }
    }
}
