//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values of one type. Object-safe so `prop_oneof!` can mix
/// differently-shaped strategies behind `Box<dyn Strategy<Value = T>>`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy, erasing its concrete type (`prop_oneof!` plumbing).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T`.
pub struct Any<T>(PhantomData<T>);

/// `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded(span as u64) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}
