//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), range / tuple /
//! `Just` / `any` / `prop_oneof!` strategies, `prop_map`, the
//! `collection::{vec, btree_set}` combinators, and `prop_assert*` macros.
//!
//! Differences from real proptest, by design: cases are generated from a
//! deterministic per-case seed (override with `PROPTEST_SEED`), and there is
//! **no shrinking** — a failing case panics with the case number and seed.
//! As in real proptest, failing seeds persist to `proptest-regressions/`
//! (one `<test>.txt` of `cc 0x<seed>` lines under the crate manifest, or
//! `$PROPTEST_REGRESSIONS`) and are replayed *before* fresh cases on every
//! subsequent run, so a caught regression stays caught until fixed.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies over containers.
pub mod collection {
    use std::collections::BTreeSet;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with *target* sizes drawn from `size`
    /// (duplicate draws may produce smaller sets, as in real proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy>(
        element: S,
        size: std::ops::Range<usize>,
    ) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rng.usize_in(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::bool` — boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `proptest::prelude` — the glob import test files use.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Pick uniformly among several strategies with one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::boxed($strategy) ),+
        ])
    };
}

/// Assert inside a property (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `#[test] fn name(pat in strategy, …) { … }`
/// becomes a normal test that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $pat:pat_param in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // Replay seeds persisted by earlier failing runs first: a
            // once-caught regression is re-checked before any fresh case.
            for seed in $crate::test_runner::persisted_seeds(stringify!($name)) {
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                $( let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                let guard = $crate::test_runner::CaseGuard::replay(stringify!($name), seed);
                $body
                guard.passed();
            }
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                let seed = rng.seed();
                $( let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )+
                let guard = $crate::test_runner::CaseGuard::new(stringify!($name), case, seed);
                $body
                guard.passed();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 3usize..10, (a, b) in (0i64..5, 10i64..=12)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..5).contains(&a));
            prop_assert!((10..=12).contains(&b));
        }

        #[test]
        fn collections_and_maps(
            v in crate::collection::vec(0u32..7, 2..6),
            s in crate::collection::btree_set(0usize..100, 0..10),
            y in any::<u64>().prop_map(|u| u as u128 * 2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 7));
            prop_assert!(s.len() < 10);
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn oneof_and_just(choice in prop_oneof![Just(1u8), Just(2), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(choice == 1 || choice == 2 || choice == 5 || choice == 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("deterministic", 3);
        let mut b = TestRng::for_case("deterministic", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
