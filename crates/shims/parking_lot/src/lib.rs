//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal API-compatible subset of `parking_lot` layered over `std::sync`:
//! non-poisoning [`Mutex`] / [`RwLock`] guards returned straight from
//! `lock()` / `read()` / `write()`, and a [`Condvar`] whose `wait` takes the
//! guard by `&mut`. Poisoned std locks are transparently recovered — a
//! panicking vthread must not wedge the rest of the simulated machine.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// Mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; the slot is `Option` so [`Condvar::wait`] can
/// temporarily hand the inner std guard back to the OS wait primitive.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex holding `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock and park until notified; the lock
    /// is re-acquired before returning (parking_lot signature: guard by
    /// `&mut`, not by value).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock holding `t`.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
