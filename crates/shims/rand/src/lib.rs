//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges — on top of xoshiro256++ seeded via splitmix64. The generator
//! is fully deterministic for a given seed, which is all the data generators
//! and workload samplers need (they only compare engines against each other
//! on identical inputs).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling API (the subset of `rand::Rng` in use).
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform sampling below a bound without modulo bias (Lemire's method would
/// be overkill here; 64-bit multiply-shift keeps bias below 2^-64 relative).
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable_in_small_range() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.gen_range(1..=7usize) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
