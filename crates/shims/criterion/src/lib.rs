//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this workspace ships a
//! small API-compatible harness covering what the benches use:
//! `benchmark_group`, `bench_with_input` / `bench_function`, `Bencher::iter`
//! and `iter_custom`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark warms up, collects
//! `sample_size` wall-clock samples, and prints one JSON line per benchmark
//! (`{"bench": …, "median_ns": …}`) so results can be captured and diffed.

use std::time::{Duration, Instant};

/// Re-export used by generated code and by benches that spell
/// `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(1500),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// No-op (plots are never produced); kept for API compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Override the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let g = self.benchmark_group(id.clone());
        g.run_one(&id, &mut f);
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of wall-clock samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmark `f` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = id.id.clone();
        self.run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmark a function without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_bench_id();
        self.run_one(&full, &mut f);
        self
    }

    /// Close the group (report is emitted per-benchmark; nothing to do).
    pub fn finish(self) {}

    fn run_one(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Calibration: find an iteration count whose sample takes roughly
        // measurement_time / sample_size.
        let per_sample = self.measurement_time.div_f64(self.sample_size as f64);
        loop {
            f(&mut b);
            if b.elapsed >= per_sample || b.elapsed >= Duration::from_millis(200) {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16.0
            } else {
                (per_sample.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.2, 16.0)
            };
            b.iters = ((b.iters as f64 * grow).ceil() as u64).max(b.iters + 1);
        }
        // Warm-up.
        let warm_until = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_until {
            f(&mut b);
        }
        // Sampling.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        per_iter.sort_by(|a, c| a.total_cmp(c));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter.first().copied().unwrap_or(0.0);
        let max = per_iter.last().copied().unwrap_or(0.0);
        println!(
            "{{\"bench\":\"{}/{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"iters\":{},\"samples\":{}}}",
            self.name, id, median, min, max, b.iters, per_iter.len()
        );
    }
}

/// Accepts either a `BenchmarkId` or a plain string as benchmark name.
pub trait IntoBenchId {
    /// Render to the printed identifier.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// The routine performs its own timing over `iters` iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Define the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim_smoke");
        g.measurement_time(Duration::from_millis(30));
        g.warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_with_input(BenchmarkId::new("count", 4), &4u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim_custom");
        g.measurement_time(Duration::from_millis(10));
        g.warm_up_time(Duration::from_millis(1));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &(), |b, _| {
            b.iter_custom(|iters| Duration::from_nanos(iters * 10))
        });
        g.finish();
    }
}
