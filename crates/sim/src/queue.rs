//! Bounded multi-producer / multi-consumer queue in virtual time.
//!
//! [`SimQueue`] is the workhorse channel of the engine: stage work queues,
//! push-based FIFO exchanges and the CJOIN pipeline are all built on it.
//! Capacity-bounded pushes model the paper's flow control ("a parent packet
//! may need to wait for incoming pages of a child and, conversely, a child
//! packet may wait for a parent packet to consume its pages").

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::machine::Machine;
use crate::waitset::WaitSet;

/// Error returned when pushing to a closed queue; carries the item back.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueClosed<T>(pub T);

struct QState<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct QShared<T> {
    state: Mutex<QState<T>>,
    not_empty: WaitSet,
    not_full: WaitSet,
    cap: usize,
}

/// Bounded MPMC queue whose blocking operations suspend vthreads in virtual
/// time. Cheap to clone (all clones address the same queue).
pub struct SimQueue<T> {
    shared: Arc<QShared<T>>,
}

impl<T> Clone for SimQueue<T> {
    fn clone(&self) -> Self {
        SimQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for SimQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.shared.state.lock();
        f.debug_struct("SimQueue")
            .field("len", &s.items.len())
            .field("cap", &self.shared.cap)
            .field("closed", &s.closed)
            .finish()
    }
}

impl<T: Send + 'static> SimQueue<T> {
    /// Create a queue with capacity `cap` (use [`SimQueue::unbounded`] for no
    /// limit). `cap` must be at least 1.
    pub fn bounded(machine: &Machine, cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be >= 1");
        SimQueue {
            shared: Arc::new(QShared {
                state: Mutex::new(QState {
                    items: VecDeque::new(),
                    closed: false,
                }),
                not_empty: WaitSet::new(machine),
                not_full: WaitSet::new(machine),
                cap,
            }),
        }
    }

    /// Create a queue without a capacity bound.
    pub fn unbounded(machine: &Machine) -> Self {
        Self::bounded(machine, usize::MAX)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.shared.state.lock().items.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().closed
    }

    /// Close the queue: pending and future `pop`s drain remaining items then
    /// return `None`; future `push`es fail.
    pub fn close(&self) {
        self.shared.state.lock().closed = true;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Push, blocking in virtual time while the queue is full.
    pub fn push(&self, item: T) -> Result<(), QueueClosed<T>> {
        let mut item = Some(item);
        let shared = &self.shared;
        shared.not_full.wait_for(|| {
            let mut s = shared.state.lock();
            if s.closed {
                return Some(Err(QueueClosed(item.take().expect("item consumed twice"))));
            }
            if s.items.len() < shared.cap {
                s.items.push_back(item.take().expect("item consumed twice"));
                drop(s);
                shared.not_empty.notify_all();
                return Some(Ok(()));
            }
            None
        })
    }

    /// Push without blocking; returns the item back if the queue is full.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.shared.state.lock();
        if s.closed || s.items.len() >= self.shared.cap {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.shared.not_empty.notify_all();
        Ok(())
    }

    /// Pop, blocking in virtual time while the queue is empty. Returns `None`
    /// once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let shared = &self.shared;
        shared.not_empty.wait_for(|| {
            let mut s = shared.state.lock();
            if let Some(x) = s.items.pop_front() {
                drop(s);
                shared.not_full.notify_all();
                return Some(Some(x));
            }
            if s.closed {
                return Some(None);
            }
            None
        })
    }

    /// Pop without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut s = self.shared.state.lock();
        let x = s.items.pop_front();
        if x.is_some() {
            drop(s);
            self.shared.not_full.notify_all();
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostKind, Machine, MachineConfig};

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 2,
            ..Default::default()
        })
    }

    #[test]
    fn fifo_order_single_producer_consumer() {
        let m = machine();
        let q = SimQueue::bounded(&m, 4);
        let qp = q.clone();
        let p = m.spawn("prod", move |ctx| {
            for i in 0..100 {
                ctx.charge(CostKind::Misc, 10.0);
                qp.push(i).unwrap();
            }
            qp.close();
        });
        let qc = q.clone();
        let c = m.spawn("cons", move |ctx| {
            let mut seen = Vec::new();
            while let Some(x) = qc.pop() {
                ctx.charge(CostKind::Misc, 10.0);
                seen.push(x);
            }
            seen
        });
        p.join().unwrap();
        let seen = c.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_capacity_blocks_producer() {
        let m = machine();
        let q = SimQueue::bounded(&m, 2);
        let qp = q.clone();
        let p = m.spawn("prod", move |_| {
            for i in 0..10 {
                qp.push(i).unwrap();
            }
            qp.close();
        });
        let qc = q.clone();
        let c = m.spawn("cons", move |ctx| {
            let mut n = 0;
            while let Some(_x) = qc.pop() {
                // Consumer is slower; producer must block at cap 2.
                ctx.charge(CostKind::Misc, 1000.0);
                n += 1;
            }
            n
        });
        p.join().unwrap();
        assert_eq!(c.join().unwrap(), 10);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let m = machine();
        let q: SimQueue<u32> = SimQueue::bounded(&m, 2);
        let qc = q.clone();
        let c = m.spawn("cons", move |_| qc.pop());
        let qx = q.clone();
        let closer = m.spawn("closer", move |ctx| {
            ctx.sleep(1e6);
            qx.close();
        });
        closer.join().unwrap();
        assert_eq!(c.join().unwrap(), None);
    }

    #[test]
    fn push_after_close_returns_item() {
        let m = machine();
        let q: SimQueue<u32> = SimQueue::bounded(&m, 2);
        q.close();
        let h = m.spawn("p", move |_| q.push(9));
        assert_eq!(h.join().unwrap(), Err(QueueClosed(9)));
    }

    #[test]
    fn close_drains_remaining_items() {
        let m = machine();
        let q = SimQueue::bounded(&m, 8);
        let qp = q.clone();
        m.spawn("p", move |_| {
            qp.push(1).unwrap();
            qp.push(2).unwrap();
            qp.close();
        })
        .join()
        .unwrap();
        let qc = q.clone();
        let c = m.spawn("c", move |_| {
            let a = qc.pop();
            let b = qc.pop();
            let end = qc.pop();
            (a, b, end)
        });
        assert_eq!(c.join().unwrap(), (Some(1), Some(2), None));
    }

    #[test]
    fn mpmc_delivers_every_item_once() {
        let m = machine();
        let q = SimQueue::bounded(&m, 16);
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                m.spawn(&format!("p{p}"), move |ctx| {
                    for i in 0..50 {
                        ctx.charge(CostKind::Misc, 5.0);
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|c| {
                let q = q.clone();
                m.spawn(&format!("c{c}"), move |ctx| {
                    let mut got = Vec::new();
                    while let Some(x) = q.pop() {
                        ctx.charge(CostKind::Misc, 5.0);
                        got.push(x);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn try_ops_do_not_block() {
        let m = machine();
        let q = SimQueue::bounded(&m, 1);
        assert_eq!(q.try_pop(), None::<u32>);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(2));
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.is_empty());
    }
}
