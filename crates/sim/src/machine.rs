//! The virtual-time machine: processor-sharing CPU scheduler and vthreads.
//!
//! ## Execution model
//!
//! Every vthread is a real OS thread. Virtual time is **frozen while any
//! vthread executes user code** and advances only when all of them are parked
//! (charging CPU cost, sleeping, waiting for disk I/O, or blocked on a
//! [`WaitSet`](crate::WaitSet)). The last thread to park *drives* the event
//! loop: it advances the clock to the next completion, wakes the affected
//! threads, and repeats until some thread is running again.
//!
//! ## Processor sharing
//!
//! Outstanding CPU charges are served processor-sharing style: with `J` jobs
//! and `C` cores every job progresses at rate `min(1, C/J)`. Because all jobs
//! share one rate, each job can be keyed by the cumulative per-job *service
//! credit* at which it completes; a binary heap over finish credits yields
//! O(log n) scheduling. This fluid model reproduces the contention phenomena
//! the paper measures (saturation beyond `C` runnable workers) without
//! simulating individual time slices.

use std::any::Any;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::disk::{DiskConfig, DiskCounters, DiskState, DiskStats, StreamId};
use crate::stats::{CostKind, CpuBreakdown, CpuCounters};
use crate::waitset::WaitSet;

/// Index of a vthread within its machine.
pub(crate) type Tid = usize;

/// Completion-credit epsilon (virtual nanoseconds). Charges are page-granular
/// (microseconds), so treating sub-nanosecond residues as complete is safe
/// and avoids float-precision micro-stepping.
const EPS_NS: f64 = 1.0;

/// Static machine parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Number of virtual CPU cores (the paper's server has 24).
    pub cores: u32,
    /// Simulated disk parameters.
    pub disk: DiskConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cores: 24,
            disk: DiskConfig::default(),
        }
    }
}

/// Lifecycle state of a vthread (exposed for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Executing user code; virtual time is frozen.
    Running,
    /// Parked with an outstanding CPU charge.
    Charging,
    /// Parked on a timer.
    Sleeping,
    /// Parked on a disk request.
    Io,
    /// Parked on a [`WaitSet`](crate::WaitSet).
    Waiting,
    /// Finished.
    Exited,
}

/// OS-level park/unpark cell. `unpark` may arrive before `park`.
#[derive(Debug, Default)]
struct Parker {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn park(&self) {
        let mut g = self.flag.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
        *g = false;
    }

    fn unpark(&self) {
        let mut g = self.flag.lock();
        *g = true;
        self.cv.notify_one();
    }
}

struct ThreadSlot {
    name: String,
    state: ThreadState,
    /// Pre-posted WaitSet wakeup (see `waitset.rs` for the protocol).
    ws_token: bool,
    parker: Arc<Parker>,
}

/// CPU job keyed by the service credit at which it completes.
struct CpuJob {
    finish_credit: f64,
    tid: Tid,
}

impl PartialEq for CpuJob {
    fn eq(&self, other: &Self) -> bool {
        self.finish_credit == other.finish_credit && self.tid == other.tid
    }
}
impl Eq for CpuJob {}
impl PartialOrd for CpuJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CpuJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish_credit
            .total_cmp(&other.finish_credit)
            .then(self.tid.cmp(&other.tid))
    }
}

/// Timer (or disk-completion) event.
struct Timer {
    at: f64,
    tid: Tid,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tid == other.tid
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.total_cmp(&other.at).then(self.tid.cmp(&other.tid))
    }
}

struct Sched {
    now_ns: f64,
    /// Cumulative per-job processor-sharing service credit.
    credit: f64,
    cpu_jobs: BinaryHeap<Reverse<CpuJob>>,
    timers: BinaryHeap<Reverse<Timer>>,
    disk_done: BinaryHeap<Reverse<Timer>>,
    disk: DiskState,
    threads: Vec<ThreadSlot>,
    /// Vthreads currently executing user code.
    running_real: usize,
    /// Vthreads not yet exited.
    live: usize,
    /// ∫ min(runnable CPU jobs, cores) dt — total core-busy virtual ns.
    busy_core_ns: f64,
}

pub(crate) struct MachineInner {
    cores: u32,
    sched: Mutex<Sched>,
    pub(crate) cpu: CpuCounters,
    pub(crate) io: DiskCounters,
}

impl MachineInner {
    /// Advance virtual time while no vthread runs user code.
    /// Must be called with the scheduler lock held.
    fn drive(&self, s: &mut Sched) {
        while s.running_real == 0 {
            let jobs = s.cpu_jobs.len();
            let rate = if jobs == 0 {
                1.0
            } else {
                (self.cores as f64 / jobs as f64).min(1.0)
            };
            let mut next: Option<f64> = None;
            if let Some(Reverse(j)) = s.cpu_jobs.peek() {
                let dt = ((j.finish_credit - s.credit).max(0.0)) / rate;
                next = Some(s.now_ns + dt);
            }
            if let Some(Reverse(t)) = s.timers.peek() {
                next = Some(next.map_or(t.at, |n| n.min(t.at)));
            }
            if let Some(Reverse(t)) = s.disk_done.peek() {
                next = Some(next.map_or(t.at, |n| n.min(t.at)));
            }
            let Some(target) = next else {
                // Nothing pending: either the machine is idle or all live
                // threads wait on WaitSets for external input.
                return;
            };
            let dt = (target - s.now_ns).max(0.0);
            s.busy_core_ns += (jobs.min(self.cores as usize)) as f64 * dt;
            if jobs > 0 {
                s.credit += rate * dt;
            }
            s.now_ns = target;
            // Pop all events due at the new instant.
            while let Some(Reverse(j)) = s.cpu_jobs.peek() {
                if j.finish_credit <= s.credit + EPS_NS {
                    let tid = s.cpu_jobs.pop().unwrap().0.tid;
                    self.wake(s, tid);
                } else {
                    break;
                }
            }
            while let Some(Reverse(t)) = s.timers.peek() {
                if t.at <= s.now_ns + EPS_NS {
                    let tid = s.timers.pop().unwrap().0.tid;
                    self.wake(s, tid);
                } else {
                    break;
                }
            }
            while let Some(Reverse(t)) = s.disk_done.peek() {
                if t.at <= s.now_ns + EPS_NS {
                    let tid = s.disk_done.pop().unwrap().0.tid;
                    self.wake(s, tid);
                } else {
                    break;
                }
            }
        }
    }

    fn wake(&self, s: &mut Sched, tid: Tid) {
        let slot = &mut s.threads[tid];
        debug_assert!(
            !matches!(slot.state, ThreadState::Running | ThreadState::Exited),
            "woke thread '{}' in state {:?}",
            slot.name,
            slot.state
        );
        slot.state = ThreadState::Running;
        s.running_real += 1;
        slot.parker.unpark();
    }

    /// Park the calling vthread with `park_state` after running `enqueue`
    /// under the scheduler lock (to register the completion event).
    fn park_with(
        &self,
        tid: Tid,
        park_state: ThreadState,
        enqueue: impl FnOnce(&mut Sched),
    ) {
        let parker;
        {
            let mut s = self.sched.lock();
            enqueue(&mut s);
            let slot = &mut s.threads[tid];
            slot.state = park_state;
            parker = Arc::clone(&slot.parker);
            s.running_real -= 1;
            if s.running_real == 0 {
                self.drive(&mut s);
            }
        }
        parker.park();
    }

    /// WaitSet park: consumes a pre-posted token instead of parking if one
    /// exists (see `waitset.rs`).
    pub(crate) fn park_waiting(&self, tid: Tid) {
        let parker;
        {
            let mut s = self.sched.lock();
            let slot = &mut s.threads[tid];
            if slot.ws_token {
                slot.ws_token = false;
                return;
            }
            slot.state = ThreadState::Waiting;
            parker = Arc::clone(&slot.parker);
            s.running_real -= 1;
            if s.running_real == 0 {
                self.drive(&mut s);
            }
        }
        parker.park();
    }

    /// Wake every tid in `tids` that is parked on a WaitSet; pre-post a token
    /// for those currently running (they will re-check their predicate).
    pub(crate) fn notify_tids(&self, tids: &[Tid]) {
        if tids.is_empty() {
            return;
        }
        let mut s = self.sched.lock();
        for &tid in tids {
            match s.threads[tid].state {
                ThreadState::Waiting => self.wake(&mut s, tid),
                ThreadState::Exited => {}
                _ => s.threads[tid].ws_token = true,
            }
        }
    }
}

/// Handle to a virtual-time machine. Cheap to clone.
#[derive(Clone)]
pub struct Machine {
    pub(crate) inner: Arc<MachineInner>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.inner.cores)
            .field("now_secs", &self.now_secs())
            .finish()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<SimCtx>> = const { RefCell::new(None) };
}

/// Return the [`SimCtx`] of the calling vthread, if any.
pub(crate) fn current_ctx() -> Option<SimCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Machine {
    /// Create a machine with the given core count and disk model.
    pub fn new(config: MachineConfig) -> Machine {
        assert!(config.cores >= 1, "a machine needs at least one core");
        Machine {
            inner: Arc::new(MachineInner {
                cores: config.cores,
                sched: Mutex::new(Sched {
                    now_ns: 0.0,
                    credit: 0.0,
                    cpu_jobs: BinaryHeap::new(),
                    timers: BinaryHeap::new(),
                    disk_done: BinaryHeap::new(),
                    disk: DiskState::new(config.disk),
                    threads: Vec::new(),
                    running_real: 0,
                    live: 0,
                    busy_core_ns: 0.0,
                }),
                cpu: CpuCounters::default(),
                io: DiskCounters::default(),
            }),
        }
    }

    /// Number of virtual cores.
    pub fn cores(&self) -> u32 {
        self.inner.cores
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.inner.sched.lock().now_ns
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() / 1e9
    }

    /// Total core-busy virtual time (∫ active cores dt), seconds.
    /// `busy_core_secs / makespan` is the paper's "Avg. # Cores Used".
    pub fn busy_core_secs(&self) -> f64 {
        self.inner.sched.lock().busy_core_ns / 1e9
    }

    /// Snapshot of per-category charged CPU time.
    pub fn cpu_breakdown(&self) -> CpuBreakdown {
        self.inner.cpu.snapshot()
    }

    /// Snapshot of disk counters.
    pub fn disk_stats(&self) -> DiskStats {
        self.inner.io.snapshot()
    }

    /// Names and states of all vthreads ever spawned (diagnostics).
    pub fn dump_threads(&self) -> Vec<(String, ThreadState)> {
        let s = self.inner.sched.lock();
        s.threads
            .iter()
            .map(|t| (t.name.clone(), t.state))
            .collect()
    }

    /// Number of vthreads that have not yet exited.
    pub fn live_threads(&self) -> usize {
        self.inner.sched.lock().live
    }

    /// Spawn a vthread. The closure receives the thread's [`SimCtx`]; the
    /// same context is also installed thread-locally so blocking primitives
    /// ([`WaitSet`](crate::WaitSet), [`SimQueue`](crate::SimQueue), joins)
    /// integrate automatically.
    pub fn spawn<T, F>(&self, name: &str, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce(&SimCtx) -> T + Send + 'static,
    {
        let tid;
        {
            let mut s = self.inner.sched.lock();
            tid = s.threads.len();
            s.threads.push(ThreadSlot {
                name: name.to_string(),
                state: ThreadState::Running,
                ws_token: false,
                parker: Arc::new(Parker::default()),
            });
            s.running_real += 1;
            s.live += 1;
        }
        let shared = Arc::new(JoinShared {
            result: Mutex::new(None),
            cv: Condvar::new(),
            done: AtomicBool::new(false),
            ws: WaitSet::new(self),
        });
        let ctx = SimCtx {
            machine: self.clone(),
            tid,
        };
        let shared2 = Arc::clone(&shared);
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name(format!("vt-{name}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some(ctx.clone()));
                let result = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                CURRENT.with(|c| *c.borrow_mut() = None);
                *shared2.result.lock() = Some(result);
                shared2.done.store(true, Ordering::Release);
                shared2.cv.notify_all();
                shared2.ws.notify_all();
                let mut s = inner.sched.lock();
                s.threads[tid].state = ThreadState::Exited;
                s.running_real -= 1;
                s.live -= 1;
                if s.running_real == 0 {
                    inner.drive(&mut s);
                }
            })
            .expect("failed to spawn vthread carrier");
        JoinHandle { shared }
    }
}

/// Per-vthread execution context.
#[derive(Clone)]
pub struct SimCtx {
    machine: Machine,
    pub(crate) tid: Tid,
}

impl SimCtx {
    /// The machine this vthread runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Charge `cost_ns` virtual nanoseconds of CPU work in category `kind`.
    /// Returns when the work completes in virtual time (processor sharing).
    pub fn charge(&self, kind: CostKind, cost_ns: f64) {
        debug_assert!(cost_ns >= 0.0, "negative charge");
        if cost_ns <= 0.0 {
            return;
        }
        self.machine.inner.cpu.add(kind, cost_ns);
        let inner = &self.machine.inner;
        inner.park_with(self.tid, ThreadState::Charging, |s| {
            s.cpu_jobs.push(Reverse(CpuJob {
                finish_credit: s.credit + cost_ns,
                tid: self.tid,
            }));
        });
    }

    /// Sleep for `dur_ns` virtual nanoseconds.
    pub fn sleep(&self, dur_ns: f64) {
        if dur_ns <= 0.0 {
            return;
        }
        let inner = &self.machine.inner;
        inner.park_with(self.tid, ThreadState::Sleeping, |s| {
            let at = s.now_ns + dur_ns;
            s.timers.push(Reverse(Timer { at, tid: self.tid }));
        });
    }

    /// Blocking disk read of `bytes` on logical `stream`. Returns when the
    /// simulated device completes the transfer.
    pub fn io_read(&self, stream: StreamId, bytes: u64) {
        let inner = &self.machine.inner;
        inner.park_with(self.tid, ThreadState::Io, |s| {
            let done = s
                .disk
                .schedule_read(s.now_ns, stream, bytes, &inner.io);
            s.disk_done.push(Reverse(Timer {
                at: done,
                tid: self.tid,
            }));
        });
    }
}

struct JoinShared<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    cv: Condvar,
    done: AtomicBool,
    ws: WaitSet,
}

/// Handle for awaiting a vthread's completion from either another vthread
/// (virtual-time blocking) or an external OS thread (real blocking).
pub struct JoinHandle<T> {
    shared: Arc<JoinShared<T>>,
}

impl<T> JoinHandle<T> {
    /// Whether the vthread has finished.
    pub fn is_finished(&self) -> bool {
        self.shared.done.load(Ordering::Acquire)
    }

    /// Wait for the vthread and return its result (`Err` carries the panic
    /// payload, mirroring [`std::thread::JoinHandle::join`]).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        if current_ctx().is_some() {
            let shared = Arc::clone(&self.shared);
            self.shared
                .ws
                .wait_until(move || shared.done.load(Ordering::Acquire));
        } else {
            let mut g = self.shared.result.lock();
            while g.is_none() {
                self.shared.cv.wait(&mut g);
            }
            drop(g);
        }
        self.shared
            .result
            .lock()
            .take()
            .expect("vthread result already taken")
    }

    /// Like [`join`](Self::join) but resumes the panic instead of returning it.
    pub fn join_unwrap(self) -> T {
        match self.join() {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostKind, MachineConfig};

    fn machine(cores: u32) -> Machine {
        Machine::new(MachineConfig {
            cores,
            ..Default::default()
        })
    }

    /// Spawn `n` workers from a parent vthread (so virtual time cannot
    /// advance between spawns) and return their results.
    fn spawn_batch<T, F>(m: &Machine, n: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize, &SimCtx) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        m.spawn("parent", move |ctx| {
            let hs: Vec<_> = (0..n)
                .map(|i| {
                    let f = Arc::clone(&f);
                    ctx.machine()
                        .spawn(&format!("w{i}"), move |c| f(i, c))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .join()
        .unwrap()
    }

    #[test]
    fn single_charge_advances_clock_exactly() {
        let m = machine(4);
        let h = m.spawn("a", |ctx| ctx.charge(CostKind::Misc, 5e6));
        h.join().unwrap();
        assert!((m.now_ns() - 5e6).abs() < 10.0, "now={}", m.now_ns());
    }

    #[test]
    fn two_equal_jobs_one_core_take_double() {
        let m = machine(1);
        spawn_batch(&m, 2, |_, ctx| ctx.charge(CostKind::Misc, 1e6));
        assert!((m.now_ns() - 2e6).abs() < 10.0, "now={}", m.now_ns());
        // Work conservation: the single core was busy the whole time.
        assert!((m.busy_core_secs() * 1e9 - 2e6).abs() < 10.0);
    }

    #[test]
    fn two_equal_jobs_two_cores_run_in_parallel() {
        let m = machine(2);
        spawn_batch(&m, 2, |_, ctx| ctx.charge(CostKind::Misc, 1e6));
        assert!((m.now_ns() - 1e6).abs() < 10.0, "now={}", m.now_ns());
        assert!((m.busy_core_secs() * 1e9 - 2e6).abs() < 10.0);
    }

    #[test]
    fn three_equal_jobs_two_cores_processor_share() {
        // Total work 3c on 2 cores, all jobs identical → all finish at 1.5c.
        let m = machine(2);
        spawn_batch(&m, 3, |_, ctx| ctx.charge(CostKind::Misc, 1e6));
        assert!((m.now_ns() - 1.5e6).abs() < 10.0, "now={}", m.now_ns());
    }

    #[test]
    fn staggered_arrival_processor_sharing() {
        // 1 core. A charges 10 at t=0. B sleeps 5 then charges 10.
        // [0,5): A alone (progress 5). [5,15): both at rate 1/2 (A finishes
        // its remaining 5 at t=15). [15,20): B alone finishes remaining 5.
        let m = machine(1);
        let times = spawn_batch(&m, 2, |i, ctx| {
            if i == 1 {
                ctx.sleep(5e6);
            }
            ctx.charge(CostKind::Misc, 10e6);
            ctx.machine().now_ns()
        });
        assert!((times[0] - 15e6).abs() < 10.0, "ta={}", times[0]);
        assert!((times[1] - 20e6).abs() < 10.0, "tb={}", times[1]);
    }

    #[test]
    fn io_overlaps_with_cpu() {
        let m = machine(1);
        // Spawn both workers from a parent vthread: the parent counts as
        // running, so virtual time cannot advance between the two spawns
        // (an external thread gives no such guarantee).
        let parent = m.spawn("parent", |ctx| {
            let a = ctx.machine().spawn("cpu", |ctx| {
                ctx.charge(CostKind::Misc, 50e6);
                ctx.machine().now_ns()
            });
            let b = ctx.machine().spawn("io", |ctx| {
                ctx.io_read(1, 1024 * 1024);
                ctx.machine().now_ns()
            });
            (a.join().unwrap(), b.join().unwrap())
        });
        let (ta, tb) = parent.join().unwrap();
        // The 1 MB read takes ~4 ms seek + ~4.5 ms transfer ≪ 50 ms of CPU;
        // it must complete while the CPU job is still in progress.
        assert!(tb < ta, "io at {tb}, cpu at {ta}");
        assert!((ta - 50e6).abs() < 10.0);
    }

    #[test]
    fn join_returns_value_and_propagates_panic() {
        let m = machine(2);
        let h = m.spawn("v", |_| 7usize);
        assert_eq!(h.join().unwrap(), 7);
        let p = m.spawn("p", |_| panic!("boom"));
        assert!(p.join().is_err());
    }

    #[test]
    fn vthread_can_join_vthread() {
        let m = machine(2);
        let outer = m.spawn("outer", |ctx| {
            let inner = ctx.machine().spawn("inner", |c| {
                c.charge(CostKind::Misc, 1e6);
                41
            });
            inner.join().unwrap() + 1
        });
        assert_eq!(outer.join().unwrap(), 42);
    }

    #[test]
    fn many_threads_random_charges_terminate() {
        let m = machine(4);
        let hs: Vec<_> = (0..64)
            .map(|i| {
                m.spawn(&format!("w{i}"), move |ctx| {
                    for k in 0..10 {
                        ctx.charge(CostKind::Misc, 1e4 * ((i + k) % 7 + 1) as f64);
                        if k % 3 == 0 {
                            ctx.sleep(5e3);
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // Total work = Σ charges; busy integral must equal it (no idle gaps
        // while jobs pending, no over-counting).
        let charged = m.cpu_breakdown().total_ns();
        assert!(charged > 0.0);
        assert!(m.busy_core_secs() * 1e9 <= charged + 1.0);
    }

    #[test]
    fn zero_and_negative_duration_ops_are_noops() {
        let m = machine(1);
        let h = m.spawn("z", |ctx| {
            ctx.charge(CostKind::Misc, 0.0);
            ctx.sleep(0.0);
        });
        h.join().unwrap();
        assert_eq!(m.now_ns(), 0.0);
    }

    #[test]
    fn dump_threads_reports_states() {
        let m = machine(1);
        let h = m.spawn("worker", |ctx| ctx.charge(CostKind::Misc, 1e3));
        h.join().unwrap();
        // join() returns when the result is published; the state flips to
        // Exited in the carrier thread's final step immediately after —
        // poll briefly to avoid racing that last transition.
        for _ in 0..200 {
            if m.live_threads() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let dump = m.dump_threads();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].0, "worker");
        assert_eq!(dump[0].1, ThreadState::Exited);
        assert_eq!(m.live_threads(), 0);
    }
}
