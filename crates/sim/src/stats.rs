//! Per-category virtual CPU accounting.
//!
//! Every [`charge`](crate::SimCtx::charge) is tagged with a [`CostKind`]; the
//! machine accumulates totals per kind. The paper's Figure 11/12 CPU-time
//! breakdown bars (`Hashing / Joins / Aggreg. / Scans / Locks / Misc`) are
//! produced directly from these counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Category of virtual CPU work, mirroring the paper's breakdown plus the
/// extra sharing-specific categories this reproduction distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CostKind {
    /// Table-scan page fetch + decode work (`Scans (#4)` in the paper).
    Scan = 0,
    /// Selection/projection predicate evaluation.
    Select = 1,
    /// `hash()`/`equal()` work inside hash-joins (`Hashing (#1)`).
    Hashing = 2,
    /// Remaining hash-join work: bookkeeping, bitmap ANDs, output assembly
    /// (`Joins (#2)`).
    Join = 3,
    /// Aggregation work (`Aggreg. (#3)`).
    Aggregation = 4,
    /// Sorting work.
    Sort = 5,
    /// Result forwarding during push-based SP (the serialization point).
    Copy = 6,
    /// Lock acquisition/contention cost (`Locks (#5)`).
    Locks = 7,
    /// CJOIN admission-phase work (dimension scans, bitmap extension).
    Admission = 8,
    /// Distributor routing + per-query projection in the GQP.
    Routing = 9,
    /// Everything else (`Misc (#6)`).
    Misc = 10,
}

/// All cost kinds, in `repr` order. Useful for iteration and report layout.
pub const COST_KINDS: [CostKind; 11] = [
    CostKind::Scan,
    CostKind::Select,
    CostKind::Hashing,
    CostKind::Join,
    CostKind::Aggregation,
    CostKind::Sort,
    CostKind::Copy,
    CostKind::Locks,
    CostKind::Admission,
    CostKind::Routing,
    CostKind::Misc,
];

impl CostKind {
    /// Short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CostKind::Scan => "Scans",
            CostKind::Select => "Select",
            CostKind::Hashing => "Hashing",
            CostKind::Join => "Joins",
            CostKind::Aggregation => "Aggreg.",
            CostKind::Sort => "Sort",
            CostKind::Copy => "Copy",
            CostKind::Locks => "Locks",
            CostKind::Admission => "Admission",
            CostKind::Routing => "Routing",
            CostKind::Misc => "Misc",
        }
    }
}

/// Snapshot (or live accumulator) of charged virtual CPU nanoseconds per kind.
#[derive(Debug, Default)]
pub(crate) struct CpuCounters {
    ns: [AtomicU64; 11],
}

impl CpuCounters {
    pub(crate) fn add(&self, kind: CostKind, ns: f64) {
        // Stored as integer nanoseconds; sub-ns remainders are negligible at
        // the page-granular charge sizes the engine uses.
        self.ns[kind as usize].fetch_add(ns as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> CpuBreakdown {
        let mut out = CpuBreakdown::default();
        for (i, a) in self.ns.iter().enumerate() {
            out.ns[i] = a.load(Ordering::Relaxed) as f64;
        }
        out
    }
}

/// Immutable snapshot of per-category CPU time, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuBreakdown {
    ns: [f64; 11],
}

impl CpuBreakdown {
    /// Charged time for one category, in virtual nanoseconds.
    pub fn get(&self, kind: CostKind) -> f64 {
        self.ns[kind as usize]
    }

    /// Charged time for one category, in virtual seconds.
    pub fn secs(&self, kind: CostKind) -> f64 {
        self.ns[kind as usize] / 1e9
    }

    /// Total charged CPU time across all categories, virtual nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.ns.iter().sum()
    }

    /// Total charged CPU time across all categories, virtual seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns() / 1e9
    }

    /// `self - earlier`, category-wise. Used to attribute work to a window.
    pub fn delta(&self, earlier: &CpuBreakdown) -> CpuBreakdown {
        let mut out = CpuBreakdown::default();
        for i in 0..self.ns.len() {
            out.ns[i] = (self.ns[i] - earlier.ns[i]).max(0.0);
        }
        out
    }

    /// Category-wise sum.
    pub fn add(&self, other: &CpuBreakdown) -> CpuBreakdown {
        let mut out = CpuBreakdown::default();
        for i in 0..self.ns.len() {
            out.ns[i] = self.ns[i] + other.ns[i];
        }
        out
    }
}

/// Samples kept exactly before a [`LatencyHistogram`] switches to its
/// streaming log-linear buckets. Service windows in this repo complete at
/// most a few thousand queries, so the common case is fully exact.
const HISTOGRAM_EXACT_CAP: usize = 4096;

/// Log-linear bucket resolution past the exact cap: each power-of-two decade
/// is split into this many linear sub-buckets, bounding the relative
/// quantile error by `1 / SUBBUCKETS` (HdrHistogram's scheme, radically
/// simplified for f64 seconds).
const HISTOGRAM_SUBBUCKETS: usize = 32;

/// Latency quantile estimator: exact for small sample counts, streaming
/// log-linear buckets past `HISTOGRAM_EXACT_CAP` (4096) samples.
///
/// The service harness records every completed query's response time here
/// and reports p50/p99; runs small enough for the figures are answered from
/// the exact sorted samples, while an overload sweep that completes many
/// thousands of queries degrades gracefully to ≤3 % relative bucket error
/// instead of unbounded memory.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    /// Exact samples, kept until the cap is hit (unsorted; sorted on read).
    exact: Vec<f64>,
    /// Streaming bucket counts, keyed by [`LatencyHistogram::bucket_of`].
    /// Empty until the exact cap overflows.
    buckets: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl LatencyHistogram {
    /// New empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Bucket index of a positive sample: 32 linear sub-buckets per
    /// power-of-two decade, offset so that ~1 ns (1e-9 s) lands at zero.
    fn bucket_of(secs: f64) -> usize {
        let clamped = secs.max(1e-9);
        let decade = clamped.log2().floor();
        let frac = clamped / decade.exp2() - 1.0; // in [0, 1)
        let idx = ((decade + 30.0) * HISTOGRAM_SUBBUCKETS as f64
            + frac * HISTOGRAM_SUBBUCKETS as f64)
            .floor();
        (idx.max(0.0)) as usize
    }

    /// Representative value (bucket midpoint) of `bucket_of`'s inverse.
    fn bucket_value(idx: usize) -> f64 {
        let decade = (idx / HISTOGRAM_SUBBUCKETS) as f64 - 30.0;
        let frac = (idx % HISTOGRAM_SUBBUCKETS) as f64 + 0.5;
        decade.exp2() * (1.0 + frac / HISTOGRAM_SUBBUCKETS as f64)
    }

    /// Record one sample (seconds; negative samples are clamped to 0).
    pub fn record(&mut self, secs: f64) {
        let secs = secs.max(0.0);
        if self.count == 0 {
            self.min = secs;
            self.max = secs;
        } else {
            self.min = self.min.min(secs);
            self.max = self.max.max(secs);
        }
        self.count += 1;
        if self.buckets.is_empty() && self.exact.len() < HISTOGRAM_EXACT_CAP {
            self.exact.push(secs);
            return;
        }
        if self.buckets.is_empty() {
            // Overflow: spill the exact samples into buckets once.
            self.buckets = vec![0u64; (30 + 40) * HISTOGRAM_SUBBUCKETS];
            for &s in &self.exact {
                self.buckets[Self::bucket_of(s).min((30 + 40) * HISTOGRAM_SUBBUCKETS - 1)] += 1;
            }
            self.exact.clear();
        }
        let cap = self.buckets.len() - 1;
        self.buckets[Self::bucket_of(secs).min(cap)] += 1;
    }

    /// Recorded sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Quantile `q` in `[0, 1]` (0.5 = median, 0.99 = p99). Exact
    /// (nearest-rank over the sorted samples) below the streaming cap;
    /// bucket-midpoint otherwise, clamped into `[min, max]`. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the ceil(q·N)-th smallest sample (1-based), so
        // quantile(1.0) is the max and quantile(0.0) the min.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if !self.exact.is_empty() {
            let mut sorted = self.exact.clone();
            sorted.sort_by(f64::total_cmp);
            return sorted[(rank - 1) as usize];
        }
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = CpuCounters::default();
        c.add(CostKind::Hashing, 100.0);
        c.add(CostKind::Hashing, 50.0);
        c.add(CostKind::Misc, 25.0);
        let s = c.snapshot();
        assert_eq!(s.get(CostKind::Hashing), 150.0);
        assert_eq!(s.get(CostKind::Misc), 25.0);
        assert_eq!(s.total_ns(), 175.0);
    }

    #[test]
    fn delta_is_windowed_and_clamped() {
        let c = CpuCounters::default();
        c.add(CostKind::Join, 10.0);
        let before = c.snapshot();
        c.add(CostKind::Join, 30.0);
        let after = c.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.get(CostKind::Join), 30.0);
        // Delta never goes negative even with mismatched snapshots.
        let weird = before.delta(&after);
        assert_eq!(weird.get(CostKind::Join), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in COST_KINDS {
            assert!(seen.insert(k.label()));
        }
    }

    #[test]
    fn histogram_is_exact_below_the_streaming_cap() {
        let mut h = LatencyHistogram::new();
        // 100 samples 0.01..=1.00: nearest-rank quantiles are exact.
        for i in 1..=100 {
            h.record(i as f64 / 100.0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 0.50);
        assert_eq!(h.quantile(0.99), 0.99);
        assert_eq!(h.quantile(1.0), 1.00);
        assert_eq!(h.quantile(0.0), 0.01);
        assert_eq!(h.min(), 0.01);
        assert_eq!(h.max(), 1.00);
    }

    #[test]
    fn histogram_order_does_not_matter_and_empty_is_zero() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.count(), 0);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let xs = [0.5, 0.1, 0.9, 0.3, 0.7];
        for &x in &xs {
            a.record(x);
        }
        for &x in xs.iter().rev() {
            b.record(x);
        }
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.quantile(0.5), 0.5);
    }

    /// Deterministic LCG in `[0, 1)` (PCG-XSH constants) so the
    /// distribution tests need no external RNG.
    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*seed >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The exact-sort oracle: nearest-rank quantile over all samples, the
    /// definition `LatencyHistogram::quantile` matches exactly below the
    /// streaming cap and approximates above it.
    fn oracle(samples: &[f64], q: f64) -> f64 {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Feed `samples` through a histogram and assert p50/p99 stay within
    /// `tol` relative error of the exact-sort oracle.
    fn assert_tracks_oracle(samples: &[f64], tol: f64) {
        let mut h = LatencyHistogram::new();
        for &s in samples {
            h.record(s);
        }
        assert_eq!(h.count(), samples.len() as u64);
        for q in [0.5, 0.99] {
            let est = h.quantile(q);
            let exact = oracle(samples, q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel < tol,
                "q={q}: histogram {est} vs oracle {exact} (rel {rel:.4}, n={})",
                samples.len()
            );
        }
    }

    #[test]
    fn histogram_transition_at_the_exact_cap_is_seamless() {
        // One sample either side of the 4096-sample spill: the last fully
        // exact count answers quantiles identically to the oracle, and the
        // first streaming count stays within the bucket error — no cliff.
        let cap = super::HISTOGRAM_EXACT_CAP;
        for n in [cap - 1, cap] {
            let samples: Vec<f64> = (1..=n).map(|i| i as f64 / n as f64).collect();
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            for q in [0.5, 0.99] {
                assert_eq!(
                    h.quantile(q),
                    oracle(&samples, q),
                    "n={n} must still be exact"
                );
            }
        }
        let n = cap + 1;
        let samples: Vec<f64> = (1..=n).map(|i| i as f64 / n as f64).collect();
        // 1/32 sub-bucket resolution plus midpoint rounding: ≤5 % relative.
        assert_tracks_oracle(&samples, 0.05);
    }

    #[test]
    fn histogram_bimodal_quantiles_track_the_exact_oracle() {
        // Interactive-vs-overload shape: a fast mode near 1 ms and a slow
        // mode near 1 s, interleaved. p50 lands inside a mode and p99 in
        // the slow mode; both must track the oracle through the spill.
        let mut seed = 0x5eed_cafe;
        let n = 3 * super::HISTOGRAM_EXACT_CAP;
        let samples: Vec<f64> = (0..n)
            .map(|i| {
                let jitter = 0.8 + 0.4 * lcg(&mut seed);
                if i % 2 == 0 {
                    1e-3 * jitter
                } else {
                    1.0 * jitter
                }
            })
            .collect();
        assert_tracks_oracle(&samples, 0.05);
    }

    #[test]
    fn histogram_heavy_tail_quantiles_track_the_exact_oracle() {
        // Pareto-ish tail (α = 1.5, three decades of spread): the
        // log-linear buckets must hold their relative error where the mass
        // is sparse — exactly where an overload sweep's p99 lives.
        let mut seed = 0xdead_beef;
        let n = 3 * super::HISTOGRAM_EXACT_CAP;
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                let u = 1.0 - lcg(&mut seed); // in (0, 1]
                1e-3 * u.powf(-1.0 / 1.5)
            })
            .collect();
        assert_tracks_oracle(&samples, 0.05);
    }

    #[test]
    fn histogram_streams_past_the_cap_with_bounded_error() {
        let mut h = LatencyHistogram::new();
        // 3× the exact cap of uniform samples in (0, 1]: forced into the
        // log-linear buckets, quantiles must stay within the bucket error.
        let n = 3 * super::HISTOGRAM_EXACT_CAP;
        for i in 1..=n {
            h.record(i as f64 / n as f64);
        }
        assert_eq!(h.count(), n as u64);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 0.5).abs() / 0.5 < 0.05, "p50={p50}");
        assert!((p99 - 0.99).abs() / 0.99 < 0.05, "p99={p99}");
        assert!(p50 <= p99);
        // Extremes stay clamped into the observed range.
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
    }
}
