//! Per-category virtual CPU accounting.
//!
//! Every [`charge`](crate::SimCtx::charge) is tagged with a [`CostKind`]; the
//! machine accumulates totals per kind. The paper's Figure 11/12 CPU-time
//! breakdown bars (`Hashing / Joins / Aggreg. / Scans / Locks / Misc`) are
//! produced directly from these counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Category of virtual CPU work, mirroring the paper's breakdown plus the
/// extra sharing-specific categories this reproduction distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CostKind {
    /// Table-scan page fetch + decode work (`Scans (#4)` in the paper).
    Scan = 0,
    /// Selection/projection predicate evaluation.
    Select = 1,
    /// `hash()`/`equal()` work inside hash-joins (`Hashing (#1)`).
    Hashing = 2,
    /// Remaining hash-join work: bookkeeping, bitmap ANDs, output assembly
    /// (`Joins (#2)`).
    Join = 3,
    /// Aggregation work (`Aggreg. (#3)`).
    Aggregation = 4,
    /// Sorting work.
    Sort = 5,
    /// Result forwarding during push-based SP (the serialization point).
    Copy = 6,
    /// Lock acquisition/contention cost (`Locks (#5)`).
    Locks = 7,
    /// CJOIN admission-phase work (dimension scans, bitmap extension).
    Admission = 8,
    /// Distributor routing + per-query projection in the GQP.
    Routing = 9,
    /// Everything else (`Misc (#6)`).
    Misc = 10,
}

/// All cost kinds, in `repr` order. Useful for iteration and report layout.
pub const COST_KINDS: [CostKind; 11] = [
    CostKind::Scan,
    CostKind::Select,
    CostKind::Hashing,
    CostKind::Join,
    CostKind::Aggregation,
    CostKind::Sort,
    CostKind::Copy,
    CostKind::Locks,
    CostKind::Admission,
    CostKind::Routing,
    CostKind::Misc,
];

impl CostKind {
    /// Short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CostKind::Scan => "Scans",
            CostKind::Select => "Select",
            CostKind::Hashing => "Hashing",
            CostKind::Join => "Joins",
            CostKind::Aggregation => "Aggreg.",
            CostKind::Sort => "Sort",
            CostKind::Copy => "Copy",
            CostKind::Locks => "Locks",
            CostKind::Admission => "Admission",
            CostKind::Routing => "Routing",
            CostKind::Misc => "Misc",
        }
    }
}

/// Snapshot (or live accumulator) of charged virtual CPU nanoseconds per kind.
#[derive(Debug, Default)]
pub(crate) struct CpuCounters {
    ns: [AtomicU64; 11],
}

impl CpuCounters {
    pub(crate) fn add(&self, kind: CostKind, ns: f64) {
        // Stored as integer nanoseconds; sub-ns remainders are negligible at
        // the page-granular charge sizes the engine uses.
        self.ns[kind as usize].fetch_add(ns as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> CpuBreakdown {
        let mut out = CpuBreakdown::default();
        for (i, a) in self.ns.iter().enumerate() {
            out.ns[i] = a.load(Ordering::Relaxed) as f64;
        }
        out
    }
}

/// Immutable snapshot of per-category CPU time, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuBreakdown {
    ns: [f64; 11],
}

impl CpuBreakdown {
    /// Charged time for one category, in virtual nanoseconds.
    pub fn get(&self, kind: CostKind) -> f64 {
        self.ns[kind as usize]
    }

    /// Charged time for one category, in virtual seconds.
    pub fn secs(&self, kind: CostKind) -> f64 {
        self.ns[kind as usize] / 1e9
    }

    /// Total charged CPU time across all categories, virtual nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.ns.iter().sum()
    }

    /// Total charged CPU time across all categories, virtual seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns() / 1e9
    }

    /// `self - earlier`, category-wise. Used to attribute work to a window.
    pub fn delta(&self, earlier: &CpuBreakdown) -> CpuBreakdown {
        let mut out = CpuBreakdown::default();
        for i in 0..self.ns.len() {
            out.ns[i] = (self.ns[i] - earlier.ns[i]).max(0.0);
        }
        out
    }

    /// Category-wise sum.
    pub fn add(&self, other: &CpuBreakdown) -> CpuBreakdown {
        let mut out = CpuBreakdown::default();
        for i in 0..self.ns.len() {
            out.ns[i] = self.ns[i] + other.ns[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = CpuCounters::default();
        c.add(CostKind::Hashing, 100.0);
        c.add(CostKind::Hashing, 50.0);
        c.add(CostKind::Misc, 25.0);
        let s = c.snapshot();
        assert_eq!(s.get(CostKind::Hashing), 150.0);
        assert_eq!(s.get(CostKind::Misc), 25.0);
        assert_eq!(s.total_ns(), 175.0);
    }

    #[test]
    fn delta_is_windowed_and_clamped() {
        let c = CpuCounters::default();
        c.add(CostKind::Join, 10.0);
        let before = c.snapshot();
        c.add(CostKind::Join, 30.0);
        let after = c.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.get(CostKind::Join), 30.0);
        // Delta never goes negative even with mismatched snapshots.
        let weird = before.delta(&after);
        assert_eq!(weird.get(CostKind::Join), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in COST_KINDS {
            assert!(seen.insert(k.label()));
        }
    }
}
