//! # workshare-sim — virtual-time multicore machine
//!
//! The paper's evaluation ran on a 24-core Sun Fire X4470. This reproduction
//! targets containers with as little as **one** physical core, so wall-clock
//! timing cannot exhibit the multi-core contention/parallelism trade-offs the
//! paper measures. Instead, the execution engine runs on a *virtual-time*
//! machine:
//!
//! * Engine threads are real OS threads (*vthreads*) that perform their data
//!   work (hash joins, predicate evaluation, page copies) **for real**, and
//!   account for it by *charging* calibrated virtual CPU cost
//!   ([`SimCtx::charge`]).
//! * A **processor-sharing scheduler** advances a virtual clock: when `J`
//!   vthreads have outstanding CPU demand on a machine with `C` cores, each
//!   progresses at rate `min(1, C/J)`. This is the classic fluid approximation
//!   of an OS time-slicing scheduler and reproduces CPU saturation, the
//!   push-based-SP serialization point, and shared-operator amortization.
//! * Blocking coordination (bounded queues, condition waits, joins) goes
//!   through simulated primitives ([`WaitSet`], [`SimQueue`]) so that waiting
//!   threads do not consume virtual cores.
//! * A **simulated disk** ([`disk`]) models sequential bandwidth, per-request
//!   overhead and stream-switch seek penalties, driving the paper's
//!   memory-resident vs disk-resident vs direct-I/O comparisons.
//!
//! Virtual time only advances when every live vthread is parked (charging,
//! sleeping, doing I/O, or blocked on a [`WaitSet`]); the last thread to park
//! drives the event loop. All per-category CPU charges are accumulated in
//! [`CpuBreakdown`], which is also the source for the paper's Figure 11/12
//! CPU-time breakdowns.
//!
//! ```
//! use workshare_sim::{Machine, MachineConfig, CostKind};
//!
//! let m = Machine::new(MachineConfig { cores: 4, ..Default::default() });
//! let h = m.spawn("worker", |ctx| {
//!     ctx.charge(CostKind::Misc, 1_000_000.0); // 1 virtual millisecond
//!     42
//! });
//! assert_eq!(h.join().unwrap(), 42);
//! assert!((m.now_secs() - 0.001).abs() < 1e-9);
//! ```

pub mod disk;
mod machine;
mod queue;
mod stats;
mod waitset;

pub use disk::{DiskConfig, DiskStats};
pub use machine::{JoinHandle, Machine, MachineConfig, SimCtx, ThreadState};
pub use queue::{QueueClosed, SimQueue};
pub use stats::{CostKind, CpuBreakdown, LatencyHistogram, COST_KINDS};
pub use waitset::WaitSet;

/// Nanoseconds of virtual time, the machine's base unit.
pub type VNanos = f64;

/// Convert virtual nanoseconds to seconds.
#[inline]
pub fn ns_to_secs(ns: VNanos) -> f64 {
    ns / 1e9
}

/// Convert seconds to virtual nanoseconds.
#[inline]
pub fn secs_to_ns(secs: f64) -> VNanos {
    secs * 1e9
}
