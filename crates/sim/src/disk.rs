//! Simulated secondary storage.
//!
//! Models the paper's 2×146 GB 10 kRPM SAS RAID-0 array as a single FIFO
//! server with:
//!
//! * a **sequential bandwidth** (bytes/second of pure transfer),
//! * a **per-request overhead** (command setup, rotational slack), and
//! * a **stream-switch seek penalty** charged whenever the served request
//!   belongs to a different logical *stream* (table scan cursor) than the
//!   previous one.
//!
//! The seek penalty is what makes N independent table scans collapse: 256
//! interleaved scanners switch streams on almost every request, which is how
//! the paper's `QPipe` configuration drops to ~2 MB/s while a single circular
//! scan sustains full sequential bandwidth. The FS-cache layer in
//! `workshare-storage` issues multi-page extent reads, amortizing both the
//! overhead and the seeks — that is the read-ahead effect that masks CJOIN's
//! preprocessor overhead until direct I/O removes it (paper Figure 13).
//!
//! Requests are scheduled *eagerly*: completion time is computed at submit
//! time from the disk's `free_at` horizon. This keeps the event loop simple
//! and is equivalent to FIFO service for blocking readers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies a logical sequential stream (one scan cursor / one prefetcher).
pub type StreamId = u64;

/// Static parameters of the simulated disk.
#[derive(Debug, Clone, Copy)]
pub struct DiskConfig {
    /// Sequential transfer bandwidth, bytes per virtual second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed service overhead per request, virtual nanoseconds.
    pub per_request_overhead_ns: f64,
    /// Seek penalty when consecutive served requests belong to different
    /// streams, virtual nanoseconds.
    pub stream_switch_seek_ns: f64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        // Calibrated to the paper's observed rates: ~215 MB/s peak sequential
        // (Fig. 13 direct-I/O read rates), with seeks that collapse heavily
        // interleaved scans to single-digit MB/s (Fig. 10 table).
        DiskConfig {
            bandwidth_bytes_per_sec: 220.0 * 1024.0 * 1024.0,
            per_request_overhead_ns: 60_000.0,        // 60 µs
            stream_switch_seek_ns: 4_000_000.0,       // 4 ms
        }
    }
}

/// Aggregate I/O statistics (monotonic counters).
#[derive(Debug, Default)]
pub struct DiskCounters {
    bytes_read: AtomicU64,
    requests: AtomicU64,
    seeks: AtomicU64,
    busy_ns: AtomicU64,
}

impl DiskCounters {
    pub(crate) fn record(&self, bytes: u64, seek: bool, service_ns: f64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        if seek {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        }
        self.busy_ns.fetch_add(service_ns as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> DiskStats {
        DiskStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed) as f64,
        }
    }
}

/// Snapshot of disk activity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DiskStats {
    /// Total bytes transferred from the simulated device.
    pub bytes_read: u64,
    /// Number of read requests served.
    pub requests: u64,
    /// Number of requests that paid a stream-switch seek.
    pub seeks: u64,
    /// Total device busy time, virtual nanoseconds.
    pub busy_ns: f64,
}

impl DiskStats {
    /// `self - earlier`, counter-wise.
    pub fn delta(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            requests: self.requests.saturating_sub(earlier.requests),
            seeks: self.seeks.saturating_sub(earlier.seeks),
            busy_ns: (self.busy_ns - earlier.busy_ns).max(0.0),
        }
    }

    /// Average read rate over a window of virtual nanoseconds, MB/s.
    pub fn read_rate_mbps(&self, window_ns: f64) -> f64 {
        if window_ns <= 0.0 {
            return 0.0;
        }
        (self.bytes_read as f64 / (1024.0 * 1024.0)) / (window_ns / 1e9)
    }
}

/// Mutable scheduling state of the disk server (guarded by the machine's
/// scheduler lock).
#[derive(Debug)]
pub(crate) struct DiskState {
    pub(crate) config: DiskConfig,
    /// Virtual time at which the device finishes its currently queued work.
    free_at: f64,
    last_stream: Option<StreamId>,
}

impl DiskState {
    pub(crate) fn new(config: DiskConfig) -> Self {
        DiskState {
            config,
            free_at: 0.0,
            last_stream: None,
        }
    }

    /// Schedule a read of `bytes` on `stream` submitted at virtual time
    /// `now`; returns the completion time and records counters.
    pub(crate) fn schedule_read(
        &mut self,
        now: f64,
        stream: StreamId,
        bytes: u64,
        counters: &DiskCounters,
    ) -> f64 {
        let seek = self.last_stream != Some(stream);
        self.last_stream = Some(stream);
        let transfer = bytes as f64 / self.config.bandwidth_bytes_per_sec * 1e9;
        let service = self.config.per_request_overhead_ns
            + if seek {
                self.config.stream_switch_seek_ns
            } else {
                0.0
            }
            + transfer;
        let start = self.free_at.max(now);
        let done = start + service;
        self.free_at = done;
        counters.record(bytes, seek, service);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DiskConfig {
        DiskConfig {
            bandwidth_bytes_per_sec: 100.0 * 1e6, // 100 MB/s (decimal for easy math)
            per_request_overhead_ns: 1_000.0,
            stream_switch_seek_ns: 1_000_000.0,
        }
    }

    #[test]
    fn sequential_same_stream_pays_one_seek() {
        let counters = DiskCounters::default();
        let mut d = DiskState::new(cfg());
        let t1 = d.schedule_read(0.0, 7, 1_000_000, &counters); // 10 ms transfer
        // first request: seek (cold) + overhead + transfer
        assert!((t1 - (1_000_000.0 + 1_000.0 + 10_000_000.0)).abs() < 1.0);
        let t2 = d.schedule_read(0.0, 7, 1_000_000, &counters);
        // second request queues behind the first, no seek
        assert!((t2 - (t1 + 1_000.0 + 10_000_000.0)).abs() < 1.0);
        let s = counters.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.bytes_read, 2_000_000);
    }

    #[test]
    fn interleaved_streams_pay_seeks() {
        let counters = DiskCounters::default();
        let mut d = DiskState::new(cfg());
        for i in 0..10 {
            d.schedule_read(0.0, i % 2, 10_000, &counters);
        }
        assert_eq!(counters.snapshot().seeks, 10);
    }

    #[test]
    fn idle_disk_starts_at_now() {
        let counters = DiskCounters::default();
        let mut d = DiskState::new(cfg());
        let t = d.schedule_read(5e9, 1, 1000, &counters);
        assert!(t > 5e9);
        assert!(t < 5e9 + 2e6);
    }

    #[test]
    fn read_rate_window_math() {
        let s = DiskStats {
            bytes_read: 100 * 1024 * 1024,
            requests: 1,
            seeks: 0,
            busy_ns: 0.0,
        };
        let rate = s.read_rate_mbps(1e9);
        assert!((rate - 100.0).abs() < 1e-6);
        assert_eq!(s.read_rate_mbps(0.0), 0.0);
    }
}
