//! Virtual-time condition waiting.
//!
//! A [`WaitSet`] is the machine's low-level blocking primitive: vthreads wait
//! until a caller-supplied predicate holds; any state change that could make
//! a predicate true is announced with [`WaitSet::notify_all`].
//!
//! ## Protocol (vthreads)
//!
//! 1. Check the predicate; if satisfied, return.
//! 2. Register the thread id in the wait list.
//! 3. Re-check the predicate (a notifier that ran between 1 and 2 saw no
//!    registration); if satisfied, return — the stale registration at worst
//!    earns a harmless pre-posted token later.
//! 4. Park. `notify_all` drains the list under the scheduler lock: threads in
//!    `Waiting` state are woken; threads still running get a *token* that
//!    makes their next waitset-park return immediately, closing the
//!    register→park race.
//!
//! External (non-vthread) callers fall back to a real condition variable with
//! a generation counter, so harness code can block on simulation progress.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::machine::{current_ctx, Machine, MachineInner, Tid};

struct WaitSetShared {
    machine: Arc<MachineInner>,
    list: Mutex<Vec<Tid>>,
    ext_gen: Mutex<u64>,
    ext_cv: Condvar,
}

/// A shareable virtual-time condition variable. Cheap to clone.
#[derive(Clone)]
pub struct WaitSet {
    shared: Arc<WaitSetShared>,
}

impl std::fmt::Debug for WaitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitSet")
            .field("waiters", &self.shared.list.lock().len())
            .finish()
    }
}

impl WaitSet {
    /// Create a wait set bound to `machine`.
    pub fn new(machine: &Machine) -> WaitSet {
        WaitSet {
            shared: Arc::new(WaitSetShared {
                machine: Arc::clone(&machine.inner),
                list: Mutex::new(Vec::new()),
                ext_gen: Mutex::new(0),
                ext_cv: Condvar::new(),
            }),
        }
    }

    /// Wake all waiters (and pre-post tokens for registrants that have not
    /// parked yet). Call after any state change a predicate may observe.
    pub fn notify_all(&self) {
        {
            let mut g = self.shared.ext_gen.lock();
            *g = g.wrapping_add(1);
            self.shared.ext_cv.notify_all();
        }
        let tids: Vec<Tid> = {
            let mut l = self.shared.list.lock();
            std::mem::take(&mut *l)
        };
        self.shared.machine.notify_tids(&tids);
    }

    /// Block until `f` returns `Some`, re-evaluating after every
    /// notification; returns the produced value.
    pub fn wait_for<T>(&self, mut f: impl FnMut() -> Option<T>) -> T {
        // Fast path.
        if let Some(v) = f() {
            return v;
        }
        let as_vthread = current_ctx()
            .filter(|ctx| Arc::ptr_eq(&ctx.machine().inner, &self.shared.machine));
        match as_vthread {
            Some(ctx) => loop {
                if let Some(v) = f() {
                    return v;
                }
                self.shared.list.lock().push(ctx.tid);
                if let Some(v) = f() {
                    return v;
                }
                self.shared.machine.park_waiting(ctx.tid);
            },
            None => loop {
                let gen = *self.shared.ext_gen.lock();
                if let Some(v) = f() {
                    return v;
                }
                let mut g = self.shared.ext_gen.lock();
                while *g == gen {
                    self.shared.ext_cv.wait(&mut g);
                }
            },
        }
    }

    /// Block until `pred` returns true.
    pub fn wait_until(&self, mut pred: impl FnMut() -> bool) {
        self.wait_for(|| if pred() { Some(()) } else { None });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostKind, Machine, MachineConfig};
    use parking_lot::Mutex as PMutex;
    use std::sync::Arc;

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 2,
            ..Default::default()
        })
    }

    #[test]
    fn pingpong_between_vthreads() {
        let m = machine();
        let state = Arc::new(PMutex::new(0u32));
        let ws = WaitSet::new(&m);

        let s1 = Arc::clone(&state);
        let w1 = ws.clone();
        let a = m.spawn("a", move |ctx| {
            for _ in 0..100 {
                w1.wait_until(|| *s1.lock() % 2 == 0);
                ctx.charge(CostKind::Misc, 100.0);
                *s1.lock() += 1;
                w1.notify_all();
            }
        });
        let s2 = Arc::clone(&state);
        let w2 = ws.clone();
        let b = m.spawn("b", move |ctx| {
            for _ in 0..100 {
                w2.wait_until(|| *s2.lock() % 2 == 1);
                ctx.charge(CostKind::Misc, 100.0);
                *s2.lock() += 1;
                w2.notify_all();
            }
        });
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(*state.lock(), 200);
    }

    #[test]
    fn external_thread_can_wait_on_vthread_progress() {
        let m = machine();
        let flag = Arc::new(PMutex::new(false));
        let ws = WaitSet::new(&m);
        let f2 = Arc::clone(&flag);
        let w2 = ws.clone();
        let _h = m.spawn("setter", move |ctx| {
            ctx.charge(CostKind::Misc, 1e6);
            *f2.lock() = true;
            w2.notify_all();
        });
        // Called from the (external) test thread.
        ws.wait_until(|| *flag.lock());
        assert!(*flag.lock());
    }

    #[test]
    fn vthread_waits_for_external_notify() {
        let m = machine();
        let flag = Arc::new(PMutex::new(false));
        let ws = WaitSet::new(&m);
        let f2 = Arc::clone(&flag);
        let w2 = ws.clone();
        let h = m.spawn("waiter", move |_| {
            w2.wait_until(|| *f2.lock());
            123
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        *flag.lock() = true;
        ws.notify_all();
        assert_eq!(h.join().unwrap(), 123);
    }

    #[test]
    fn wait_for_returns_value() {
        let m = machine();
        let ws = WaitSet::new(&m);
        let v = ws.wait_for(|| Some(5));
        assert_eq!(v, 5);
    }

    #[test]
    fn many_waiters_all_wake() {
        let m = machine();
        let flag = Arc::new(PMutex::new(false));
        let ws = WaitSet::new(&m);
        let hs: Vec<_> = (0..32)
            .map(|i| {
                let f = Arc::clone(&flag);
                let w = ws.clone();
                m.spawn(&format!("w{i}"), move |_| w.wait_until(|| *f.lock()))
            })
            .collect();
        let f = Arc::clone(&flag);
        let w = ws.clone();
        let setter = m.spawn("setter", move |ctx| {
            ctx.sleep(1e6);
            *f.lock() = true;
            w.notify_all();
        });
        setter.join().unwrap();
        for h in hs {
            h.join().unwrap();
        }
    }
}
