//! The SSB `date` dimension: one row per calendar day, 1992-01-01 through
//! 1998-12-31 (2,556 days — kept at full size; it is tiny).

use workshare_common::codec::{Page, PageBuilder};
use workshare_common::{ColType, Column, Schema, Value};

/// Years covered by the date dimension.
pub const YEARS: std::ops::RangeInclusive<i64> = 1992..=1998;

/// Number of rows in the date dimension (7 years incl. two leap years:
/// 5×365 + 2×366; the SSB spec's "2556" rounds this).
pub const DATE_DAYS: usize = 2557;

const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn month_len(y: i64, m: usize) -> i64 {
    match m {
        1 => 31,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        3 => 31,
        4 => 30,
        5 => 31,
        6 => 30,
        7 => 31,
        8 => 31,
        9 => 30,
        10 => 31,
        11 => 30,
        12 => 31,
        _ => unreachable!(),
    }
}

/// `yyyymmdd` integer key for a date.
pub fn date_key(y: i64, m: i64, d: i64) -> i64 {
    y * 10_000 + m * 100 + d
}

/// Schema of the `date` table.
pub fn date_schema() -> Schema {
    Schema::new(vec![
        Column::new("d_datekey", ColType::Int),
        Column::new("d_year", ColType::Int),
        Column::new("d_month", ColType::Str(9)),
        Column::new("d_yearmonthnum", ColType::Int),
        Column::new("d_weeknuminyear", ColType::Int),
        Column::new("d_daynuminyear", ColType::Int),
    ])
}

/// Generate the full date dimension as (schema, pages, row count).
pub fn gen_date_table() -> (Schema, Vec<Page>, usize) {
    let schema = date_schema();
    let mut b = PageBuilder::new(&schema);
    let mut rows = 0usize;
    for y in YEARS {
        let mut daynum = 0i64;
        for m in 1..=12 {
            for d in 1..=month_len(y, m as usize) {
                daynum += 1;
                b.push(&[
                    Value::Int(date_key(y, m, d)),
                    Value::Int(y),
                    Value::str(MONTH_NAMES[(m - 1) as usize]),
                    Value::Int(y * 100 + m),
                    Value::Int((daynum - 1) / 7 + 1),
                    Value::Int(daynum),
                ]);
                rows += 1;
            }
        }
    }
    let pages = b.finish();
    (schema, pages, rows)
}

/// All valid date keys, in calendar order (used to draw random fact dates).
pub fn all_date_keys() -> Vec<i64> {
    let mut keys = Vec::with_capacity(DATE_DAYS);
    for y in YEARS {
        for m in 1..=12 {
            for d in 1..=month_len(y, m as usize) {
                keys.push(date_key(y, m, d));
            }
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_2556_days() {
        let (_, pages, rows) = gen_date_table();
        assert_eq!(rows, DATE_DAYS);
        let total: usize = pages.iter().map(|p| p.row_count()).sum();
        assert_eq!(total, DATE_DAYS);
        assert_eq!(all_date_keys().len(), DATE_DAYS);
    }

    #[test]
    fn leap_years_handled() {
        assert!(is_leap(1992));
        assert!(is_leap(1996));
        assert!(!is_leap(1993));
        assert!(!is_leap(1900));
        assert!(is_leap(2000));
        assert_eq!(month_len(1992, 2), 29);
        assert_eq!(month_len(1993, 2), 28);
    }

    #[test]
    fn keys_are_sorted_and_unique() {
        let keys = all_date_keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys[0], 19920101);
        assert_eq!(*keys.last().unwrap(), 19981231);
    }

    #[test]
    fn rows_decode_with_consistent_year() {
        let (schema, pages, _) = gen_date_table();
        let yi = schema.col("d_year");
        let ki = schema.col("d_datekey");
        for p in &pages {
            for row in p.decode_all(&schema) {
                let key = row[ki].as_int();
                assert_eq!(row[yi].as_int(), key / 10_000);
            }
        }
    }
}
