//! TPC-H `lineitem` — the substrate of the paper's Figure 6 workload
//! (identical TPC-H Q1 instances, which stress scan sharing and SP result
//! forwarding).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use workshare_common::codec::{Page, PageBuilder};
use workshare_common::{ColType, Column, Schema, Value};
use workshare_storage::{StorageManager, TableId};

use crate::dates::all_date_keys;
use crate::SsbScale;

/// Schema of the TPC-H `lineitem` table (columns Q1 touches).
pub fn lineitem_schema() -> Schema {
    Schema::new(vec![
        Column::new("l_orderkey", ColType::Int),
        Column::new("l_linenumber", ColType::Int),
        Column::new("l_quantity", ColType::Int),
        Column::new("l_extendedprice", ColType::Int),
        Column::new("l_discount", ColType::Int),
        Column::new("l_tax", ColType::Int),
        Column::new("l_returnflag", ColType::Str(1)),
        Column::new("l_linestatus", ColType::Str(1)),
        Column::new("l_shipdate", ColType::Int),
    ])
}

/// Generate `lineitem` (deterministic in `(scale, seed)`).
pub fn gen_lineitem(scale: SsbScale, seed: u64) -> (Schema, Vec<Page>, usize) {
    let schema = lineitem_schema();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x71C4);
    let n = scale.lineitem_rows();
    let dates = all_date_keys();
    let mut b = PageBuilder::new(&schema);
    let mut orderkey = 0i64;
    let mut line = 7i64;
    for _ in 0..n {
        if line > rng.gen_range(1..=7) {
            orderkey += 1;
            line = 1;
        } else {
            line += 1;
        }
        let quantity = rng.gen_range(1..=50i64);
        let flag = ["A", "N", "R"][rng.gen_range(0..3usize)];
        let status = if flag == "N" { "O" } else { "F" };
        b.push(&[
            Value::Int(orderkey),
            Value::Int(line),
            Value::Int(quantity),
            Value::Int(rng.gen_range(900..=10_000i64) * quantity),
            Value::Int(rng.gen_range(0..=10i64)),
            Value::Int(rng.gen_range(0..=8i64)),
            Value::str(flag),
            Value::str(status),
            Value::Int(dates[rng.gen_range(0..dates.len())]),
        ]);
    }
    let pages = b.finish();
    (schema, pages, n)
}

/// Table ids of a loaded TPC-H (Q1 subset) database.
#[derive(Debug, Clone, Copy)]
pub struct TpchTables {
    /// The lineitem table.
    pub lineitem: TableId,
}

/// Generate and register `lineitem`.
pub fn load_tpch(sm: &StorageManager, scale: SsbScale, seed: u64) -> TpchTables {
    let (s, p, _) = gen_lineitem(scale, seed);
    TpchTables {
        lineitem: sm.create_table("lineitem", s, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::CostModel;
    use workshare_storage::StorageConfig;

    #[test]
    fn deterministic_and_right_size() {
        let s = SsbScale::new(0.1);
        let (sc, p1, n) = gen_lineitem(s, 11);
        let (_, p2, _) = gen_lineitem(s, 11);
        assert_eq!(n, s.lineitem_rows());
        let r1: Vec<_> = p1.iter().flat_map(|p| p.decode_all(&sc)).collect();
        let r2: Vec<_> = p2.iter().flat_map(|p| p.decode_all(&sc)).collect();
        assert_eq!(r1, r2);
    }

    #[test]
    fn flags_and_status_consistent() {
        let s = SsbScale::new(0.05);
        let (sc, pages, _) = gen_lineitem(s, 2);
        let fi = sc.col("l_returnflag");
        let si = sc.col("l_linestatus");
        for p in &pages {
            for r in p.decode_all(&sc) {
                let f = r[fi].as_str().to_string();
                let st = r[si].as_str().to_string();
                assert!(["A", "N", "R"].contains(&f.as_str()));
                if f == "N" {
                    assert_eq!(st, "O");
                } else {
                    assert_eq!(st, "F");
                }
            }
        }
    }

    #[test]
    fn loads_into_storage() {
        let sm = StorageManager::new(StorageConfig::default(), CostModel::default());
        let t = load_tpch(&sm, SsbScale::new(0.05), 1);
        assert!(sm.row_count(t.lineitem) >= 100);
        assert_eq!(sm.table("lineitem"), t.lineitem);
    }
}
