//! Star Schema Benchmark tables: `customer`, `supplier`, `part`, `lineorder`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use workshare_common::codec::{Page, PageBuilder};
use workshare_common::{ColType, Column, Schema, Value};
use workshare_storage::{StorageManager, TableId};

use crate::dates::{all_date_keys, gen_date_table};
use crate::SsbScale;

/// The 25 SSB/TPC-H nations.
pub const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

/// The 5 SSB regions, aligned index-wise with `NATIONS` (5 nations each).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Region of the `i`-th nation (SSB assigns 5 nations per region).
pub fn region_of(nation_idx: usize) -> &'static str {
    // TPC-H nation→region assignment: exactly 5 nations per region.
    const MAP: [usize; 25] = [
        0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
    ];
    REGIONS[MAP[nation_idx]]
}

/// SSB city: first 9 chars of the nation (space-padded) + digit 0-9.
pub fn city_of(nation_idx: usize, c: usize) -> String {
    let mut base: String = NATIONS[nation_idx].chars().take(9).collect();
    while base.len() < 9 {
        base.push(' ');
    }
    format!("{base}{}", c % 10)
}

/// Schema of the `customer` dimension.
pub fn customer_schema() -> Schema {
    Schema::new(vec![
        Column::new("c_custkey", ColType::Int),
        Column::new("c_name", ColType::Str(18)),
        Column::new("c_city", ColType::Str(10)),
        Column::new("c_nation", ColType::Str(15)),
        Column::new("c_region", ColType::Str(12)),
        Column::new("c_mktsegment", ColType::Str(10)),
    ])
}

/// Generate `customer` (deterministic in `(scale, seed)`).
pub fn gen_customer(scale: SsbScale, seed: u64) -> (Schema, Vec<Page>, usize) {
    const SEGMENTS: [&str; 5] =
        ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
    let schema = customer_schema();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC057);
    let n = scale.customer_rows();
    let mut b = PageBuilder::new(&schema);
    for k in 1..=n {
        let nation = rng.gen_range(0..NATIONS.len());
        b.push(&[
            Value::Int(k as i64),
            Value::str(&format!("Customer#{k:09}")),
            Value::str(&city_of(nation, rng.gen_range(0..10))),
            Value::str(NATIONS[nation]),
            Value::str(region_of(nation)),
            Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
        ]);
    }
    let pages = b.finish();
    (schema, pages, n)
}

/// Schema of the `supplier` dimension.
pub fn supplier_schema() -> Schema {
    Schema::new(vec![
        Column::new("s_suppkey", ColType::Int),
        Column::new("s_name", ColType::Str(18)),
        Column::new("s_city", ColType::Str(10)),
        Column::new("s_nation", ColType::Str(15)),
        Column::new("s_region", ColType::Str(12)),
    ])
}

/// Generate `supplier`.
pub fn gen_supplier(scale: SsbScale, seed: u64) -> (Schema, Vec<Page>, usize) {
    let schema = supplier_schema();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5337);
    let n = scale.supplier_rows();
    let mut b = PageBuilder::new(&schema);
    for k in 1..=n {
        let nation = rng.gen_range(0..NATIONS.len());
        b.push(&[
            Value::Int(k as i64),
            Value::str(&format!("Supplier#{k:09}")),
            Value::str(&city_of(nation, rng.gen_range(0..10))),
            Value::str(NATIONS[nation]),
            Value::str(region_of(nation)),
        ]);
    }
    let pages = b.finish();
    (schema, pages, n)
}

/// Schema of the `part` dimension.
pub fn part_schema() -> Schema {
    Schema::new(vec![
        Column::new("p_partkey", ColType::Int),
        Column::new("p_name", ColType::Str(22)),
        Column::new("p_mfgr", ColType::Str(6)),
        Column::new("p_category", ColType::Str(7)),
        Column::new("p_brand1", ColType::Str(9)),
        Column::new("p_color", ColType::Str(11)),
        Column::new("p_size", ColType::Int),
    ])
}

/// Generate `part`. Categories follow SSB: `MFGR#mc` with manufacturer
/// `m ∈ 1..=5`, category digit `c ∈ 1..=5`; brand = category + 1..=40.
pub fn gen_part(scale: SsbScale, seed: u64) -> (Schema, Vec<Page>, usize) {
    const COLORS: [&str; 10] = [
        "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
        "blanched", "blue", "blush",
    ];
    let schema = part_schema();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA47);
    let n = scale.part_rows();
    let mut b = PageBuilder::new(&schema);
    for k in 1..=n {
        let mfgr = rng.gen_range(1..=5);
        let cat = rng.gen_range(1..=5);
        let brand = rng.gen_range(1..=40);
        b.push(&[
            Value::Int(k as i64),
            Value::str(&format!("part {k}")),
            Value::str(&format!("MFGR#{mfgr}")),
            Value::str(&format!("MFGR#{mfgr}{cat}")),
            Value::str(&format!("MFGR#{mfgr}{cat}{brand:02}")),
            Value::str(COLORS[rng.gen_range(0..COLORS.len())]),
            Value::Int(rng.gen_range(1..=50)),
        ]);
    }
    let pages = b.finish();
    (schema, pages, n)
}

/// Schema of the `lineorder` fact table.
pub fn lineorder_schema() -> Schema {
    Schema::new(vec![
        Column::new("lo_orderkey", ColType::Int),
        Column::new("lo_linenumber", ColType::Int),
        Column::new("lo_custkey", ColType::Int),
        Column::new("lo_partkey", ColType::Int),
        Column::new("lo_suppkey", ColType::Int),
        Column::new("lo_orderdate", ColType::Int),
        Column::new("lo_quantity", ColType::Int),
        Column::new("lo_extendedprice", ColType::Int),
        Column::new("lo_discount", ColType::Int),
        Column::new("lo_revenue", ColType::Int),
        Column::new("lo_supplycost", ColType::Int),
    ])
}

/// Generate `lineorder` with FKs uniform over the dimension key ranges.
pub fn gen_lineorder(scale: SsbScale, seed: u64) -> (Schema, Vec<Page>, usize) {
    let schema = lineorder_schema();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFAC7);
    let n = scale.lineorder_rows();
    let customers = scale.customer_rows() as i64;
    let suppliers = scale.supplier_rows() as i64;
    let parts = scale.part_rows() as i64;
    let dates = all_date_keys();
    let mut b = PageBuilder::new(&schema);
    let mut orderkey = 0i64;
    let mut line = 7i64;
    for _ in 0..n {
        // ~4 lines per order on average, like SSB.
        if line > rng.gen_range(1..=7) {
            orderkey += 1;
            line = 1;
        } else {
            line += 1;
        }
        let quantity = rng.gen_range(1..=50i64);
        let price = rng.gen_range(900..=10_000i64) * quantity;
        let discount = rng.gen_range(0..=10i64);
        b.push(&[
            Value::Int(orderkey),
            Value::Int(line),
            Value::Int(rng.gen_range(1..=customers)),
            Value::Int(rng.gen_range(1..=parts)),
            Value::Int(rng.gen_range(1..=suppliers)),
            Value::Int(dates[rng.gen_range(0..dates.len())]),
            Value::Int(quantity),
            Value::Int(price),
            Value::Int(discount),
            Value::Int(price * (100 - discount) / 100),
            Value::Int(price * 6 / 10),
        ]);
    }
    let pages = b.finish();
    (schema, pages, n)
}

/// Table ids of a loaded SSB database.
#[derive(Debug, Clone, Copy)]
pub struct SsbTables {
    /// Fact table.
    pub lineorder: TableId,
    /// Date dimension.
    pub date: TableId,
    /// Customer dimension.
    pub customer: TableId,
    /// Supplier dimension.
    pub supplier: TableId,
    /// Part dimension.
    pub part: TableId,
}

/// Generate and register all SSB tables.
pub fn load_ssb(sm: &StorageManager, scale: SsbScale, seed: u64) -> SsbTables {
    let (ds, dp, _) = gen_date_table();
    let (cs, cp, _) = gen_customer(scale, seed);
    let (ss, sp, _) = gen_supplier(scale, seed);
    let (ps, pp, _) = gen_part(scale, seed);
    let (ls, lp, _) = gen_lineorder(scale, seed);
    SsbTables {
        date: sm.create_table("date", ds, dp),
        customer: sm.create_table("customer", cs, cp),
        supplier: sm.create_table("supplier", ss, sp),
        part: sm.create_table("part", ps, pp),
        lineorder: sm.create_table("lineorder", ls, lp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use workshare_common::{CostModel, Row};
    use workshare_storage::StorageConfig;

    fn rows(pages: &[Page], schema: &Schema) -> Vec<Row> {
        pages.iter().flat_map(|p| p.decode_all(schema)).collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let s = SsbScale::new(0.1);
        let (sc, p1, _) = gen_customer(s, 42);
        let (_, p2, _) = gen_customer(s, 42);
        assert_eq!(rows(&p1, &sc), rows(&p2, &sc));
        let (_, p3, _) = gen_customer(s, 43);
        assert_ne!(rows(&p1, &sc), rows(&p3, &sc));
    }

    #[test]
    fn customer_keys_dense_and_nations_valid() {
        let s = SsbScale::new(0.1);
        let (sc, pages, n) = gen_customer(s, 1);
        let all = rows(&pages, &sc);
        assert_eq!(all.len(), n);
        let nations: HashSet<&str> = NATIONS.into_iter().collect();
        let ki = sc.col("c_custkey");
        let ni = sc.col("c_nation");
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r[ki].as_int(), (i + 1) as i64);
            assert!(nations.contains(r[ni].as_str()));
        }
    }

    #[test]
    fn nation_selectivity_near_one_twentyfifth() {
        let s = SsbScale::new(1.0);
        let (sc, pages, n) = gen_customer(s, 7);
        let ni = sc.col("c_nation");
        let hits = rows(&pages, &sc)
            .iter()
            .filter(|r| r[ni].as_str() == "FRANCE")
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.04).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn every_region_has_five_nations() {
        let mut counts = std::collections::HashMap::new();
        for i in 0..25 {
            *counts.entry(region_of(i)).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 5);
        assert!(counts.values().all(|&c| c == 5), "{counts:?}");
    }

    #[test]
    fn lineorder_fks_resolve() {
        let s = SsbScale::new(0.05);
        let (ls, pages, _) = gen_lineorder(s, 3);
        let all = rows(&pages, &ls);
        let dates: HashSet<i64> = all_date_keys().into_iter().collect();
        let ci = ls.col("lo_custkey");
        let si = ls.col("lo_suppkey");
        let pi = ls.col("lo_partkey");
        let di = ls.col("lo_orderdate");
        for r in &all {
            assert!((1..=s.customer_rows() as i64).contains(&r[ci].as_int()));
            assert!((1..=s.supplier_rows() as i64).contains(&r[si].as_int()));
            assert!((1..=s.part_rows() as i64).contains(&r[pi].as_int()));
            assert!(dates.contains(&r[di].as_int()));
        }
    }

    #[test]
    fn revenue_is_price_discounted() {
        let s = SsbScale::new(0.05);
        let (ls, pages, _) = gen_lineorder(s, 3);
        let pi = ls.col("lo_extendedprice");
        let di = ls.col("lo_discount");
        let ri = ls.col("lo_revenue");
        for r in rows(&pages, &ls) {
            let (p, d, rev) = (r[pi].as_int(), r[di].as_int(), r[ri].as_int());
            assert_eq!(rev, p * (100 - d) / 100);
            assert!((0..=10).contains(&d));
        }
    }

    #[test]
    fn part_brand_extends_category() {
        let s = SsbScale::new(0.1);
        let (ps, pages, _) = gen_part(s, 5);
        let ci = ps.col("p_category");
        let bi = ps.col("p_brand1");
        for r in rows(&pages, &ps) {
            assert!(r[bi].as_str().starts_with(r[ci].as_str()));
        }
    }

    #[test]
    fn load_registers_all_five_tables() {
        let sm = StorageManager::new(StorageConfig::default(), CostModel::default());
        let t = load_ssb(&sm, SsbScale::new(0.05), 9);
        assert_eq!(sm.table("lineorder"), t.lineorder);
        assert_eq!(sm.table("date"), t.date);
        assert!(sm.row_count(t.lineorder) >= 100);
        assert_eq!(sm.row_count(t.date), crate::DATE_DAYS);
    }

    #[test]
    fn city_format_is_nine_chars_plus_digit() {
        let c = city_of(6, 3); // FRANCE
        assert_eq!(c.len(), 10);
        assert!(c.starts_with("FRANCE"));
        assert!(c.ends_with('3'));
    }
}
