//! # workshare-datagen — deterministic SSB / TPC-H data generation
//!
//! Generates the Star Schema Benchmark tables (`date`, `customer`,
//! `supplier`, `part`, `lineorder`) and the TPC-H `lineitem` table (for the
//! Figure 6 TPC-H Q1 workload), then loads them into a
//! [`StorageManager`](workshare_storage::StorageManager).
//!
//! ## Scale
//!
//! Row counts are **1/100** of standard SSB for the fact table and **1/10**
//! for dimensions (dimensions need enough rows for 1/25-nation selectivity
//! granularity at small scale factors; see DESIGN.md §2):
//!
//! | table     | standard SSB        | ours                      |
//! |-----------|---------------------|---------------------------|
//! | lineorder | 6,000,000 × SF      | 60,000 × SF               |
//! | customer  | 30,000 × SF         | 3,000 × SF                |
//! | supplier  | 2,000 × SF          | 200 × SF                  |
//! | part      | 200k × (1+log2 SF)  | 2,000 × (1+⌊log2 SF⌋)     |
//! | date      | 2,556 (7 years)     | 2,556 (unchanged)         |
//!
//! Selectivities are ratios (nations are 1/25 of customers, year ranges are
//! fractions of 7 years), so predicate selectivity, join fan-in and sharing
//! opportunities match the paper's at every scale.
//!
//! Generation is deterministic in `(scale, seed)`.

mod dates;
mod ssb;
mod tpch;

pub use dates::{date_key, date_schema, gen_date_table, DATE_DAYS, YEARS};
pub use ssb::{
    city_of, customer_schema, gen_customer, gen_lineorder, gen_part, gen_supplier,
    lineorder_schema, load_ssb, part_schema, region_of, supplier_schema, SsbTables,
    NATIONS, REGIONS,
};
pub use tpch::{gen_lineitem, lineitem_schema, load_tpch, TpchTables};

/// Scaled SSB row counts for our 1/100 reproduction scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsbScale {
    /// Paper-equivalent scale factor (SF 1 ⇒ 60 k lineorder rows here).
    pub sf: f64,
}

impl SsbScale {
    /// Construct; scale factors below 0.01 are clamped up.
    pub fn new(sf: f64) -> SsbScale {
        SsbScale { sf: sf.max(0.01) }
    }

    /// Fact-table rows.
    pub fn lineorder_rows(&self) -> usize {
        ((60_000.0 * self.sf) as usize).max(100)
    }

    /// Customer rows.
    pub fn customer_rows(&self) -> usize {
        ((3_000.0 * self.sf) as usize).max(50)
    }

    /// Supplier rows.
    pub fn supplier_rows(&self) -> usize {
        ((200.0 * self.sf) as usize).max(25)
    }

    /// Part rows.
    pub fn part_rows(&self) -> usize {
        let log = if self.sf >= 2.0 {
            self.sf.log2().floor()
        } else {
            0.0
        };
        ((2_000.0 * (1.0 + log)) as usize).max(200)
    }

    /// TPC-H lineitem rows (same 1/100 scale: SF 1 ⇒ 60 k rows).
    pub fn lineitem_rows(&self) -> usize {
        ((60_000.0 * self.sf) as usize).max(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_row_counts() {
        let s = SsbScale::new(1.0);
        assert_eq!(s.lineorder_rows(), 60_000);
        assert_eq!(s.customer_rows(), 3_000);
        assert_eq!(s.supplier_rows(), 200);
        assert_eq!(s.part_rows(), 2_000);
        let s10 = SsbScale::new(10.0);
        assert_eq!(s10.lineorder_rows(), 600_000);
        assert!(s10.part_rows() > s.part_rows());
    }

    #[test]
    fn tiny_scale_clamps_to_minimums() {
        let s = SsbScale::new(0.0);
        assert!(s.lineorder_rows() >= 100);
        assert!(s.supplier_rows() >= 25);
    }
}
