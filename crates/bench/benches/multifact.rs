//! Macro-benchmark: sharded per-fact CJOIN stages vs the legacy
//! single-stage-with-QPipe-fallback topology on a **two-fact mixed crowd**.
//!
//! The workload is the multi-fact dashboard shape: **plan-diverse** SSB
//! Q3.2 instances (the wide-disjunction template of Figs. 14/15 — random
//! nation sets make every join prefix distinct, so QPipe's SP finds nothing
//! to reuse, the regime where the paper's GQP wins), alternating between
//! two fact tables that share the dimension tables (`lineorder` /
//! `lineorder2`). Both runs pin the governed engine to the shared path, so
//! the *only* difference is the topology:
//!
//! * **sharded** (`RunConfig::multifact = true`, the default): every star
//!   query enters the CJOIN stage of its own fact — two Global Query
//!   Plans, each sharing one circular scan, shared filters, and batched
//!   admission across its half of the crowd.
//! * **fallback** (`multifact = false`, the pre-sharding behavior): only
//!   `lineorder` stars enter a GQP; every `lineorder2` star falls back to
//!   QPipe-with-sharing, which rebuilds per-query hash joins (random
//!   predicates defeat SP) while fighting the stage's crowd for cores.
//!
//! Mean virtual response times are printed as JSON lines (the
//! `filter_vectorized` convention):
//!
//! ```text
//! {"bench":"speedup_multifact/64","sharded_secs":…,"fallback_secs":…,
//!  "ratio":…,"stages":2}
//! ```
//!
//! Acceptance (checked by this binary, non-zero exit on failure): sharded
//! stages are ≥ 1.5× faster in mean response time at 64 mixed queries.

use workshare_common::{Predicate, Value};
use workshare_core::harness::run_batch;
use workshare_core::{workload, Dataset, ExecPolicy, RunConfig, StarQuery};

/// Mixed two-fact batch: plan-diverse wide Q3.2 instances alternating
/// between the facts. Disjunction widths cycle deterministically; the
/// random nation sets make join-prefix signatures effectively unique, so
/// the fallback's QPipe side really pays per-query hash joins — and a wide
/// fact disjunction that query-centric plans must evaluate against every
/// fact tuple while the GQP applies it only to joined output (§3.2).
fn mixed_batch(n: usize, seed: u64) -> Vec<StarQuery> {
    let mut r = workload::rng(seed);
    let ls = workshare_datagen::lineorder_schema();
    (0..n)
        .map(|i| {
            let (nc, ns) = (1 + i % 3, 1 + (i / 3) % 3);
            let mut q = workload::ssb_q3_2_wide(i as u64, &mut r, nc, ns);
            q.fact_pred = Predicate::in_set(
                ls.col("lo_discount"),
                (0..=10).map(Value::Int).collect::<Vec<_>>(),
            );
            if i % 2 == 1 {
                q.fact = "lineorder2".into();
            }
            q
        })
        .collect()
}

fn main() {
    let dataset = Dataset::ssb_two_facts(1.0, 42);
    let gate_n = 64usize;
    let gate_ratio = 1.5;
    let mut failures = Vec::new();
    for n in [4usize, 16, 64] {
        let queries = mixed_batch(n, 7 + n as u64);
        let sharded_cfg = RunConfig::governed(ExecPolicy::Shared);
        let sharded = run_batch(&dataset, &sharded_cfg, &queries, false);
        let mut fallback_cfg = RunConfig::governed(ExecPolicy::Shared);
        fallback_cfg.multifact = false;
        let fallback = run_batch(&dataset, &fallback_cfg, &queries, false);
        let ratio = fallback.mean_latency_secs() / sharded.mean_latency_secs();
        println!(
            "{{\"bench\":\"speedup_multifact/{}\",\"sharded_secs\":{:.6},\"fallback_secs\":{:.6},\"ratio\":{:.3},\"stages\":{}}}",
            n,
            sharded.mean_latency_secs(),
            fallback.mean_latency_secs(),
            ratio,
            sharded.stages.len(),
        );
        if sharded.stages.len() != 2 {
            failures.push(format!(
                "expected 2 sharded stages at {n} queries, got {:?}",
                sharded.stages
            ));
        }
        if n == gate_n && ratio < gate_ratio {
            failures.push(format!(
                "sharded stages only {ratio:.3}x over the qpipe fallback at {n} mixed queries (need >={gate_ratio}x)"
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
