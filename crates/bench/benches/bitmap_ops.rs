//! Micro-benchmark: QueryBitmap primitives at the widths the GQP uses
//! (64 / 256 / 512 query slots).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use workshare_common::QueryBitmap;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap_ops");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for bits in [64usize, 256, 512] {
        let mut a = QueryBitmap::zeros(bits);
        let mut e = QueryBitmap::zeros(bits);
        for i in (0..bits).step_by(3) {
            a.set(i);
        }
        for i in (0..bits).step_by(2) {
            e.set(i);
        }
        let referencing = QueryBitmap::ones(bits);
        g.bench_with_input(BenchmarkId::new("and_filtered", bits), &bits, |b, _| {
            b.iter(|| {
                let mut t = a.clone();
                std::hint::black_box(t.and_filtered(Some(&e), &referencing))
            })
        });
        g.bench_with_input(BenchmarkId::new("clone", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(a.clone()))
        });
        g.bench_with_input(BenchmarkId::new("iter_ones", bits), &bits, |b, _| {
            b.iter(|| std::hint::black_box(a.iter_ones().sum::<usize>()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
