//! Micro-benchmark: SPL vs push-FIFO exchange under fan-out, plus the SPL
//! max-size ablation (§4: "changing the maximum size of the SPL does not
//! heavily affect performance").
//!
//! Measured in *virtual time* via `iter_custom`: the reported duration is
//! the simulated makespan of pushing a fixed page stream to K consumers —
//! exactly the quantity the paper's Figure 6 compares.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use workshare_common::{CostModel, Value};
use workshare_qpipe::batch::TupleBatch;
use workshare_qpipe::exchange::{Exchange, ExchangeKind};
use workshare_sim::{Machine, MachineConfig};

fn run_fanout(kind: ExchangeKind, consumers: usize, pages: usize, cap: usize) -> f64 {
    let m = Machine::new(MachineConfig {
        cores: 24,
        ..Default::default()
    });
    let ex = Exchange::new(kind, &m, CostModel::default(), cap);
    let readers: Vec<_> = (0..consumers).map(|_| ex.attach(None)).collect();
    let exp = ex.clone();
    m.spawn("coord", move |ctx| {
        let producer = {
            let exp = exp.clone();
            ctx.machine().spawn("prod", move |ctx| {
                for i in 0..pages {
                    let rows: Vec<_> = (0..200)
                        .map(|j| vec![Value::Int((i * 200 + j) as i64)])
                        .collect();
                    exp.emit(ctx, Arc::new(TupleBatch::new(rows)));
                }
                exp.close();
            })
        };
        let cs: Vec<_> = readers
            .into_iter()
            .map(|mut r| {
                ctx.machine().spawn("c", move |ctx| {
                    while let Some(b) = r.next(ctx) {
                        // Consumers do per-tuple work, as real operators do.
                        ctx.charge(
                            workshare_sim::CostKind::Misc,
                            50.0 * b.len() as f64,
                        );
                    }
                })
            })
            .collect();
        producer.join().unwrap();
        for c in cs {
            c.join().unwrap();
        }
    })
    .join()
    .unwrap();
    m.now_ns()
}

fn bench_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange_fanout_virtual_time");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for consumers in [1usize, 4, 16] {
        for (label, kind) in [("fifo", ExchangeKind::Fifo), ("spl", ExchangeKind::Spl)] {
            g.bench_with_input(
                BenchmarkId::new(label, consumers),
                &consumers,
                |b, &consumers| {
                    b.iter_custom(|iters| {
                        let mut total = 0.0;
                        for _ in 0..iters {
                            total += run_fanout(kind, consumers, 50, 8);
                        }
                        Duration::from_nanos(total as u64)
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_spl_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("spl_max_size_virtual_time");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.warm_up_time(std::time::Duration::from_millis(300));
    // Paper §4: 8 consumers, cap swept; response barely moves.
    for cap_pages in [2usize, 8, 64, 512] {
        g.bench_with_input(
            BenchmarkId::from_parameter(cap_pages),
            &cap_pages,
            |b, &cap| {
                b.iter_custom(|iters| {
                    let mut total = 0.0;
                    for _ in 0..iters {
                        total += run_fanout(ExchangeKind::Spl, 8, 50, cap);
                    }
                    Duration::from_nanos(total as u64)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench_fanout, bench_spl_cap
}
criterion_main!(benches);
