//! Macro-benchmark: the sharing governor vs the two static policies across
//! the concurrency axis.
//!
//! For each concurrency level the same SSB Q3.2 batch is run under three
//! governed configurations — always query-centric (`Gov-QC`), always shared
//! (`Gov-Shared`), and the cost-driven `Adaptive` router — in **two
//! regimes** whose crossovers point in opposite directions:
//!
//! * `disk` (SF 3, buffered disk): the paper's headline regime — one
//!   circular scan feeds everyone while private scans split the device, so
//!   sharing wins and the margin grows with concurrency.
//! * `mem` (SF 0.1, memory-resident): the scan amortizes almost nothing
//!   and every admission serializes in the preprocessor, so private plans
//!   win back the crowds while the pipelined shared plan still takes the
//!   low end.
//!
//! Mean virtual response times are printed as JSON lines (the
//! `filter_vectorized` convention):
//!
//! ```text
//! {"bench":"adaptive_router/disk/mean_latency/64","query_centric_secs":…,
//!  "shared_secs":…,"adaptive_secs":…,"best":"Gov-Shared",
//!  "adaptive_vs_best":1.00,"routed_shared":64,"routed_query_centric":0,
//!  "flips":0}
//! ```
//!
//! Acceptance (checked by this binary, non-zero exit on failure): in each
//! regime the adaptive policy lands within 10 % of the *better* static
//! policy at both ends of the sweep (1 and 64 concurrent queries) — the
//! governor must match whichever execution model wins, without being told
//! which regime it is in.

use workshare_core::harness::run_batch;
use workshare_core::{workload, Dataset, ExecPolicy, IoMode, RunConfig, StarQuery};

fn batch(n: usize, seed: u64) -> Vec<StarQuery> {
    let mut r = workload::rng(seed);
    (0..n).map(|i| workload::ssb_q3_2(i as u64, &mut r)).collect()
}

fn sweep_regime(
    regime: &str,
    dataset: &Dataset,
    io_mode: IoMode,
    sweep: &[usize],
    gate: &[usize],
    failures: &mut Vec<String>,
) {
    for &n in sweep {
        let queries = batch(n, 7 + n as u64);
        let mut means = Vec::new();
        for policy in [
            ExecPolicy::QueryCentric,
            ExecPolicy::Shared,
            ExecPolicy::Adaptive,
        ] {
            let mut cfg = RunConfig::governed(policy);
            cfg.io_mode = io_mode;
            let rep = run_batch(dataset, &cfg, &queries, false);
            means.push((policy, rep.mean_latency_secs(), rep.governor));
        }
        let (qc, sh, ad) = (means[0].1, means[1].1, means[2].1);
        let (best_label, best) = if qc <= sh {
            ("Gov-QC", qc)
        } else {
            ("Gov-Shared", sh)
        };
        let ratio = ad / best;
        let gov = means[2].2.expect("adaptive run reports governor stats");
        println!(
            "{{\"bench\":\"adaptive_router/{}/mean_latency/{}\",\"query_centric_secs\":{:.6},\"shared_secs\":{:.6},\"adaptive_secs\":{:.6},\"best\":\"{}\",\"adaptive_vs_best\":{:.3},\"routed_shared\":{},\"routed_query_centric\":{},\"flips\":{}}}",
            regime, n, qc, sh, ad, best_label, ratio, gov.routed_shared, gov.routed_query_centric, gov.flips
        );
        if gate.contains(&n) && ratio > 1.10 {
            failures.push(format!(
                "[{regime}] adaptive {ratio:.3}x of best ({best_label}) at {n} queries exceeds 1.10x"
            ));
        }
    }
}

fn main() {
    let gate = [1usize, 64];
    let mut failures = Vec::new();
    // The paper's headline regime: disk-resident, sharing wins at scale.
    sweep_regime(
        "disk",
        &Dataset::ssb(3.0, 42),
        IoMode::BufferedDisk,
        &[1, 4, 16, 64, 256],
        &gate,
        &mut failures,
    );
    // The inverted regime: memory-resident tiny fact, admission-bound —
    // private plans win back the crowds.
    sweep_regime(
        "mem",
        &Dataset::ssb(0.1, 42),
        IoMode::Memory,
        &[1, 4, 16, 64, 256],
        &gate,
        &mut failures,
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
