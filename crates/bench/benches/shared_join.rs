//! Micro-benchmark: shared hash-join bookkeeping vs query-centric joins
//! (real CPU time of the underlying data structures).
//!
//! The §5.2.2 trade-off in miniature: for Q concurrent queries over the same
//! equi-join, the query-centric design probes Q private hash tables; the
//! shared design probes one union table but pays a bitmap AND per probe.
//! Query-centric work scales with Q; shared work stays nearly flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use workshare_common::fxhash::FxHashMap;
use workshare_common::QueryBitmap;

const DIM_ROWS: i64 = 2_000;
const FACT_ROWS: i64 = 50_000;

fn query_centric(nqueries: usize) -> u64 {
    // Q private hash tables, each over its own selected dimension subset.
    let tables: Vec<FxHashMap<i64, i64>> = (0..nqueries)
        .map(|q| {
            (0..DIM_ROWS)
                .filter(|k| (k + q as i64) % 25 == 0)
                .map(|k| (k, k * 2))
                .collect()
        })
        .collect();
    let mut hits = 0u64;
    for i in 0..FACT_ROWS {
        let key = i % DIM_ROWS;
        for t in &tables {
            if t.contains_key(&key) {
                hits += 1;
            }
        }
    }
    hits
}

fn shared(nqueries: usize) -> u64 {
    // One union table with per-entry query bitmaps.
    let mut table: FxHashMap<i64, QueryBitmap> = FxHashMap::default();
    for q in 0..nqueries {
        for k in (0..DIM_ROWS).filter(|k| (k + q as i64) % 25 == 0) {
            table
                .entry(k)
                .or_insert_with(|| QueryBitmap::zeros(nqueries))
                .set(q);
        }
    }
    let referencing = QueryBitmap::ones(nqueries);
    let mut hits = 0u64;
    for i in 0..FACT_ROWS {
        let key = i % DIM_ROWS;
        let mut bits = QueryBitmap::ones(nqueries);
        if bits.and_filtered(table.get(&key), &referencing) {
            hits += bits.count_ones() as u64;
        }
    }
    hits
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("join_designs_real_time");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for q in [1usize, 8, 64] {
        g.bench_with_input(BenchmarkId::new("query_centric", q), &q, |b, &q| {
            b.iter(|| std::hint::black_box(query_centric(q)))
        });
        g.bench_with_input(BenchmarkId::new("shared", q), &q, |b, &q| {
            b.iter(|| std::hint::black_box(shared(q)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
