//! Micro-benchmark: circular scan vs independent scans (virtual makespan).
//!
//! The I/O-layer half of the paper's Table 1: one shared circular scan
//! serves K consumers with one disk stream; K independent scans interleave
//! K streams (paying seeks) and re-read pages.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use workshare_core::{
    harness::run_batch, workload, Dataset, IoMode, NamedConfig, RunConfig,
};

fn run(engine: NamedConfig, n: usize, dataset: &Dataset) -> f64 {
    let mut r = workload::rng(3);
    let queries: Vec<_> = (0..n)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let mut cfg = RunConfig::named(engine);
    cfg.io_mode = IoMode::BufferedDisk;
    run_batch(dataset, &cfg, &queries, false).makespan_secs * 1e9
}

fn bench(c: &mut Criterion) {
    let dataset = Dataset::ssb(0.25, 42);
    let mut g = c.benchmark_group("scan_sharing_virtual_makespan");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for n in [4usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("independent", n),
            &n,
            |b, &n| {
                b.iter_custom(|iters| {
                    let mut total = 0.0;
                    for _ in 0..iters {
                        total += run(NamedConfig::Qpipe, n, &dataset);
                    }
                    Duration::from_nanos(total as u64)
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("circular", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += run(NamedConfig::QpipeCs, n, &dataset);
                }
                Duration::from_nanos(total as u64)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
