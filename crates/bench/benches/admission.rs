//! Micro-benchmark: CJOIN admission cost (virtual time) — the retained
//! per-query **serial** admission path vs the default **shared-scan**
//! pipeline-overlapped path (§3.1/§5.2.2: "the cost of the admission phase
//! of CJOIN is increased as more tuples are selected").
//!
//! The serial path scans every dimension table once per pending query on
//! the preprocessor thread; the shared path groups the batch by distinct
//! `(dim, fk, pk)` filter core, scans each dimension **once per batch**
//! evaluating all pending predicates per decoded page, and runs the scans
//! on admission workers that overlap fact-page production.
//!
//! Speedups are printed as `speedup_shared_dims/N` JSON lines (the
//! `filter_vectorized` convention) over the **virtual** admission seconds
//! of the same batch under both paths. **Self-gating** (non-zero exit on
//! failure): the shared-scan path must be ≥2× cheaper at 32 queued queries
//! over shared dimensions. Virtual time makes the measurement
//! deterministic up to admission batch interleaving; a median over a few
//! runs absorbs that.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use workshare_core::{harness::run_batch, workload, Dataset, NamedConfig, RunConfig};

/// Virtual admission seconds for `n` queries at nation-disjunction width
/// `w`, under serial or shared-scan admission.
fn admission_secs(dataset: &Dataset, n: usize, w: usize, serial: bool) -> f64 {
    let mut r = workload::rng(9);
    let queries: Vec<_> = (0..n)
        .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, w, w))
        .collect();
    let mut cfg = RunConfig::named(NamedConfig::Cjoin);
    cfg.cjoin_serial_admission = serial;
    run_batch(dataset, &cfg, &queries, false).admission_secs()
}

fn bench(c: &mut Criterion) {
    let dataset = Dataset::ssb(0.5, 42);
    let mut g = c.benchmark_group("cjoin_admission_virtual_time");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1200));
    g.warm_up_time(Duration::from_millis(300));
    for (label, n, w) in [("narrow_8q", 8usize, 1usize), ("wide_8q", 8, 12), ("narrow_32q", 32, 1)]
    {
        for (mode, serial) in [("serial", true), ("shared", false)] {
            g.bench_with_input(
                BenchmarkId::new(mode, label),
                &(n, w, serial),
                |b, &(n, w, serial)| {
                    b.iter_custom(|iters| {
                        let mut total = 0.0;
                        for _ in 0..iters {
                            total += admission_secs(&dataset, n, w, serial) * 1e9;
                        }
                        Duration::from_nanos(total as u64)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}

/// Measure and print one serial/shared virtual-time ratio; gate the
/// 32-query shared-dimension points at ≥2×.
fn report_speedup(dataset: &Dataset, n: usize, w: usize, failures: &mut Vec<String>) {
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let serial = median((0..3).map(|_| admission_secs(dataset, n, w, true)).collect());
    let shared = median((0..3).map(|_| admission_secs(dataset, n, w, false)).collect());
    let ratio = serial / shared;
    println!(
        "{{\"bench\":\"cjoin_admission/speedup_shared_dims/{}q_w{}\",\"serial_secs\":{:.6},\"shared_secs\":{:.6},\"ratio\":{:.2}}}",
        n, w, serial, shared, ratio
    );
    // Acceptance bar: ≥2× at 32 queued queries over shared dimensions with
    // narrow predicates (w=1). Wide disjunctions are reported for
    // transparency but not gated: per-query predicate evaluation is the
    // part that cannot be shared, so the ratio honestly shrinks with
    // predicate width (≈2.4× at w=12).
    if n >= 32 && w == 1 && ratio < 2.0 {
        failures.push(format!(
            "shared-scan admission only {ratio:.2}x of serial at {n} queries (w={w}); bar is 2.0x"
        ));
    }
}

fn main() {
    benches();
    let dataset = Dataset::ssb(0.5, 42);
    let mut failures = Vec::new();
    for (n, w) in [(4usize, 1usize), (8, 1), (32, 1), (32, 12)] {
        report_speedup(&dataset, n, w, &mut failures);
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
