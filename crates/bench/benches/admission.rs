//! Micro-benchmark: CJOIN admission cost (virtual time) — the retained
//! per-query **serial** admission path vs the default **shared-scan**
//! pipeline-overlapped path (§3.1/§5.2.2: "the cost of the admission phase
//! of CJOIN is increased as more tuples are selected").
//!
//! The serial path scans every dimension table once per pending query on
//! the preprocessor thread; the shared path groups the batch by distinct
//! `(dim, fk, pk)` filter core, scans each dimension **once per batch**
//! evaluating all pending predicates per decoded page, and runs the scans
//! on admission workers that overlap fact-page production.
//!
//! Speedups are printed as `speedup_shared_dims/N` JSON lines (the
//! `filter_vectorized` convention) over the **virtual** admission seconds
//! of the same batch under both paths. **Self-gating** (non-zero exit on
//! failure): the shared-scan path must be ≥2× cheaper at 32 queued queries
//! over shared dimensions. Virtual time makes the measurement
//! deterministic up to admission batch interleaving; a median over a few
//! runs absorbs that.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};

use workshare_core::{harness::run_batch, workload, Dataset, NamedConfig, RunConfig};

/// Virtual admission seconds for `n` queries at nation-disjunction width
/// `w`, under serial or shared-scan admission.
fn admission_secs(dataset: &Dataset, n: usize, w: usize, serial: bool) -> f64 {
    let mut r = workload::rng(9);
    let queries: Vec<_> = (0..n)
        .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, w, w))
        .collect();
    let mut cfg = RunConfig::named(NamedConfig::Cjoin);
    cfg.cjoin_serial_admission = serial;
    run_batch(dataset, &cfg, &queries, false).admission_secs()
}

fn bench(c: &mut Criterion) {
    let dataset = Dataset::ssb(0.5, 42);
    let mut g = c.benchmark_group("cjoin_admission_virtual_time");
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1200));
    g.warm_up_time(Duration::from_millis(300));
    for (label, n, w) in [("narrow_8q", 8usize, 1usize), ("wide_8q", 8, 12), ("narrow_32q", 32, 1)]
    {
        for (mode, serial) in [("serial", true), ("shared", false)] {
            g.bench_with_input(
                BenchmarkId::new(mode, label),
                &(n, w, serial),
                |b, &(n, w, serial)| {
                    b.iter_custom(|iters| {
                        let mut total = 0.0;
                        for _ in 0..iters {
                            total += admission_secs(&dataset, n, w, serial) * 1e9;
                        }
                        Duration::from_nanos(total as u64)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}

/// Measure and print one serial/shared virtual-time ratio; gate the
/// 32-query shared-dimension points at ≥2×.
fn report_speedup(dataset: &Dataset, n: usize, w: usize, failures: &mut Vec<String>) {
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let serial = median((0..3).map(|_| admission_secs(dataset, n, w, true)).collect());
    let shared = median((0..3).map(|_| admission_secs(dataset, n, w, false)).collect());
    let ratio = serial / shared;
    println!(
        "{{\"bench\":\"cjoin_admission/speedup_shared_dims/{}q_w{}\",\"serial_secs\":{:.6},\"shared_secs\":{:.6},\"ratio\":{:.2}}}",
        n, w, serial, shared, ratio
    );
    // Acceptance bar: ≥2× at 32 queued queries over shared dimensions with
    // narrow predicates (w=1). Wide disjunctions are reported for
    // transparency but not gated: per-query predicate evaluation is the
    // part that cannot be shared, so the ratio honestly shrinks with
    // predicate width (≈2.4× at w=12).
    if n >= 32 && w == 1 && ratio < 2.0 {
        failures.push(format!(
            "shared-scan admission only {ratio:.2}x of serial at {n} queries (w={w}); bar is 2.0x"
        ));
    }
}

/// Contended hot-path microbenchmark, replaying the production thread
/// roles on 8 OS threads: one **scan thread** doing per-page mask
/// snapshots + wrap bookkeeping, seven **filter workers** each reading
/// shared filter state once per page. Lock-free (`EpochCell` reader +
/// `WrapLedger` atomics) vs the retired `RwLock` baseline, under which a
/// worker took the read lock per page and the scan thread took the write
/// lock on *every* page (completions or not) — blocking workers and
/// paying park/unpark handoffs under parallelism, where the lock-free
/// path pays one `Acquire` load. The probe payload is deliberately one
/// shared word: the filter arithmetic is identical under either
/// discipline, so the section isolates what the disciplines themselves
/// cost per page. Real wall-clock (`Instant`, medians over 3 runs): lock
/// contention is invisible to virtual time, so this section measures on
/// the host. **Self-gating**: the lock-free path must be ≥1.3× faster.
fn report_contended(failures: &mut Vec<String>) {
    use std::sync::Arc;
    use std::time::Instant;
    use workshare_cjoin::{EpochCell, WrapLedger};
    use workshare_common::fxhash::FxHashMap;
    use workshare_common::sync::RwLock;
    use workshare_common::QueryBitmap;

    const WORKERS: usize = 8; // 1 scan thread + 7 filter workers
    const PAGES: usize = 50_000;
    const SLOTS: usize = 16;
    const FILTER_WORDS: usize = 64; // stand-in for the shared filter cores
    // Budgets the runs can never exhaust, so no slot completes mid-bench.
    const BUDGET: u64 = u64::MAX / 2;

    // The retired design: every per-page touch goes through one RwLock.
    struct OldState {
        active_bits: QueryBitmap,
        emit_left: FxHashMap<u32, u64>,
        filters: Vec<u64>,
    }

    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };

    let time_run = |scan: &(dyn Fn() + Sync), work: &(dyn Fn() + Sync)| -> f64 {
        let start = Instant::now();
        std::thread::scope(|s| {
            s.spawn(scan);
            for _ in 1..WORKERS {
                s.spawn(work);
            }
        });
        start.elapsed().as_secs_f64()
    };

    let rwlock_secs = {
        let mut active_bits = QueryBitmap::zeros(64);
        let mut emit_left = FxHashMap::default();
        for slot in 0..SLOTS {
            active_bits.set(slot);
            emit_left.insert(slot as u32, BUDGET);
        }
        let state = Arc::new(RwLock::new(OldState {
            active_bits,
            emit_left,
            filters: vec![3; FILTER_WORDS],
        }));
        let scan = || {
            for _ in 0..PAGES {
                // Per page: mask snapshot under the read lock, then wrap
                // bookkeeping under the write lock — the seed took the
                // write on *every* page, completions or not.
                let members = state.read().active_bits.clone();
                let mut s = state.write();
                for slot in members.iter_ones() {
                    if let Some(left) = s.emit_left.get_mut(&(slot as u32)) {
                        *left -= 1;
                    }
                }
            }
        };
        let work = || {
            for page in 0..PAGES {
                // One read lock per page — the seed worker's discipline —
                // queueing behind (and blocked by) the scan thread's
                // per-page writes.
                let s = state.read();
                std::hint::black_box(s.filters[page & (FILTER_WORDS - 1)]);
            }
        };
        median((0..3).map(|_| time_run(&scan, &work)).collect())
    };

    let lockfree_secs = {
        let cell = Arc::new(EpochCell::new(vec![3u64; FILTER_WORDS]));
        let wrap = Arc::new(WrapLedger::new(64));
        for slot in 0..SLOTS {
            wrap.activate(slot, BUDGET);
        }
        let scan = || {
            let mut stamp = Arc::new(QueryBitmap::default());
            for _ in 0..PAGES {
                // Per page: a few Acquire mask-word loads (the stamp is
                // reused while the mask is unchanged, as in the
                // preprocessor) and one atomic RMW per member — no lock,
                // workers never blocked.
                wrap.snapshot_cached(&mut stamp);
                wrap.record_page(&stamp);
            }
        };
        let work = || {
            let mut reader = cell.reader();
            for page in 0..PAGES {
                // One Acquire version load per page; the epoch snapshot
                // is immutable, so the page probe runs unsynchronized.
                let epoch = reader.current(&cell);
                std::hint::black_box(epoch[page & (FILTER_WORDS - 1)]);
            }
        };
        median((0..3).map(|_| time_run(&scan, &work)).collect())
    };

    let ratio = rwlock_secs / lockfree_secs;
    println!(
        "{{\"bench\":\"cjoin_admission/lockfree_contended/{}w\",\"rwlock_secs\":{:.6},\"lockfree_secs\":{:.6},\"ratio\":{:.2}}}",
        WORKERS, rwlock_secs, lockfree_secs, ratio
    );
    if ratio < 1.3 {
        failures.push(format!(
            "lock-free hot path only {ratio:.2}x of the RwLock baseline at {WORKERS} workers; bar is 1.3x"
        ));
    }
}

fn main() {
    benches();
    let dataset = Dataset::ssb(0.5, 42);
    let mut failures = Vec::new();
    for (n, w) in [(4usize, 1usize), (8, 1), (32, 1), (32, 12)] {
        report_speedup(&dataset, n, w, &mut failures);
    }
    report_contended(&mut failures);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
