//! Micro-benchmark: CJOIN admission cost (virtual time) — batched admission
//! vs per-query cost growth with dimension selectivity (§3.1/§5.2.2: "the
//! cost of the admission phase of CJOIN is increased as more tuples are
//! selected").

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use workshare_core::{harness::run_batch, workload, Dataset, NamedConfig, RunConfig};

/// Virtual admission seconds for `n` queries at nation-disjunction width `w`.
fn admission_secs(dataset: &Dataset, n: usize, w: usize) -> f64 {
    let mut r = workload::rng(9);
    let queries: Vec<_> = (0..n)
        .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, w, w))
        .collect();
    let cfg = RunConfig::named(NamedConfig::Cjoin);
    run_batch(dataset, &cfg, &queries, false).admission_secs()
}

fn bench(c: &mut Criterion) {
    let dataset = Dataset::ssb(0.5, 42);
    let mut g = c.benchmark_group("cjoin_admission_virtual_time");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for (label, n, w) in [("narrow_8q", 8usize, 1usize), ("wide_8q", 8, 12), ("narrow_32q", 32, 1)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &(n, w), |b, &(n, w)| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += admission_secs(&dataset, n, w) * 1e9;
                }
                Duration::from_nanos(total as u64)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
