//! Smoke bench: runs scaled-down versions of the headline experiments and
//! asserts the paper's qualitative orderings. Executed by `cargo bench`
//! (custom harness) so the figure claims are checked on every bench run.

use workshare_core::{
    harness::run_batch, harness::run_batch_on, workload, Dataset, ExchangeKind, IoMode,
    NamedConfig, RunConfig,
};

fn check(name: &str, ok: bool, detail: String) {
    if ok {
        println!("ok   {name}: {detail}");
    } else {
        println!("WARN {name}: UNEXPECTED SHAPE — {detail}");
    }
}

fn main() {
    println!("figures_smoke: qualitative shape checks (scaled-down)\n");

    // Fig 6 shape: at high concurrency of identical Q1s, CS(SPL) < CS(FIFO),
    // and CS(SPL) <= No-SP.
    let tpch = Dataset::tpch(0.25, 1);
    let queries: Vec<_> = (0..24).map(|i| workload::tpch_q1(i as u64)).collect();
    let run6 = |engine, kind| {
        let mut cfg = RunConfig::named(engine);
        cfg.exchange = kind;
        run_batch_on(&tpch, &cfg, "lineitem", &queries, false).mean_latency_secs()
    };
    let nosp = run6(NamedConfig::Qpipe, ExchangeKind::Spl);
    let cs_fifo = run6(NamedConfig::QpipeCs, ExchangeKind::Fifo);
    let cs_spl = run6(NamedConfig::QpipeCs, ExchangeKind::Spl);
    check(
        "fig06.spl_beats_fifo",
        cs_spl < cs_fifo,
        format!("CS(SPL)={cs_spl:.4}s CS(FIFO)={cs_fifo:.4}s"),
    );
    check(
        "fig06.sharing_not_worse",
        cs_spl <= nosp * 1.05,
        format!("CS(SPL)={cs_spl:.4}s NoSP={nosp:.4}s"),
    );

    // Fig 10 shape: at 48 concurrent Q3.2, QPipe > QPipe-CS > QPipe-SP.
    let ssb = Dataset::ssb(0.5, 1);
    let mut r = workload::rng(2);
    let q32: Vec<_> = (0..48)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let run10 = |engine| {
        run_batch(&ssb, &RunConfig::named(engine), &q32, false).mean_latency_secs()
    };
    let qp = run10(NamedConfig::Qpipe);
    let cs = run10(NamedConfig::QpipeCs);
    let sp = run10(NamedConfig::QpipeSp);
    let cj = run10(NamedConfig::Cjoin);
    check(
        "fig10.sharing_order",
        qp > cs && cs >= sp,
        format!("QPipe={qp:.4} CS={cs:.4} SP={sp:.4} CJOIN={cj:.4}"),
    );

    // Fig 11 shape: at 8 queries, CJOIN pays more than QPipe-SP. The
    // figure's claim is about the paper's serial per-query admission; the
    // engine's default shared-scan admission deliberately weakens it.
    let mut r = workload::rng(3);
    let q8: Vec<_> = (0..8)
        .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, 8, 8))
        .collect();
    let sp8 = run_batch(&ssb, &RunConfig::named(NamedConfig::QpipeSp), &q8, false)
        .mean_latency_secs();
    let mut cj8_cfg = RunConfig::named(NamedConfig::Cjoin);
    cj8_cfg.cjoin_serial_admission = true;
    let cj8 = run_batch(&ssb, &cj8_cfg, &q8, false).mean_latency_secs();
    check(
        "fig11.low_concurrency_favors_query_centric",
        sp8 < cj8,
        format!("QPipe-SP={sp8:.4} CJOIN={cj8:.4}"),
    );

    // Fig 14 shape: with 16 plans at 64 queries, CJOIN-SP <= CJOIN.
    let q64 = workload::limited_plans(64, 16, 5, workload::ssb_q3_2_narrow);
    let run14 = |engine| {
        let mut cfg = RunConfig::named(engine);
        cfg.io_mode = IoMode::BufferedDisk;
        run_batch(&ssb, &cfg, &q64, false).mean_latency_secs()
    };
    let cj14 = run14(NamedConfig::Cjoin);
    let cjsp14 = run14(NamedConfig::CjoinSp);
    check(
        "fig14.cjoin_sp_improves_cjoin",
        cjsp14 <= cj14 * 1.02,
        format!("CJOIN={cj14:.4} CJOIN-SP={cjsp14:.4}"),
    );

    println!("\nfigures_smoke complete.");
}
