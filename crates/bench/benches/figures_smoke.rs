//! Smoke bench: runs scaled-down versions of the headline experiments and
//! asserts the paper's qualitative orderings. Executed by `cargo bench`
//! (custom harness) so the figure claims are checked on every bench run.

use workshare_core::{
    harness::run_batch, harness::run_batch_on, workload, Dataset, ExchangeKind, IoMode,
    NamedConfig, RunConfig,
};

fn check(name: &str, ok: bool, detail: String) {
    if ok {
        println!("ok   {name}: {detail}");
    } else {
        println!("WARN {name}: UNEXPECTED SHAPE — {detail}");
    }
}

fn main() {
    println!("figures_smoke: qualitative shape checks (scaled-down)\n");

    // Fig 6 shape: at high concurrency of identical Q1s, CS(SPL) < CS(FIFO),
    // and CS(SPL) <= No-SP.
    let tpch = Dataset::tpch(0.25, 1);
    let queries: Vec<_> = (0..24).map(|i| workload::tpch_q1(i as u64)).collect();
    let run6 = |engine, kind| {
        let mut cfg = RunConfig::named(engine);
        cfg.exchange = kind;
        run_batch_on(&tpch, &cfg, "lineitem", &queries, false).mean_latency_secs()
    };
    let nosp = run6(NamedConfig::Qpipe, ExchangeKind::Spl);
    let cs_fifo = run6(NamedConfig::QpipeCs, ExchangeKind::Fifo);
    let cs_spl = run6(NamedConfig::QpipeCs, ExchangeKind::Spl);
    check(
        "fig06.spl_beats_fifo",
        cs_spl < cs_fifo,
        format!("CS(SPL)={cs_spl:.4}s CS(FIFO)={cs_fifo:.4}s"),
    );
    check(
        "fig06.sharing_not_worse",
        cs_spl <= nosp * 1.05,
        format!("CS(SPL)={cs_spl:.4}s NoSP={nosp:.4}s"),
    );

    // Fig 10 shape: at 48 concurrent Q3.2, QPipe > QPipe-CS > QPipe-SP.
    let ssb = Dataset::ssb(0.5, 1);
    let mut r = workload::rng(2);
    let q32: Vec<_> = (0..48)
        .map(|i| workload::ssb_q3_2(i as u64, &mut r))
        .collect();
    let run10 = |engine| {
        run_batch(&ssb, &RunConfig::named(engine), &q32, false).mean_latency_secs()
    };
    let qp = run10(NamedConfig::Qpipe);
    let cs = run10(NamedConfig::QpipeCs);
    let sp = run10(NamedConfig::QpipeSp);
    let cj = run10(NamedConfig::Cjoin);
    check(
        "fig10.sharing_order",
        qp > cs && cs >= sp,
        format!("QPipe={qp:.4} CS={cs:.4} SP={sp:.4} CJOIN={cj:.4}"),
    );

    // Fig 11 shape: the paper's low-concurrency penalty — CJOIN worse
    // than QPipe-SP at 8 queries — came from serial per-query admission
    // *and* the preprocessor decoding every fact page on the scan thread.
    // Shared-scan admission (PR 3) and worker-tier decode (PR 4)
    // deliberately removed both, so this reproduction asserts the fig11
    // claims that survive: CJOIN admission cost grows with selectivity,
    // and the paper-faithful serial admission path really pays more
    // admission time than the shared-scan path.
    let run11 = |nc: usize, ns: usize, serial: bool| {
        let mut r = workload::rng(3);
        let q8: Vec<_> = (0..8)
            .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, nc, ns))
            .collect();
        let mut cfg = RunConfig::named(NamedConfig::Cjoin);
        cfg.cjoin_serial_admission = serial;
        run_batch(&ssb, &cfg, &q8, false).admission_secs()
    };
    let adm_low = run11(1, 1, true);
    let adm_high = run11(8, 8, true);
    check(
        "fig11.admission_grows_with_selectivity",
        adm_high > adm_low,
        format!("admission sel-low={adm_low:.4} sel-high={adm_high:.4}"),
    );
    let adm_shared = run11(8, 8, false);
    check(
        "fig11.serial_admission_costs_more_than_shared_scan",
        adm_high > adm_shared,
        format!("serial={adm_high:.4} shared-scan={adm_shared:.4}"),
    );

    // Fig 14 shape: with 16 plans at 64 queries, CJOIN-SP <= CJOIN.
    let q64 = workload::limited_plans(64, 16, 5, workload::ssb_q3_2_narrow);
    let run14 = |engine| {
        let mut cfg = RunConfig::named(engine);
        cfg.io_mode = IoMode::BufferedDisk;
        run_batch(&ssb, &cfg, &q64, false).mean_latency_secs()
    };
    let cj14 = run14(NamedConfig::Cjoin);
    let cjsp14 = run14(NamedConfig::CjoinSp);
    check(
        "fig14.cjoin_sp_improves_cjoin",
        cjsp14 <= cj14 * 1.02,
        format!("CJOIN={cj14:.4} CJOIN-SP={cjsp14:.4}"),
    );

    println!("\nfigures_smoke complete.");
}
