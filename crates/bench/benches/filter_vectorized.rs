//! Micro-benchmark: the CJOIN shared-filter hot loop, scalar
//! (tuple-at-a-time, the seed's semantics) vs vectorized (batch-at-a-time
//! with a `BitmapBank` and key-run probing), at 1 / 16 / 64 / 256 concurrent
//! queries — the concurrency axis of the paper's §5.2 experiments, where
//! per-tuple bookkeeping is exactly what makes shared operators lose at low
//! concurrency.
//!
//! The acceptance bar for the vectorized path is ≥2× scalar throughput at
//! 64 concurrent queries on the clustered-FK page (the design target of
//! key-run probing); see the `speedup_clustered/64` JSON line. A
//! scattered-FK page (runs of ~1, per-run probing degenerates to
//! per-tuple) is also reported for transparency as `speedup_scattered/N`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use workshare_cjoin::{
    filter_page_scalar, filter_page_vectorized, DimEntry, FilterCore, FilterScratch,
};
use workshare_common::fxhash::FxHashMap;
use workshare_common::value::Row;
use workshare_common::{QueryBitmap, Value};

const PAGE_ROWS: usize = 4096;
const DIM_KEYS: i64 = 64;

/// A shared filter where query `q` selects key `k` iff `k % (2 + q % 7) == 0`
/// — overlapping but distinct per-query selections, as produced by a mix of
/// star queries over one dimension.
fn mk_filter(fact_fk_idx: usize, n_queries: usize) -> Arc<FilterCore> {
    let mut hash = FxHashMap::default();
    let mut referencing = QueryBitmap::zeros(n_queries);
    for q in 0..n_queries {
        referencing.set(q);
    }
    for key in 0..DIM_KEYS {
        let mut bits = QueryBitmap::zeros(n_queries);
        let mut any = false;
        for q in 0..n_queries {
            if key % (2 + q as i64 % 7) == 0 {
                bits.set(q);
                any = true;
            }
        }
        if any {
            hash.insert(
                key,
                DimEntry {
                    row: Arc::new(vec![Value::Int(key), Value::Int(key * 10)]),
                    bits,
                },
            );
        }
    }
    Arc::new(FilterCore {
        dim: workshare_storage::TableId(0),
        fact_fk_idx,
        dim_pk_idx: 0,
        hash,
        referencing,
    })
}

/// One fact page with physically correlated FKs (runs of 8 and 4): the
/// regime the key-run probe targets — date-ordered fact loads and
/// join-product skew both produce long runs. This page drives the ≥2×
/// acceptance measurement.
fn mk_rows_clustered() -> Vec<Row> {
    (0..PAGE_ROWS as i64)
        .map(|i| {
            vec![
                Value::Int((i / 8) % DIM_KEYS),
                Value::Int((i / 4) % DIM_KEYS),
                Value::Int(i),
            ]
        })
        .collect()
}

/// Adversarial page: second FK scattered (runs of ~1), so per-run probing
/// degenerates to per-tuple on that filter. Reported for transparency; the
/// vectorized path must still win, just by less.
fn mk_rows_scattered() -> Vec<Row> {
    (0..PAGE_ROWS as i64)
        .map(|i| {
            vec![
                Value::Int((i / 8) % DIM_KEYS),
                Value::Int((i * 13) % DIM_KEYS),
                Value::Int(i),
            ]
        })
        .collect()
}

/// Directly measured scalar/vectorized ratio, printed as its own JSON line
/// so the ≥2×-at-64-queries acceptance bar is a first-class artifact of
/// every bench run (medians over `samples` timed blocks of `iters` pages).
fn report_speedup(label: &str, rows: &[Row], n_queries: usize) {
    use std::time::Instant;
    let filters = vec![mk_filter(0, n_queries), mk_filter(1, n_queries)];
    let members = QueryBitmap::ones(n_queries);
    let mut scratch = FilterScratch::default();
    let (iters, samples) = (20u32, 15usize);
    let median = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let mut scalar_ns = Vec::with_capacity(samples);
    let mut vec_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            let (p, _) = filter_page_scalar(&filters, rows, &members);
            std::hint::black_box(p.selected.len());
        }
        scalar_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        let t = Instant::now();
        for _ in 0..iters {
            let (p, _) = filter_page_vectorized(&filters, rows, &members, &mut scratch);
            std::hint::black_box(p.selected.len());
        }
        vec_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    let (s, v) = (median(scalar_ns), median(vec_ns));
    println!(
        "{{\"bench\":\"cjoin_filter_page/speedup_{}/{}\",\"scalar_ns\":{:.1},\"vectorized_ns\":{:.1},\"ratio\":{:.2}}}",
        label,
        n_queries,
        s,
        v,
        s / v
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cjoin_filter_page");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_millis(1500));
    g.warm_up_time(std::time::Duration::from_millis(300));
    let rows = mk_rows_clustered();
    for n_queries in [1usize, 16, 64, 256] {
        let filters = vec![mk_filter(0, n_queries), mk_filter(1, n_queries)];
        let members = QueryBitmap::ones(n_queries);
        g.bench_with_input(
            BenchmarkId::new("scalar", n_queries),
            &n_queries,
            |b, _| {
                b.iter(|| {
                    let (page, _) = filter_page_scalar(&filters, &rows, &members);
                    std::hint::black_box(page.selected.len())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("vectorized", n_queries),
            &n_queries,
            |b, _| {
                let mut scratch = FilterScratch::default();
                b.iter(|| {
                    let (page, _) =
                        filter_page_vectorized(&filters, &rows, &members, &mut scratch);
                    std::hint::black_box(page.selected.len())
                })
            },
        );
    }
    g.finish();
    let scattered = mk_rows_scattered();
    for n_queries in [1usize, 16, 64, 256] {
        report_speedup("clustered", &rows, n_queries);
        report_speedup("scattered", &scattered, n_queries);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
