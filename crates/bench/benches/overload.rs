//! Macro-benchmark: the **overload-safe service loop** vs an unbounded
//! engine under open-loop arrivals swept past saturation.
//!
//! Both sides run the governed adaptive engine on the same SSB workload
//! (wide Q3.2 disjunctions on a 4-core machine, so per-query aggregation
//! work the shared path cannot amortize saturates the CPUs at a modest
//! arrival rate); the *only* difference is the [`ServiceConfig`]:
//!
//! * **bounded**: a queue-depth cap plus a per-query virtual deadline —
//!   submissions are shed (`Outcome::Shed`) when the admission queue is
//!   full or when no route is predicted to meet the deadline, so the
//!   queries that *are* admitted keep pre-saturation response times.
//! * **unbounded** (default admission): every submission is admitted;
//!   past saturation the queue grows without bound and response times
//!   diverge with offered load. Its [`ServiceConfig::slo_p99_secs`] is
//!   set to the bounded side's deadline so both report goodput against
//!   the same yardstick — the knob is observability-only and does not
//!   enable shedding.
//!
//! The sweep self-calibrates: a closed-loop run measures the engine's
//! at-capacity throughput `C`, an open-loop run at `0.5 C` measures the
//! pre-saturation p99 (which sets the deadline at twice that), and the
//! sweep then offers `0.75 C`, `2 C`, and `4 C`. Results are printed as
//! JSON lines:
//!
//! ```text
//! {"bench":"overload/4x","rate_qps":…,"bounded_p99":…,"unbounded_p99":…,
//!  "bounded_goodput":…,"unbounded_goodput":…,"shed_queue_full":…,…}
//! ```
//!
//! Acceptance (checked by this binary, non-zero exit on failure):
//!
//! * past saturation the bounded loop's admitted-query p99 stays within
//!   2× the pre-saturation p99, sheds are reported, and every report
//!   conserves submissions (`submitted == completed + late + shed +
//!   errors`),
//! * the bounded loop's goodput is monotone-ish across the sweep (each
//!   step keeps ≥ 90 % of the previous), and at the top rate it beats the
//!   unbounded baseline's, whose p99 has diverged past the bound the
//!   service loop is holding.
//!
//! A second, **faulted** gate (see docs/FAULTS.md) runs the shared fabric
//! path under a seeded [`FaultPlan`] — transient page faults plus a wedging
//! fabric worker — and checks that the self-healing ladder (storage
//! retry/backoff, dark-fabric demotion, reclaim + respawn) keeps goodput
//! alive and admitted-query p99 within 3× the fault-free run, while a
//! no-recovery baseline under the same storage schedule degrades into typed
//! per-query errors and loses goodput.

use workshare_core::harness::{run_service, ServiceLoad, ThroughputReport};
use workshare_core::{workload, Dataset, ExecPolicy, FaultPlan, RunConfig, ServiceConfig};

/// Queue-depth cap of the bounded side: enough concurrency to keep the
/// shared path busy at saturation, small enough that queueing delay alone
/// cannot push admitted queries past the p99 gate.
const QUEUE_CAP: usize = 8;
/// Open-loop clients sharing the offered aggregate rate.
const CLIENTS: usize = 6;
/// Measurement window, virtual seconds.
const WINDOW_SECS: f64 = 2.0;
/// Simulated cores: small enough that wide-disjunction Q3.2 saturates at
/// a few thousand queries per second.
const CORES: u32 = 4;

fn service_run(dataset: &Dataset, service: ServiceConfig, rate: Option<f64>) -> ThroughputReport {
    let mut cfg = RunConfig::governed(ExecPolicy::Adaptive);
    cfg.cores = CORES;
    cfg.service = service;
    let load = ServiceLoad {
        clients: CLIENTS,
        arrivals_per_sec: rate,
        tenants: 1,
        window_secs: WINDOW_SECS,
        seed: 77,
    };
    run_service(dataset, &cfg, "lineorder", load, |id, rng| {
        workload::ssb_q3_2_wide(id, rng, 12, 12)
    })
}

/// Closed-loop run over the shared fabric path with a seeded fault plan:
/// the faulted-overload gate pins the policy to `Shared` so every query
/// rides the admission fabric the plan is targeting.
fn faulted_run(dataset: &Dataset, faults: FaultPlan, service: ServiceConfig) -> ThroughputReport {
    let mut cfg = RunConfig::governed(ExecPolicy::Shared);
    cfg.cores = CORES;
    cfg.admission_fabric = true;
    cfg.faults = faults;
    cfg.service = service;
    let load = ServiceLoad {
        clients: CLIENTS,
        arrivals_per_sec: None,
        tenants: 1,
        window_secs: WINDOW_SECS,
        seed: 77,
    };
    run_service(dataset, &cfg, "lineorder", load, |id, rng| {
        workload::ssb_q3_2_wide(id, rng, 12, 12)
    })
}

fn conserved(failures: &mut Vec<String>, label: &str, rep: &ThroughputReport) {
    if !rep.is_conserved() {
        failures.push(format!(
            "{label}: submitted {} != completed {} + late {} + shed {}/{} + errors {}",
            rep.submitted,
            rep.completed,
            rep.completed_late,
            rep.shed_queue_full,
            rep.shed_deadline,
            rep.errors
        ));
    }
}

fn main() {
    let dataset = Dataset::ssb(0.05, 11);
    let mut failures: Vec<String> = Vec::new();

    // At-capacity throughput: closed-loop clients keep the engine at full
    // utilization, so completed/window is the scale the sweep multiplies.
    let closed = service_run(&dataset, ServiceConfig::default(), None);
    conserved(&mut failures, "closed-loop calibration", &closed);
    let capacity = closed.completed as f64 / WINDOW_SECS;

    // Pre-saturation p99: open loop at half capacity, queue cap armed but
    // effectively idle — this anchors the overload gate below.
    let cap_only = ServiceConfig {
        queue_cap: Some(QUEUE_CAP),
        ..ServiceConfig::default()
    };
    let pre = service_run(&dataset, cap_only, Some(0.5 * capacity));
    conserved(&mut failures, "pre-saturation calibration", &pre);
    let p99_pre = pre.p99_latency_secs;
    println!(
        "{{\"bench\":\"overload/calibration\",\"capacity_qps\":{:.3},\"p99_pre_secs\":{:.6},\"pre_shed\":{}}}",
        capacity,
        p99_pre,
        pre.shed_queue_full + pre.shed_deadline,
    );
    if capacity <= 0.0 || p99_pre <= 0.0 {
        eprintln!("FAIL: degenerate calibration (capacity {capacity}, p99_pre {p99_pre})");
        std::process::exit(1);
    }
    let deadline = 2.0 * p99_pre;

    let bounded_cfg = ServiceConfig {
        queue_cap: Some(QUEUE_CAP),
        deadline_secs: Some(deadline),
        ..ServiceConfig::default()
    };
    // Same goodput yardstick, no enforcement: the baseline stays unbounded.
    let unbounded_cfg = ServiceConfig {
        slo_p99_secs: Some(deadline),
        ..ServiceConfig::default()
    };
    let mults = [0.75, 2.0, 4.0];
    let mut prev_goodput: Option<f64> = None;
    let mut top: Option<(ThroughputReport, ThroughputReport)> = None;
    for mult in mults {
        let rate = mult * capacity;
        let bounded = service_run(&dataset, bounded_cfg, Some(rate));
        let unbounded = service_run(&dataset, unbounded_cfg, Some(rate));
        println!(
            "{{\"bench\":\"overload/{mult}x\",\"rate_qps\":{rate:.3},\"bounded_p99\":{:.6},\"unbounded_p99\":{:.6},\"bounded_goodput\":{:.1},\"unbounded_goodput\":{:.1},\"shed_queue_full\":{},\"shed_deadline\":{},\"bounded_submitted\":{},\"unbounded_submitted\":{}}}",
            bounded.p99_latency_secs,
            unbounded.p99_latency_secs,
            bounded.goodput_per_hour,
            unbounded.goodput_per_hour,
            bounded.shed_queue_full,
            bounded.shed_deadline,
            bounded.submitted,
            unbounded.submitted,
        );
        conserved(&mut failures, &format!("bounded {mult}x"), &bounded);
        conserved(&mut failures, &format!("unbounded {mult}x"), &unbounded);
        // Monotone-ish goodput: shedding the excess must not erode what
        // the bounded loop actually serves as offered load keeps rising.
        if let Some(prev) = prev_goodput {
            if bounded.goodput_per_hour < 0.9 * prev {
                failures.push(format!(
                    "bounded goodput fell from {prev:.1}/h to {:.1}/h at {mult}x",
                    bounded.goodput_per_hour
                ));
            }
        }
        prev_goodput = Some(bounded.goodput_per_hour);
        if mult > 1.0 {
            // Past saturation: admitted-query latency must stay anchored to
            // the pre-saturation distribution…
            if bounded.p99_latency_secs > 2.0 * p99_pre {
                failures.push(format!(
                    "bounded p99 {:.4}s at {mult}x exceeds 2x pre-saturation p99 {:.4}s",
                    bounded.p99_latency_secs, p99_pre
                ));
            }
            // …which is only possible because the excess was shed.
            if bounded.shed_queue_full + bounded.shed_deadline == 0 {
                failures.push(format!("no sheds at {mult}x offered load"));
            }
            top = Some((bounded, unbounded));
        }
    }
    // Deep overload: the unbounded baseline has lost both the latency
    // bound and the goodput the service loop is holding.
    if let Some((bounded, unbounded)) = &top {
        if unbounded.p99_latency_secs <= 2.0 * p99_pre {
            failures.push(format!(
                "unbounded p99 {:.4}s did not diverge past 2x pre-saturation p99 {:.4}s at the top rate",
                unbounded.p99_latency_secs, p99_pre
            ));
        }
        if bounded.goodput_per_hour < unbounded.goodput_per_hour {
            failures.push(format!(
                "bounded goodput {:.1}/h below unbounded {:.1}/h at the top rate",
                bounded.goodput_per_hour, unbounded.goodput_per_hour
            ));
        }
    } else {
        failures.push("sweep never passed saturation".into());
    }

    // ---- Faulted overload gate: seeded faults over the fabric path. ----
    let fabric_service = ServiceConfig {
        queue_cap: Some(QUEUE_CAP),
        ..ServiceConfig::default()
    };
    // Fault-free reference over the identical configuration: the yardstick
    // the healed run's p99 is gated against.
    let clean = faulted_run(&dataset, FaultPlan::default(), fabric_service);
    conserved(&mut failures, "fault-free reference", &clean);
    // Healed: transient page faults retried with backoff, and a fabric
    // worker that wedges after two windows — recovered by the health
    // monitor's demote → reclaim → respawn cycle.
    let healed = faulted_run(
        &dataset,
        FaultPlan {
            seed: 1337,
            transient_page_stride: Some(9),
            fabric_wedge_after: Some(2),
            self_heal: true,
            ..FaultPlan::default()
        },
        fabric_service,
    );
    conserved(&mut failures, "faulted healed", &healed);
    // No-recovery baseline: the same storage schedule with healing off
    // turns every injected fault into a first-attempt typed error. The
    // wedge site stays unarmed here — a wedged fabric with no monitor
    // holds its queued work forever by design.
    let baseline = faulted_run(
        &dataset,
        FaultPlan {
            seed: 1337,
            transient_page_stride: Some(9),
            self_heal: false,
            ..FaultPlan::default()
        },
        fabric_service,
    );
    conserved(&mut failures, "faulted no-recovery baseline", &baseline);

    let h = &healed.health;
    println!(
        "{{\"bench\":\"overload/faulted\",\"clean_p99\":{:.6},\"healed_p99\":{:.6},\"healed_goodput\":{:.1},\"baseline_goodput\":{:.1},\"baseline_errors\":{},\"retries\":{},\"wedges\":{},\"demotions\":{},\"respawns\":{},\"rung\":{}}}",
        clean.p99_latency_secs,
        healed.p99_latency_secs,
        healed.goodput_per_hour,
        baseline.goodput_per_hour,
        baseline.errors,
        h.storage.retries,
        h.admission.injected_wedges,
        h.admission.demotions,
        h.admission.fabric_respawns,
        h.admission.rung,
    );
    if healed.completed + healed.completed_late == 0 {
        failures.push("healed run produced no goodput".into());
    }
    if healed.p99_latency_secs > 3.0 * clean.p99_latency_secs {
        failures.push(format!(
            "healed p99 {:.4}s exceeds 3x fault-free p99 {:.4}s",
            healed.p99_latency_secs, clean.p99_latency_secs
        ));
    }
    if h.storage.retries == 0 {
        failures.push("healed run recorded no transient retries".into());
    }
    if h.admission.injected_wedges == 0 {
        failures.push("fabric worker never wedged under the plan".into());
    }
    if h.admission.demotions == 0 {
        failures.push("dark fabric never demoted the ladder".into());
    }
    if h.admission.fabric_respawns == 0 {
        failures.push("monitor never respawned the wedged worker".into());
    }
    if baseline.errors == 0 {
        failures.push("no-recovery baseline surfaced no errors".into());
    }
    if baseline.goodput_per_hour >= healed.goodput_per_hour {
        failures.push(format!(
            "no-recovery goodput {:.1}/h not below healed {:.1}/h",
            baseline.goodput_per_hour, healed.goodput_per_hour
        ));
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
