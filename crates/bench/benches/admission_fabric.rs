//! Macro-benchmark: the engine-level **cross-stage admission fabric** vs
//! per-stage admission pools on a two-fact crowd whose star queries filter
//! the *same* dimension tables.
//!
//! Both runs use the governed engine pinned to the shared path with sharded
//! per-fact stages (`multifact = true`), so the *only* difference is who
//! runs the admission scans:
//!
//! * **fabric** (`RunConfig::admission_fabric = true`, the default): every
//!   stage hands its pending batch to one engine-level pool; a batching
//!   window merges the stages' batches and scans each distinct dimension
//!   table **once for both facts**.
//! * **per-stage** (`admission_fabric = false`, the pre-fabric behavior):
//!   each stage's own worker scans customer/supplier/date for its half of
//!   the crowd — every shared dimension is read twice per burst.
//!
//! Virtual admission seconds are printed as JSON lines (the
//! `filter_vectorized` convention):
//!
//! ```text
//! {"bench":"speedup_admission_fabric/32","fabric_secs":…,
//!  "perstage_secs":…,"ratio":…,"fabric_pages":…,"perstage_pages":…}
//! ```
//!
//! Acceptance (checked by this binary, non-zero exit on failure) at 32
//! queued queries over shared dimensions:
//!
//! * the fabric admits with ≥ 1.3× lower mean virtual admission time than
//!   the per-stage pools, and
//! * the physical scan count proves each shared dimension was scanned once
//!   per batch window: `admission_dim_pages` equals the distinct dimension
//!   page count × windows, and undercuts the per-stage pools' reads.

use workshare_core::harness::run_batch;
use workshare_core::{workload, Dataset, ExecPolicy, RunConfig, StarQuery};

/// Mixed two-fact batch of plan-diverse narrow Q3.2 instances (w = 1:
/// admission cost is dominated by the physical dimension scan, the part
/// the fabric shares; predicate evaluation stays per query on both sides).
fn mixed_batch(n: usize, seed: u64) -> Vec<StarQuery> {
    let mut r = workload::rng(seed);
    (0..n)
        .map(|i| {
            let mut q = workload::ssb_q3_2_wide(i as u64, &mut r, 1, 1);
            if i % 2 == 1 {
                q.fact = "lineorder2".into();
            }
            q
        })
        .collect()
}

fn main() {
    // SF 2: large enough that the physical dimension scan (the part the
    // fabric shares) dominates the per-query fixed admission charges.
    let dataset = Dataset::ssb_two_facts(2.0, 42);
    let gate_n = 32usize;
    let gate_ratio = 1.3;
    // Distinct dimension pages of the star schema: what one shared scan
    // pass over all three dimensions costs physically.
    let cfg = RunConfig::governed(ExecPolicy::Shared);
    let sm = dataset.instantiate(cfg.storage_config(), cfg.cost);
    let pages_once: u64 = ["customer", "supplier", "date"]
        .iter()
        .map(|t| sm.page_count(sm.table(t)) as u64)
        .sum();
    let mut failures = Vec::new();
    for n in [8usize, 32] {
        let queries = mixed_batch(n, 11 + n as u64);
        let fabric_run = run_batch(&dataset, &cfg, &queries, false);
        let mut perstage_cfg = cfg;
        perstage_cfg.admission_fabric = false;
        let perstage_run = run_batch(&dataset, &perstage_cfg, &queries, false);
        let ratio = perstage_run.admission_secs() / fabric_run.admission_secs();
        let fs = fabric_run.fabric.expect("fabric run reports FabricStats");
        let fabric_pages = fabric_run.cjoin.clone().unwrap().admission_dim_pages;
        let perstage_pages = perstage_run.cjoin.clone().unwrap().admission_dim_pages;
        println!(
            "{{\"bench\":\"speedup_admission_fabric/{}\",\"fabric_secs\":{:.6},\"perstage_secs\":{:.6},\"ratio\":{:.3},\"fabric_pages\":{},\"perstage_pages\":{},\"windows\":{},\"cross_stage_windows\":{}}}",
            n,
            fabric_run.admission_secs(),
            perstage_run.admission_secs(),
            ratio,
            fabric_pages,
            perstage_pages,
            fs.batches,
            fs.cross_stage_batches,
        );
        // Shared-scan invariant: each distinct dimension scanned once per
        // batching window, counted once (fabric-attributed), strictly
        // fewer physical reads than the per-stage pools.
        if fabric_pages != pages_once * fs.batches {
            failures.push(format!(
                "fabric read {fabric_pages} pages over {} windows; expected {} per window",
                fs.batches, pages_once
            ));
        }
        if fs.cross_stage_batches == 0 {
            failures.push(format!(
                "no batching window merged the two stages at {n} queries: {fs:?}"
            ));
        }
        if fabric_pages >= perstage_pages {
            failures.push(format!(
                "fabric pages {fabric_pages} not below per-stage pages {perstage_pages} at {n} queries"
            ));
        }
        if n == gate_n && ratio < gate_ratio {
            failures.push(format!(
                "fabric admission only {ratio:.3}x cheaper than per-stage pools at {n} queued queries (need >={gate_ratio}x)"
            ));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
