//! Micro-benchmark: real-time overhead of the virtual-time machine itself
//! (events per second of the processor-sharing scheduler). This is the
//! substrate cost every experiment pays; it is *real* wall-clock time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use workshare_sim::{CostKind, Machine, MachineConfig};

fn run_events(threads: usize, charges: usize) {
    let m = Machine::new(MachineConfig {
        cores: 24,
        ..Default::default()
    });
    m.spawn("parent", move |ctx| {
        let hs: Vec<_> = (0..threads)
            .map(|i| {
                ctx.machine().spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..charges {
                        ctx.charge(CostKind::Misc, 1_000.0);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    })
    .join()
    .unwrap();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_real_overhead");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(1200));
    g.warm_up_time(std::time::Duration::from_millis(300));
    for threads in [4usize, 32, 128] {
        g.bench_with_input(
            BenchmarkId::new("charges", threads),
            &threads,
            |b, &threads| b.iter(|| run_events(threads, 20)),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
