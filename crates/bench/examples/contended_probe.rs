//! Scratch profiler for the `lockfree_contended/8w` bench section: times
//! each role's per-page cost single-threaded so regressions in the gate
//! can be attributed to a specific path. Not CI-wired.

use std::sync::Arc;
use std::time::Instant;
use workshare_cjoin::{EpochCell, WrapLedger};
use workshare_common::fxhash::FxHashMap;
use workshare_common::sync::RwLock;
use workshare_common::QueryBitmap;

const PAGES: usize = 2_000_000;
const SLOTS: usize = 16;
const FILTER_WORDS: usize = 64;
// probe payload: one shared word per page (see bench section docs)
const BUDGET: u64 = u64::MAX / 2;

struct OldState {
    active_bits: QueryBitmap,
    emit_left: FxHashMap<u32, u64>,
    filters: Vec<u64>,
}

fn time(label: &str, f: impl FnOnce()) {
    let start = Instant::now();
    f();
    let secs = start.elapsed().as_secs_f64();
    println!("{label}: {:.1} ns/page ({secs:.3}s total)", secs * 1e9 / PAGES as f64);
}

fn main() {
    let mut active_bits = QueryBitmap::zeros(64);
    let mut emit_left = FxHashMap::default();
    for slot in 0..SLOTS {
        active_bits.set(slot);
        emit_left.insert(slot as u32, BUDGET);
    }
    let state = Arc::new(RwLock::new(OldState {
        active_bits,
        emit_left,
        filters: vec![3; FILTER_WORDS],
    }));
    let cell = Arc::new(EpochCell::new(vec![3u64; FILTER_WORDS]));
    let wrap = Arc::new(WrapLedger::new(64));
    for slot in 0..SLOTS {
        wrap.activate(slot, BUDGET);
    }

    time("rwlock_scan  ", || {
        for _ in 0..PAGES {
            let members = state.read().active_bits.clone();
            let mut s = state.write();
            for slot in members.iter_ones() {
                if let Some(left) = s.emit_left.get_mut(&(slot as u32)) {
                    *left -= 1;
                }
            }
        }
    });
    time("lockfree_scan", || {
        let mut stamp = Arc::new(QueryBitmap::default());
        for _ in 0..PAGES {
            wrap.snapshot_cached(&mut stamp);
            wrap.record_page(&stamp);
        }
    });
    time("rwlock_work  ", || {
        for page in 0..PAGES {
            let s = state.read();
            std::hint::black_box(s.filters[page & (FILTER_WORDS - 1)]);
        }
    });
    time("lockfree_work", || {
        let mut reader = cell.reader();
        for page in 0..PAGES {
            let epoch = reader.current(&cell);
            std::hint::black_box(epoch[page & (FILTER_WORDS - 1)]);
        }
    });
}
