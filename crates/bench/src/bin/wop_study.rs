//! WoP study (paper §2.2, Figure 2b; interarrival effects referenced in
//! §5.1): submit pairs of identical Q3.2 queries with growing interarrival
//! delay and observe which sharing windows stay open.
//!
//! * The **join stage has a step WoP**: the second query reuses the host's
//!   join sub-plan only if it arrives before the host's first output page.
//! * The **scan stage has a linear WoP** (circular scan): the second query
//!   attaches at the host's current position for *any* arrival during the
//!   scan, wrapping around for the prefix it missed.

use workshare_bench::{banner, secs, TextTable};
use workshare_core::{
    harness::run_staggered, workload, Dataset, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "WoP study — interarrival delay vs sharing windows",
        "join (step WoP) shares only at ~0 delay; circular scan (linear \
         WoP) shares until the host finishes",
    );
    let dataset = Dataset::ssb(1.0, 42);
    // One distinct plan → the pair is identical.
    let pair = workload::limited_plans(2, 1, 3, workload::ssb_q3_2);

    // Calibrate: how long does one query take alone?
    let cfg = RunConfig::named(NamedConfig::QpipeSp);
    let solo = run_staggered(&dataset, &cfg, "lineorder", &pair[..1], 0.0, false);
    let t1 = solo.latencies_secs[0];
    println!("\nSingle-query response time: {}s", secs(t1));

    let mut table = TextTable::new(&[
        "delay (xT)",
        "join shares",
        "scan satellites",
        "Q2 latency",
    ]);
    for frac in [0.0, 0.1, 0.25, 0.5, 0.9, 1.5] {
        let delay = t1 * frac;
        let rep = run_staggered(&dataset, &cfg, "lineorder", &pair, delay, false);
        let sharing = rep.qpipe_sharing.clone().unwrap();
        let joins: u64 = sharing.join_satellites_by_level.iter().sum();
        table.row(vec![
            format!("{frac:.2}"),
            joins.to_string(),
            sharing.scan_satellites.to_string(),
            secs(rep.latencies_secs[1]),
        ]);
    }
    table.print();
    println!(
        "\nReading the table: the top join's step WoP stays open until its \
         FIRST OUTPUT PAGE; with 0.02-0.16% selectivity the (single) output \
         page flushes near the end of the probe, so identical latecomers \
         keep attaching during most of the host's run and Q2's latency \
         shrinks linearly with the delay (free-riding on remaining work). \
         Past the host's completion (1.5xT) the step WoP is closed: zero \
         join shares; only the linear-WoP circular scans accept Q2 (4 \
         table scans attach), and Q2 pays a full evaluation again."
    );
}
