//! Figure 11 — Impact of selectivity: 8 concurrent modified-Q3.2 queries
//! (nation disjunctions), memory-resident SF 10, fact selectivity swept
//! 0.1 % → 30 %.
//!
//! Paper: both degrade with selectivity, but CJOIN is always worse than
//! QPipe-SP at this low concurrency because of (a) admission cost growing
//! with selected dimension tuples, (b) shared-operator bookkeeping (bitmap
//! ANDs, union hash tables — visible as a larger `Joins` CPU component),
//! (c) pipeline synchronization. QPipe-SP's `Hashing` CPU grows faster with
//! selectivity (it does not share the hash work).
//!
//! **Reproduction note:** this binary pins the paper-faithful *serial*
//! admission, but since the worker-tier page decode (the preprocessor no
//! longer decodes fact pages on the scan thread) the reproduction's CJOIN
//! beats QPipe-SP end-to-end even at 8 queries. The fig11 claims that
//! survive — admission growing with selectivity, and QPipe-SP's `Hashing`
//! CPU outgrowing CJOIN's — are what the table shows (and what
//! `figures_smoke` asserts).

use workshare_bench::{banner, breakdown_line, f2, full_scale, secs, TextTable};
use workshare_core::{
    harness::run_batch, workload, Dataset, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Figure 11 — selectivity sweep, 8 queries, memory-resident",
        "CJOIN admission grows with selectivity; QPipe-SP Hashing CPU grows \
         faster than CJOIN's (unshared hash work). NB: the paper's CJOIN > \
         QPipe-SP response-time ordering at 8 queries no longer reproduces \
         since the worker-tier page decode (see ROADMAP 'Multi-fact \
         sharding')",
    );
    let sf = if full_scale() { 10.0 } else { 2.0 };
    let dataset = Dataset::ssb(sf, 42);
    // (label, customer nations, supplier nations): sel = nc*ns/625.
    let points: [(&str, usize, usize); 5] = [
        ("0.16%", 1, 1),
        ("0.96%", 2, 3),
        ("10.2%", 8, 8),
        ("19.4%", 11, 11),
        ("29.1%", 14, 13),
    ];

    let mut table = TextTable::new(&[
        "selectivity",
        "QPipe-SP",
        "CJOIN",
        "CJOIN admission",
    ]);
    let mut breakdowns = Vec::new();
    for (label, nc, ns) in points {
        let mut r = workload::rng(11);
        let queries: Vec<_> = (0..8)
            .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, nc, ns))
            .collect();
        let sp = run_batch(
            &dataset,
            &RunConfig::named(NamedConfig::QpipeSp),
            &queries,
            false,
        );
        // Paper-faithful CJOIN: the figure's admission component is the
        // *serial* per-query admission of §3.2 (the default engine now
        // shares the scans across the batch; see the `admission` bench).
        let mut cj_cfg = RunConfig::named(NamedConfig::Cjoin);
        cj_cfg.cjoin_serial_admission = true;
        let cj = run_batch(&dataset, &cj_cfg, &queries, false);
        table.row(vec![
            label.to_string(),
            secs(sp.mean_latency_secs()),
            secs(cj.mean_latency_secs()),
            secs(cj.admission_secs()),
        ]);
        breakdowns.push((label, sp, cj));
    }
    println!("\nResponse time (virtual seconds):");
    table.print();

    println!("\nCPU-time breakdowns (virtual CPU seconds across all cores):");
    for (label, sp, cj) in &breakdowns {
        println!("  sel {label:>6}  QPipe-SP: {}", breakdown_line(&sp.cpu));
        println!("  sel {label:>6}  CJOIN   : {}", breakdown_line(&cj.cpu));
    }

    if let Some((_, sp, cj)) = breakdowns.last() {
        println!(
            "\nAt 30% selectivity: cores used QPipe-SP={} CJOIN={} (paper: 17.79 vs 18.86)",
            f2(sp.avg_cores_used),
            f2(cj.avg_cores_used),
        );
    }
}
