//! Table 1 — Rules of thumb: when and how to share.
//!
//! The paper distills its sensitivity analysis into:
//!
//! | When             | Execution engine                | I/O layer    |
//! |------------------|---------------------------------|--------------|
//! | Low concurrency  | Query-centric operators + SP    | Shared scans |
//! | High concurrency | GQP (shared operators) + SP     | Shared scans |
//!
//! This binary *derives* the table from measurements: it runs the Q3.2
//! workload at low and high concurrency on QPipe-SP (query-centric + SP) and
//! CJOIN-SP (GQP + SP), locates the crossover, and checks that shared scans
//! beat independent scans at both ends.

use workshare_bench::{banner, full_scale, secs, TextTable};
use workshare_core::{
    harness::run_batch, workload, Dataset, IoMode, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Table 1 — rules of thumb, derived from measurements",
        "low concurrency → query-centric + SP; high → GQP + SP; \
         shared scans always",
    );
    let dataset = Dataset::ssb(1.0, 42);
    let sweep: Vec<usize> = if full_scale() {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 128]
    };

    let mut table = TextTable::new(&[
        "queries",
        "QPipe-SP (query-centric+SP)",
        "CJOIN-SP (GQP+SP)",
        "winner",
    ]);
    let mut crossover: Option<usize> = None;
    for &n in &sweep {
        // Low-similarity, high-work mix (the Fig. 12 regime): wide nation
        // disjunctions leave no common sub-plans for SP, so the trade-off
        // between query-centric evaluation and shared operators is exposed.
        let mut r = workload::rng(23);
        let queries: Vec<_> = (0..n)
            .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, 14, 13))
            .collect();
        let run = |engine| {
            let cfg = RunConfig::named(engine);
            run_batch(&dataset, &cfg, &queries, false).mean_latency_secs()
        };
        let sp = run(NamedConfig::QpipeSp);
        let cj = run(NamedConfig::CjoinSp);
        let winner = if sp <= cj { "query-centric+SP" } else { "GQP+SP" };
        if sp > cj && crossover.is_none() {
            crossover = Some(n);
        }
        table.row(vec![n.to_string(), secs(sp), secs(cj), winner.to_string()]);
    }
    table.print();
    match crossover {
        Some(n) => println!(
            "\nCrossover at ~{n} concurrent queries → Table 1 holds: \
             query-centric operators + SP below, GQP + SP above."
        ),
        None => println!(
            "\nNo crossover inside the sweep (query-centric + SP won \
             throughout this range; extend with WORKSHARE_FULL=1)."
        ),
    }

    // I/O-layer row: shared scans vs independent scans at both ends.
    println!("\nI/O layer check (shared vs independent scans, disk-resident):");
    let mut io_t = TextTable::new(&["queries", "QPipe (indep.)", "QPipe-CS (shared)"]);
    for &n in &[4usize, *sweep.last().unwrap()] {
        let mut r = workload::rng(5);
        let queries: Vec<_> = (0..n)
            .map(|i| workload::ssb_q3_2(i as u64, &mut r))
            .collect();
        let run = |engine| {
            let mut cfg = RunConfig::named(engine);
            cfg.io_mode = IoMode::BufferedDisk;
            run_batch(&dataset, &cfg, &queries, false).mean_latency_secs()
        };
        io_t.row(vec![
            n.to_string(),
            secs(run(NamedConfig::Qpipe)),
            secs(run(NamedConfig::QpipeCs)),
        ]);
    }
    io_t.print();
    println!("\nShared scans should win (or tie) at both ends → last column smaller.");
}
