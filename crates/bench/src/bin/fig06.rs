//! Figure 6 — Sharing vs. Parallelism: push-based SP (FIFO) vs pull-based
//! SP (SPL) on identical TPC-H Q1 queries, memory-resident, SF 1.
//!
//! * Fig. 6a: `No SP (FIFO)` vs `CS (FIFO)` response times, 1–64 queries.
//! * Fig. 6b: `No SP (SPL)` vs `CS (SPL)`.
//! * Fig. 6c: speedup of CS over No-SP for both models, low concurrency.
//! * §4 extra: SPL max-size sweep (insensitivity check).
//!
//! Paper: CS(FIFO) hurts at low concurrency (serialization point: 3.1 cores
//! at 64 queries) while No-SP saturates 24 cores at ≥32 queries; CS(SPL) is
//! never worse than No-SP and cuts response times by 82–86 % vs CS(FIFO) at
//! high concurrency.

use workshare_bench::{banner, f2, full_scale, pow2_sweep, secs, TextTable};
use workshare_core::{
    harness::run_batch_on, workload, Dataset, ExchangeKind, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Figure 6 — identical TPC-H Q1: push SP (FIFO) vs pull SP (SPL)",
        "CS(FIFO) serializes (worse than No-SP at low concurrency); \
         CS(SPL) always >= No-SP; SPL -82..86% vs FIFO at 64 queries",
    );
    let sf = if full_scale() { 1.0 } else { 0.5 };
    let dataset = Dataset::tpch(sf, 42);
    let sweep = pow2_sweep(64);

    let variants: [(&str, NamedConfig, ExchangeKind); 4] = [
        ("No SP (FIFO)", NamedConfig::Qpipe, ExchangeKind::Fifo),
        ("CS (FIFO)", NamedConfig::QpipeCs, ExchangeKind::Fifo),
        ("No SP (SPL)", NamedConfig::Qpipe, ExchangeKind::Spl),
        ("CS (SPL)", NamedConfig::QpipeSp, ExchangeKind::Spl),
    ];

    let mut table = TextTable::new(&[
        "queries",
        "No SP (FIFO)",
        "CS (FIFO)",
        "No SP (SPL)",
        "CS (SPL)",
        "cores CS(FIFO)",
        "cores CS(SPL)",
    ]);
    let mut results: Vec<Vec<f64>> = Vec::new();
    for &n in &sweep {
        let queries: Vec<_> = (0..n).map(|i| workload::tpch_q1(i as u64)).collect();
        let mut row_times = Vec::new();
        let mut cores = Vec::new();
        for (_, engine, kind) in &variants {
            let mut cfg = RunConfig::named(*engine);
            cfg.exchange = *kind;
            let rep = run_batch_on(&dataset, &cfg, "lineitem", &queries, false);
            row_times.push(rep.mean_latency_secs());
            cores.push(rep.avg_cores_used);
        }
        table.row(vec![
            n.to_string(),
            secs(row_times[0]),
            secs(row_times[1]),
            secs(row_times[2]),
            secs(row_times[3]),
            f2(cores[1]),
            f2(cores[3]),
        ]);
        results.push(row_times);
    }
    println!("\nResponse time (virtual seconds), mean over the batch:");
    table.print();

    // Fig 6c: speedups at low concurrency.
    println!("\nFig. 6c — speedup of CS over No-SP (values > 1 favor sharing):");
    let mut sp = TextTable::new(&["queries", "(NoSP/CS) FIFO", "(NoSP/CS) SPL"]);
    for (i, &n) in sweep.iter().enumerate() {
        if n > 16 {
            break;
        }
        let r = &results[i];
        sp.row(vec![
            n.to_string(),
            f2(r[0] / r[1].max(1e-12)),
            f2(r[2] / r[3].max(1e-12)),
        ]);
    }
    sp.print();

    // High-concurrency reduction (the 82–86 % claim).
    if let Some(last) = results.last() {
        let reduction = 100.0 * (1.0 - last[3] / last[1].max(1e-12));
        println!(
            "\nAt {} queries: CS(SPL) reduces response time vs CS(FIFO) by {:.0}% \
             (paper: 82–86%)",
            sweep.last().unwrap(),
            reduction
        );
    }

    // §4: SPL max-size insensitivity (8 queries, varying cap). The cap is a
    // compile-time default (8 pages); we emulate the sweep by observing that
    // response time is already bound by compute, reporting the single point
    // plus the queue-capacity ablation in the criterion benches.
    let queries: Vec<_> = (0..8).map(|i| workload::tpch_q1(i as u64)).collect();
    let mut cfg = RunConfig::named(NamedConfig::QpipeSp);
    cfg.exchange = ExchangeKind::Spl;
    let rep = run_batch_on(&dataset, &cfg, "lineitem", &queries, false);
    println!(
        "\n§4 SPL-size check (8 queries, 256 KB cap): {:.3}s mean response — \
         see `spl_vs_fifo` criterion bench for the cap sweep.",
        rep.mean_latency_secs()
    );
}
