//! Ablation — DataPath-style shared aggregation (paper §2.4): folding
//! tuples into per-query aggregators inside the CJOIN distributor, instead
//! of streaming joined pages to query-centric aggregation packets.
//!
//! Saves one exchange hop and one packet thread per query; the effect grows
//! with concurrency (fewer threads contending for virtual cores).

use workshare_bench::{banner, f2, pow2_sweep, secs, TextTable};
use workshare_core::{harness::run_batch, workload, Dataset, NamedConfig, RunConfig};

fn main() {
    banner(
        "Ablation — shared aggregation in the GQP distributor",
        "CJOIN+shared-agg <= CJOIN, gap grows with concurrency",
    );
    let dataset = Dataset::ssb(1.0, 42);
    let mut table = TextTable::new(&[
        "queries",
        "CJOIN",
        "CJOIN+shared-agg",
        "CJOIN-SP",
        "CJOIN-SP+shared-agg",
        "Δ cores",
    ]);
    for &n in &pow2_sweep(128)[2..] {
        let queries = workload::limited_plans(n, 16, 9, workload::ssb_q3_2);
        let mut cells = vec![n.to_string()];
        let mut cores = Vec::new();
        for engine in [NamedConfig::Cjoin, NamedConfig::CjoinSp] {
            for shared_agg in [false, true] {
                let mut cfg = RunConfig::named(engine);
                cfg.cjoin_shared_agg = shared_agg;
                let rep = run_batch(&dataset, &cfg, &queries, false);
                cells.push(secs(rep.mean_latency_secs()));
                cores.push(rep.avg_cores_used);
            }
        }
        // Reorder cells: currently [n, cj, cj+sa, cjsp, cjsp+sa]
        cells.push(f2(cores[1] - cores[0]));
        table.row(cells);
    }
    println!("\nResponse time (virtual seconds):");
    table.print();
}
