//! Figure 10 — Impact of concurrency: QPipe / QPipe-CS / QPipe-SP / CJOIN on
//! 1–256 concurrent SSB Q3.2 instances (random predicates, selectivity
//! 0.02–0.16 %), memory-resident and disk-resident, SF 1.
//!
//! Paper: QPipe saturates 24 cores by ~32 queries and degrades sharply;
//! circular scans (CS) reduce contention; SP exploits common sub-plans
//! (the Q3.2 template yields ~126/17/1 shares of the 1st/2nd/3rd hash-join
//! at 256 queries); CJOIN's shared operators are flattest at high
//! concurrency but pay admission overhead visible at low concurrency.
//! Disk-resident: QPipe collapses to ~1.9 MB/s read rate; CS improves
//! response times by 80–97 %.

use workshare_bench::{banner, f2, full_scale, pow2_sweep, secs, TextTable};
use workshare_core::{
    harness::run_batch, workload, Dataset, IoMode, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Figure 10 — concurrency sweep, SSB Q3.2, SF 1 (memory & disk)",
        "QPipe worst at high concurrency; CS/SP progressively better; \
         CJOIN flattest at 256; shared scans -80..97% on disk",
    );
    let dataset = Dataset::ssb(1.0, 42);
    let max_q = if full_scale() { 256 } else { 128 };
    let sweep = pow2_sweep(max_q);
    let engines = [
        NamedConfig::Qpipe,
        NamedConfig::QpipeCs,
        NamedConfig::QpipeSp,
        NamedConfig::Cjoin,
    ];

    for io in [IoMode::Memory, IoMode::BufferedDisk] {
        println!(
            "\n--- {} database ---",
            if io == IoMode::Memory {
                "Memory-resident"
            } else {
                "Disk-resident"
            }
        );
        let mut table = TextTable::new(&[
            "queries", "QPipe", "QPipe-CS", "QPipe-SP", "CJOIN",
        ]);
        let mut final_stats = Vec::new();
        for &n in &sweep {
            let mut r = workload::rng(7);
            let queries: Vec<_> = (0..n)
                .map(|i| workload::ssb_q3_2(i as u64, &mut r))
                .collect();
            let mut cells = vec![n.to_string()];
            for engine in engines {
                let mut cfg = RunConfig::named(engine);
                cfg.io_mode = io;
                let rep = run_batch(&dataset, &cfg, &queries, false);
                cells.push(secs(rep.mean_latency_secs()));
                if n == *sweep.last().unwrap() {
                    final_stats.push(rep);
                }
            }
            table.row(cells);
        }
        println!("Response time (virtual seconds):");
        table.print();

        println!("\nMeasurements at {} concurrent queries:", sweep.last().unwrap());
        let mut mt = TextTable::new(&["metric", "QPipe", "QPipe-CS", "QPipe-SP", "CJOIN"]);
        mt.row(
            std::iter::once("Avg # Cores Used".to_string())
                .chain(final_stats.iter().map(|r| f2(r.avg_cores_used)))
                .collect(),
        );
        if io != IoMode::Memory {
            mt.row(
                std::iter::once("Avg Read Rate (MB/s)".to_string())
                    .chain(final_stats.iter().map(|r| f2(r.read_rate_mbps)))
                    .collect(),
            );
        }
        mt.print();
        if let Some(sp) = final_stats
            .get(2)
            .and_then(|r| r.qpipe_sharing.as_ref())
        {
            println!(
                "QPipe-SP join-stage shares by level (1st/2nd/3rd hash-join): {:?}",
                sp.join_satellites_by_level
            );
        }
    }
}
