//! Ablation — the "to share or not to share" prediction model (Johnson et
//! al. \[14\], discussed in paper §1.3/§4): under push-based SP, a run-time
//! model decides per arrival whether to share; the paper's SPL makes the
//! model unnecessary.
//!
//! Four lines over identical TPC-H Q1 batches:
//!
//! * `No SP (FIFO)` — never share.
//! * `CS (FIFO)` — always share (pays the serialization point when idle
//!   cores were available).
//! * `Predict (FIFO)` — share only once in-flight queries ≥ cores
//!   (the paper §6 "simple heuristic: the point when resources become
//!   saturated").
//! * `CS (SPL)` — pull-based sharing: no model needed, never worse.

use workshare_bench::{banner, pow2_sweep, secs, TextTable};
use workshare_core::{
    harness::run_batch_on, workload, Dataset, ExchangeKind, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Ablation — prediction model for push-based SP vs SPL",
        "Predict(FIFO) tracks the better of NoSP/CS per concurrency; \
         CS(SPL) matches or beats it everywhere with no model",
    );
    let dataset = Dataset::tpch(0.5, 42);
    let sweep = pow2_sweep(64);

    let mut table = TextTable::new(&[
        "queries",
        "No SP (FIFO)",
        "CS (FIFO)",
        "Predict (FIFO)",
        "CS (SPL)",
    ]);
    for &n in &sweep {
        let queries: Vec<_> = (0..n).map(|i| workload::tpch_q1(i as u64)).collect();
        let mut cells = vec![n.to_string()];
        for (engine, kind, predict) in [
            (NamedConfig::Qpipe, ExchangeKind::Fifo, false),
            (NamedConfig::QpipeCs, ExchangeKind::Fifo, false),
            (NamedConfig::QpipeCs, ExchangeKind::Fifo, true),
            (NamedConfig::QpipeCs, ExchangeKind::Spl, false),
        ] {
            let mut cfg = RunConfig::named(engine);
            cfg.exchange = kind;
            cfg.cs_prediction = predict;
            let rep = run_batch_on(&dataset, &cfg, "lineitem", &queries, false);
            cells.push(secs(rep.mean_latency_secs()));
        }
        table.row(cells);
    }
    println!("\nResponse time (virtual seconds):");
    table.print();
}
