//! Figure 16 — SSB query-mix evaluation: Q1.1 / Q2.1 / Q3.2 round-robin,
//! random predicates, disk-resident SF 30 (scaled), QPipe-SP vs CJOIN-SP vs
//! the Postgres-substitute Volcano baseline.
//!
//! Left panel: batch response time, 1–256 queries. Right panel: closed-loop
//! throughput, 1–256 clients.
//!
//! Paper: Postgres wins at low concurrency (mature query-centric executor)
//! but contends at high concurrency (15.9 MB/s read rate at 256);
//! QPipe-SP improves via circular scans + SP; CJOIN-SP best. Postgres and
//! QPipe-SP throughput ultimately degrades with clients; CJOIN-SP keeps
//! rising.

use workshare_bench::{banner, f2, full_scale, pow2_sweep, secs, TextTable};
use workshare_core::{
    harness::{run_batch, run_clients},
    workload, Dataset, IoMode, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Figure 16 — SSB mix (Q1.1/Q2.1/Q3.2), disk-resident",
        "Postgres* best at 1-4 queries, collapses at high concurrency; \
         CJOIN-SP best at scale; throughput: CJOIN-SP keeps rising",
    );
    let sf = if full_scale() { 30.0 } else { 3.0 };
    let dataset = Dataset::ssb(sf, 42);
    let engines = [
        NamedConfig::QpipeSp,
        NamedConfig::CjoinSp,
        NamedConfig::Volcano,
    ];
    let max_q = if full_scale() { 256 } else { 64 };
    let sweep = pow2_sweep(max_q);

    // ---- response-time panel ------------------------------------------
    let mut table = TextTable::new(&["queries", "QPipe-SP", "CJOIN-SP", "Postgres*"]);
    let mut final_reps = Vec::new();
    for &n in &sweep {
        let queries = workload::ssb_mix(n, 37);
        let mut cells = vec![n.to_string()];
        for engine in engines {
            let mut cfg = RunConfig::named(engine);
            cfg.io_mode = IoMode::BufferedDisk;
            let rep = run_batch(&dataset, &cfg, &queries, false);
            cells.push(secs(rep.mean_latency_secs()));
            if n == *sweep.last().unwrap() {
                final_reps.push(rep);
            }
        }
        table.row(cells);
    }
    println!("\nResponse time (virtual seconds):");
    table.print();
    println!("\nAt {} queries:", sweep.last().unwrap());
    let mut mt = TextTable::new(&["metric", "QPipe-SP", "CJOIN-SP", "Postgres*"]);
    mt.row(
        std::iter::once("Avg # Cores Used".to_string())
            .chain(final_reps.iter().map(|r| f2(r.avg_cores_used)))
            .collect(),
    );
    mt.row(
        std::iter::once("Avg Read Rate (MB/s)".to_string())
            .chain(final_reps.iter().map(|r| f2(r.read_rate_mbps)))
            .collect(),
    );
    mt.print();
    println!("(paper at 256: cores 19.07/19.11/18.56, read 85/110/16 MB/s)");

    // ---- throughput panel ----------------------------------------------
    let client_sweep: Vec<usize> = if full_scale() {
        vec![1, 4, 16, 64, 128, 256]
    } else {
        vec![1, 4, 8]
    };
    let window = if full_scale() { 30.0 } else { 3.0 };
    println!("\nThroughput (queries per virtual hour), {window}s window:");
    let mut tt = TextTable::new(&["clients", "QPipe-SP", "CJOIN-SP", "Postgres*"]);
    for &c in &client_sweep {
        let mut cells = vec![c.to_string()];
        for engine in engines {
            let mut cfg = RunConfig::named(engine);
            cfg.io_mode = IoMode::BufferedDisk;
            let rep = run_clients(&dataset, &cfg, "lineorder", c, window, 91, |id, rng| {
                match id % 3 {
                    0 => workload::ssb_q1_1(id, rng),
                    1 => workload::ssb_q2_1(id, rng),
                    _ => workload::ssb_q3_2(id, rng),
                }
            });
            cells.push(format!("{:.0}", rep.queries_per_hour));
        }
        tt.row(cells);
    }
    tt.print();
}
