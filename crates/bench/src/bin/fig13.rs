//! Figure 13 — Impact of scale factor: 8 concurrent Q3.2 queries (random
//! predicates, 0.02–0.16 % selectivity), disk-resident databases, SF swept,
//! with and without direct I/O.
//!
//! Paper: both configurations grow linearly with SF but with different
//! slopes (CJOIN above QPipe-SP at this concurrency); with buffered I/O the
//! FS cache's read-ahead masks the CJOIN preprocessor's overhead, while
//! direct I/O exposes it (CJOIN read rate drops below QPipe-SP's).

use workshare_bench::{banner, f2, full_scale, secs, TextTable};
use workshare_core::{
    harness::run_batch, workload, Dataset, IoMode, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Figure 13 — scale-factor sweep, 8 queries, disk-resident",
        "Linear growth, CJOIN slope > QPipe-SP; direct I/O exposes the \
         preprocessor overhead masked by FS-cache read-ahead",
    );
    let sfs: Vec<f64> = if full_scale() {
        vec![1.0, 10.0, 30.0, 50.0, 100.0]
    } else {
        vec![0.5, 1.0, 2.0, 4.0]
    };

    let mut table = TextTable::new(&[
        "SF",
        "QPipe-SP",
        "CJOIN",
        "QPipe-SP (Direct I/O)",
        "CJOIN (Direct I/O)",
    ]);
    let mut last = Vec::new();
    for &sf in &sfs {
        let dataset = Dataset::ssb(sf, 42);
        let mut cells = vec![format!("{sf}")];
        let mut reps = Vec::new();
        for io in [IoMode::BufferedDisk, IoMode::DirectDisk] {
            for engine in [NamedConfig::QpipeSp, NamedConfig::Cjoin] {
                let mut r = workload::rng(17);
                let queries: Vec<_> = (0..8)
                    .map(|i| workload::ssb_q3_2(i as u64, &mut r))
                    .collect();
                let mut cfg = RunConfig::named(engine);
                cfg.io_mode = io;
                let rep = run_batch(&dataset, &cfg, &queries, false);
                cells.push(secs(rep.mean_latency_secs()));
                reps.push(rep);
            }
        }
        table.row(cells);
        if (sf - sfs[sfs.len() - 1]).abs() < 1e-9 {
            last = reps;
        }
    }
    println!("\nResponse time (virtual seconds):");
    table.print();

    if last.len() == 4 {
        println!("\nMeasurements at the largest SF:");
        let mut mt = TextTable::new(&[
            "metric",
            "QPipe-SP",
            "CJOIN",
            "QPipe-SP (Direct)",
            "CJOIN (Direct)",
        ]);
        mt.row(
            std::iter::once("# Cores Used".to_string())
                .chain(last.iter().map(|r| f2(r.avg_cores_used)))
                .collect(),
        );
        mt.row(
            std::iter::once("Read Rate (MB/s)".to_string())
                .chain(last.iter().map(|r| f2(r.read_rate_mbps)))
                .collect(),
        );
        mt.print();
        println!(
            "(paper at SF=100: cores 5.96/1.68 buffered, 5.38/2.47 direct; \
             read rate 97/70 buffered, 216/205 direct)"
        );
    }
}
