//! Figure 15 — Similarity factor at scale: many concurrent queries, a large
//! disk-resident database with a buffer pool fitting ~10 % of it, and a
//! varying number of possible distinct plans.
//!
//! Paper (512 queries, SF 100): CJOIN is insensitive to the number of
//! distinct plans; QPipe-SP wins at extreme similarity (1 plan) but degrades
//! as plans increase; CJOIN-SP exploits identical packets and improves over
//! CJOIN by 20–48 % when common sub-plans exist. Sharing-opportunity table:
//! QPipe-SP per-join shares and CJOIN-SP packet shares fall as plans grow.

use workshare_bench::{banner, full_scale, secs, TextTable};
use workshare_core::{
    harness::run_batch, workload, Dataset, IoMode, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Figure 15 — plan-count sweep at high concurrency (scaled: default \
         128 queries @ our SF 4; WORKSHARE_FULL=1 → 512 queries @ SF 10)",
        "CJOIN flat across plan counts; QPipe-SP best at 1 plan, degrades \
         with more; CJOIN-SP -20..48% vs CJOIN with common sub-plans",
    );
    let (n_queries, sf) = if full_scale() { (512, 10.0) } else { (128, 4.0) };
    let dataset = Dataset::ssb(sf, 42);
    // Buffer pool fits ~10% of the database.
    let pool_pages = (dataset.total_pages() / 10).max(64);
    let plan_counts: Vec<Option<usize>> = if full_scale() {
        vec![Some(1), Some(128), Some(256), Some(512), None]
    } else {
        vec![Some(1), Some(32), Some(64), Some(128), None]
    };

    let mut table = TextTable::new(&[
        "plans",
        "QPipe-SP",
        "CJOIN",
        "CJOIN-SP",
        "SP shares (1st/2nd/3rd)",
        "CJOIN-SP packet shares",
    ]);
    for plans in &plan_counts {
        let queries = match plans {
            Some(k) => workload::limited_plans(n_queries, *k, 31, workload::ssb_q3_2),
            None => {
                let mut r = workload::rng(31);
                (0..n_queries)
                    .map(|i| workload::ssb_q3_2(i as u64, &mut r))
                    .collect()
            }
        };
        let mut cells = vec![plans.map_or("random".to_string(), |k| k.to_string())];
        let mut sp_shares = String::new();
        let mut cj_shares = String::new();
        for engine in [NamedConfig::QpipeSp, NamedConfig::Cjoin, NamedConfig::CjoinSp] {
            let mut cfg = RunConfig::named(engine);
            cfg.io_mode = IoMode::BufferedDisk;
            cfg.buffer_pool_pages = Some(pool_pages);
            let rep = run_batch(&dataset, &cfg, &queries, false);
            cells.push(secs(rep.mean_latency_secs()));
            if engine == NamedConfig::QpipeSp {
                if let Some(s) = &rep.qpipe_sharing {
                    let mut lv = s.join_satellites_by_level.clone();
                    lv.resize(3, 0);
                    sp_shares = format!("{}/{}/{}", lv[0], lv[1], lv[2]);
                }
            }
            if engine == NamedConfig::CjoinSp {
                if let Some(c) = &rep.cjoin {
                    cj_shares = c.sp_shares.to_string();
                }
            }
        }
        cells.push(sp_shares);
        cells.push(cj_shares);
        table.row(cells);
    }
    println!(
        "\nResponse time (virtual seconds), {n_queries} concurrent queries, \
         buffer pool = 10% of DB:"
    );
    table.print();
}
