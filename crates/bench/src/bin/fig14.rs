//! Figure 14 — Impact of similarity: 16 possible Q3.2 plans (selectivity
//! 0.02–0.05 %), disk-resident SF 1, 1–256 concurrent queries, configurations
//! QPipe-CS / QPipe-SP / CJOIN / CJOIN-SP.
//!
//! Paper: QPipe-SP evaluates at most 16 distinct plans and reuses results
//! for the rest (it even beats CJOIN); CJOIN evaluates identical queries
//! redundantly; CJOIN-SP shares identical CJOIN packets (239 shares at 256
//! queries) and wins overall. Endpoint times ~50s / 13s / 14s / 12s.

use workshare_bench::{banner, f2, full_scale, pow2_sweep, secs, TextTable};
use workshare_core::{
    harness::run_batch, workload, Dataset, IoMode, NamedConfig, RunConfig,
};

fn main() {
    banner(
        "Figure 14 — 16 possible plans, disk SF 1, concurrency sweep",
        "QPipe-SP < CJOIN (high similarity favors SP); CJOIN-SP best; \
         QPipe-CS worst at high concurrency",
    );
    let dataset = Dataset::ssb(1.0, 42);
    let max_q = if full_scale() { 256 } else { 128 };
    let sweep = pow2_sweep(max_q);
    let engines = [
        NamedConfig::QpipeCs,
        NamedConfig::QpipeSp,
        NamedConfig::Cjoin,
        NamedConfig::CjoinSp,
    ];

    let mut table = TextTable::new(&[
        "queries",
        "QPipe-CS",
        "QPipe-SP",
        "CJOIN",
        "CJOIN-SP",
    ]);
    let mut final_reps = Vec::new();
    for &n in &sweep {
        let queries = workload::limited_plans(n, 16, 23, workload::ssb_q3_2_narrow);
        let mut cells = vec![n.to_string()];
        for engine in engines {
            let mut cfg = RunConfig::named(engine);
            cfg.io_mode = IoMode::BufferedDisk;
            let rep = run_batch(&dataset, &cfg, &queries, false);
            cells.push(secs(rep.mean_latency_secs()));
            if n == *sweep.last().unwrap() {
                final_reps.push(rep);
            }
        }
        table.row(cells);
    }
    println!("\nResponse time (virtual seconds):");
    table.print();

    println!("\nMeasurements at {} queries:", sweep.last().unwrap());
    let mut mt = TextTable::new(&[
        "metric",
        "QPipe-CS",
        "QPipe-SP",
        "CJOIN",
        "CJOIN-SP",
    ]);
    mt.row(
        std::iter::once("Avg # Cores Used".to_string())
            .chain(final_reps.iter().map(|r| f2(r.avg_cores_used)))
            .collect(),
    );
    mt.row(
        std::iter::once("Avg Read Rate (MB/s)".to_string())
            .chain(final_reps.iter().map(|r| f2(r.read_rate_mbps)))
            .collect(),
    );
    mt.print();

    if let Some(sp) = final_reps.get(1).and_then(|r| r.qpipe_sharing.as_ref()) {
        println!(
            "QPipe-SP join shares by level: {:?} (paper: 2nd×1, 3rd×238 at 256)",
            sp.join_satellites_by_level
        );
    }
    if let Some(cj) = final_reps.get(3).and_then(|r| r.cjoin.as_ref()) {
        println!(
            "CJOIN-SP packets shared: {} of {} queries (paper: 239 of 256)",
            cj.sp_shares,
            sweep.last().unwrap()
        );
    }
}
