//! Figure 12 — Shared operators at high concurrency: 16–256 queries at 30 %
//! selectivity, memory-resident SF 10.
//!
//! Paper: at high concurrency the query-centric operators of QPipe-SP
//! contend for resources (every CPU component scales superlinearly with the
//! query count) while CJOIN's `Hashing` CPU stays flat — the hashing is
//! shared — letting CJOIN overtake QPipe-SP.

use workshare_bench::{banner, breakdown_line, f2, full_scale, secs, TextTable};
use workshare_core::{
    harness::run_batch, workload, Dataset, NamedConfig, RunConfig,
};
use workshare_sim::CostKind;

fn main() {
    banner(
        "Figure 12 — 30% selectivity, concurrency sweep",
        "QPipe-SP CPU scales with query count; CJOIN Hashing stays flat; \
         CJOIN wins at high concurrency",
    );
    let sf = if full_scale() { 10.0 } else { 2.0 };
    let dataset = Dataset::ssb(sf, 42);
    let sweep: Vec<usize> = if full_scale() {
        vec![16, 32, 64, 128, 256]
    } else {
        vec![16, 32, 64, 128]
    };

    let mut table = TextTable::new(&[
        "queries",
        "QPipe-SP",
        "CJOIN",
        "CJOIN admission",
        "SP hashing CPU",
        "CJOIN hashing CPU",
    ]);
    let mut last = None;
    for &n in &sweep {
        let mut r = workload::rng(13);
        let queries: Vec<_> = (0..n)
            .map(|i| workload::ssb_q3_2_wide(i as u64, &mut r, 14, 13))
            .collect();
        let sp = run_batch(
            &dataset,
            &RunConfig::named(NamedConfig::QpipeSp),
            &queries,
            false,
        );
        // Paper-faithful CJOIN: the figure's admission component is the
        // *serial* per-query admission of §3.2 (the default engine now
        // shares the scans across the batch; see the `admission` bench).
        let mut cj_cfg = RunConfig::named(NamedConfig::Cjoin);
        cj_cfg.cjoin_serial_admission = true;
        let cj = run_batch(&dataset, &cj_cfg, &queries, false);
        table.row(vec![
            n.to_string(),
            secs(sp.mean_latency_secs()),
            secs(cj.mean_latency_secs()),
            secs(cj.admission_secs()),
            f2(sp.cpu.secs(CostKind::Hashing)),
            f2(cj.cpu.secs(CostKind::Hashing)),
        ]);
        last = Some((sp, cj));
    }
    println!("\nResponse time (virtual seconds) and hashing CPU:");
    table.print();

    if let Some((sp, cj)) = last {
        println!("\nBreakdowns at {} queries:", sweep.last().unwrap());
        println!("  QPipe-SP: {}", breakdown_line(&sp.cpu));
        println!("  CJOIN   : {}", breakdown_line(&cj.cpu));
        println!(
            "  cores used: QPipe-SP={} CJOIN={} (paper: 22.86 vs 17.73)",
            f2(sp.avg_cores_used),
            f2(cj.avg_cores_used)
        );
    }
}
