//! The storage manager: tables, I/O modes, and the page read path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use workshare_common::codec::Page;
use workshare_common::{CostModel, Schema, PAGE_SIZE};
use workshare_sim::disk::StreamId;
use workshare_sim::{CostKind, SimCtx};

use crate::bufferpool::BufferPool;
use crate::fscache::FsCache;

/// Identifies a registered table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// Residency / I/O behavior of the database (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Memory-resident database: reads never touch the disk model.
    Memory,
    /// Disk-resident behind the FS cache (read-ahead, coalescing).
    BufferedDisk,
    /// Disk-resident with direct I/O: per-page requests, no FS cache.
    DirectDisk,
}

/// Storage manager configuration.
#[derive(Debug, Clone, Copy)]
pub struct StorageConfig {
    /// Residency mode.
    pub io_mode: IoMode,
    /// Buffer-pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// FS-cache read-ahead extent size in pages (32 pages = 1 MB extents).
    pub fs_extent_pages: usize,
    /// FS-cache capacity in extents.
    pub fs_cache_extents: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            io_mode: IoMode::Memory,
            // "A large buffer pool that fits datasets of scale factors up to
            // 30" — default generous; experiments override (e.g. Fig. 15 uses
            // a pool fitting 10 % of the database).
            buffer_pool_pages: 1 << 20,
            fs_extent_pages: 32,
            fs_cache_extents: 1 << 16,
        }
    }
}

struct TableData {
    name: String,
    schema: Arc<Schema>,
    pages: Arc<Vec<Page>>,
    rows: usize,
}

/// Heap-table storage over the simulated disk. Cheap to clone (shared).
#[derive(Clone)]
pub struct StorageManager {
    inner: Arc<StorageInner>,
}

struct StorageInner {
    config: StorageConfig,
    cost: CostModel,
    tables: RwLock<Vec<TableData>>,
    pool: Mutex<BufferPool>,
    fs: Mutex<FsCache>,
    stream_counter: AtomicU64,
}

impl StorageManager {
    /// Create a storage manager with the given configuration and cost model.
    pub fn new(config: StorageConfig, cost: CostModel) -> StorageManager {
        StorageManager {
            inner: Arc::new(StorageInner {
                config,
                cost,
                tables: RwLock::new(Vec::new()),
                pool: Mutex::new(BufferPool::new(config.buffer_pool_pages)),
                fs: Mutex::new(FsCache::new(config.fs_cache_extents)),
                stream_counter: AtomicU64::new(1),
            }),
        }
    }

    /// Active configuration.
    pub fn config(&self) -> StorageConfig {
        self.inner.config
    }

    /// Cost model used for latch charging.
    pub fn cost_model(&self) -> CostModel {
        self.inner.cost
    }

    /// Register a table from pre-built pages (the datagen loaders call this).
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        pages: Vec<Page>,
    ) -> TableId {
        let rows = pages.iter().map(|p| p.row_count()).sum();
        let mut tables = self.inner.tables.write();
        assert!(
            tables.iter().all(|t| t.name != name),
            "table '{name}' already exists"
        );
        let id = TableId(tables.len() as u32);
        tables.push(TableData {
            name: name.to_string(),
            schema: Arc::new(schema),
            pages: Arc::new(pages),
            rows,
        });
        id
    }

    /// Resolve a table by name; panics if absent (plans are machine-built).
    pub fn table(&self, name: &str) -> TableId {
        self.try_table(name)
            .unwrap_or_else(|| panic!("no table named '{name}'"))
    }

    /// Resolve a table by name.
    pub fn try_table(&self, name: &str) -> Option<TableId> {
        self.inner
            .tables
            .read()
            .iter()
            .position(|t| t.name == name)
            .map(|i| TableId(i as u32))
    }

    /// Table schema (shared).
    pub fn schema(&self, t: TableId) -> Arc<Schema> {
        Arc::clone(&self.inner.tables.read()[t.0 as usize].schema)
    }

    /// Number of pages in the table.
    pub fn page_count(&self, t: TableId) -> usize {
        self.inner.tables.read()[t.0 as usize].pages.len()
    }

    /// Number of rows in the table.
    pub fn row_count(&self, t: TableId) -> usize {
        self.inner.tables.read()[t.0 as usize].rows
    }

    /// Table name.
    pub fn table_name(&self, t: TableId) -> String {
        self.inner.tables.read()[t.0 as usize].name.clone()
    }

    /// Total encoded bytes of the table.
    pub fn table_bytes(&self, t: TableId) -> u64 {
        self.inner.tables.read()[t.0 as usize]
            .pages
            .iter()
            .map(|p| p.byte_len() as u64)
            .sum()
    }

    /// Allocate a fresh I/O stream id (one per scan cursor; the disk model
    /// charges a seek when served streams interleave).
    pub fn new_stream(&self) -> StreamId {
        self.inner.stream_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Read one page on behalf of `ctx`, charging latch CPU and blocking on
    /// simulated I/O according to the configured [`IoMode`].
    pub fn read_page(
        &self,
        ctx: &SimCtx,
        t: TableId,
        page_no: usize,
        stream: StreamId,
    ) -> Page {
        let (page, total_pages) = {
            let tables = self.inner.tables.read();
            let td = &tables[t.0 as usize];
            (td.pages[page_no].clone(), td.pages.len())
        };
        let cost = &self.inner.cost;
        match self.inner.config.io_mode {
            IoMode::Memory => {
                // Resident database: only the buffer-pool latch is paid.
                ctx.charge(CostKind::Locks, cost.lock_acquire_ns);
            }
            IoMode::BufferedDisk => {
                let key = (t.0, page_no as u32);
                ctx.charge(CostKind::Locks, cost.lock_acquire_ns);
                let hit = self.inner.pool.lock().get(key).is_some();
                if !hit {
                    let extent_pages = self.inner.config.fs_extent_pages.max(1);
                    let extent = (page_no / extent_pages) as u32;
                    let cached = self.inner.fs.lock().probe((t.0, extent));
                    if !cached {
                        // Read-ahead: fetch the whole extent in one request.
                        let first = extent as usize * extent_pages;
                        let npages = extent_pages.min(total_pages - first);
                        ctx.io_read(stream, (npages * PAGE_SIZE) as u64);
                        self.inner.fs.lock().admit((t.0, extent));
                    } else {
                        // Copy from the OS cache into the pool.
                        ctx.charge(
                            CostKind::Misc,
                            cost.copy_cost(page.byte_len()),
                        );
                    }
                    self.inner.pool.lock().insert(key, page.clone());
                }
            }
            IoMode::DirectDisk => {
                let key = (t.0, page_no as u32);
                ctx.charge(CostKind::Locks, cost.lock_acquire_ns);
                let hit = self.inner.pool.lock().get(key).is_some();
                if !hit {
                    ctx.io_read(stream, page.byte_len() as u64);
                    self.inner.pool.lock().insert(key, page.clone());
                }
            }
        }
        page
    }

    /// Buffer-pool (hits, misses).
    pub fn pool_stats(&self) -> (u64, u64) {
        self.inner.pool.lock().stats()
    }

    /// FS-cache (hits, misses).
    pub fn fs_stats(&self) -> (u64, u64) {
        self.inner.fs.lock().stats()
    }

    /// Drop buffer-pool and FS-cache contents ("we clear the file system
    /// caches before every measurement", paper §5.1).
    pub fn reset_caches(&self) {
        self.inner.pool.lock().clear();
        self.inner.fs.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::codec::PageBuilder;
    use workshare_common::{ColType, Column, Value};
    use workshare_sim::{Machine, MachineConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColType::Int),
            Column::new("pad", ColType::Str(100)),
        ])
    }

    fn build_table(rows: usize) -> Vec<Page> {
        let s = schema();
        let mut b = PageBuilder::new(&s);
        for i in 0..rows {
            b.push(&[Value::Int(i as i64), Value::str("x")]);
        }
        b.finish()
    }

    fn manager(mode: IoMode, pool_pages: usize) -> StorageManager {
        StorageManager::new(
            StorageConfig {
                io_mode: mode,
                buffer_pool_pages: pool_pages,
                fs_extent_pages: 4,
                fs_cache_extents: 1024,
            },
            CostModel::default(),
        )
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 2,
            ..Default::default()
        })
    }

    fn scan_all(m: &Machine, sm: &StorageManager, t: TableId) -> usize {
        let sm = sm.clone();
        let pages = sm.page_count(t);
        m.spawn("scan", move |ctx| {
            let stream = sm.new_stream();
            let schema = sm.schema(t);
            let mut n = 0;
            for p in 0..pages {
                let page = sm.read_page(ctx, t, p, stream);
                n += page.decode_all(&schema).len();
            }
            n
        })
        .join()
        .unwrap()
    }

    #[test]
    fn memory_mode_never_touches_disk() {
        let m = machine();
        let sm = manager(IoMode::Memory, 16);
        let t = sm.create_table("t", schema(), build_table(5000));
        let n = scan_all(&m, &sm, t);
        assert_eq!(n, 5000);
        assert_eq!(m.disk_stats().bytes_read, 0);
    }

    #[test]
    fn buffered_disk_reads_extents_once() {
        let m = machine();
        let sm = manager(IoMode::BufferedDisk, 4096);
        let t = sm.create_table("t", schema(), build_table(5000));
        let pages = sm.page_count(t);
        scan_all(&m, &sm, t);
        let s1 = m.disk_stats();
        // Extent reads: ceil(pages/4) requests.
        assert_eq!(s1.requests as usize, pages.div_ceil(4));
        assert!(s1.bytes_read >= (pages * PAGE_SIZE) as u64);
        // Second scan: everything cached (pool or FS cache) → no new I/O.
        scan_all(&m, &sm, t);
        assert_eq!(m.disk_stats().requests, s1.requests);
    }

    #[test]
    fn direct_disk_reads_per_page() {
        let m = machine();
        let sm = manager(IoMode::DirectDisk, 4096);
        let t = sm.create_table("t", schema(), build_table(5000));
        let pages = sm.page_count(t);
        scan_all(&m, &sm, t);
        assert_eq!(m.disk_stats().requests as usize, pages);
    }

    #[test]
    fn tiny_pool_rereads_after_eviction_in_direct_mode() {
        let m = machine();
        let sm = manager(IoMode::DirectDisk, 2);
        let t = sm.create_table("t", schema(), build_table(5000));
        let pages = sm.page_count(t);
        assert!(pages > 4);
        scan_all(&m, &sm, t);
        let r1 = m.disk_stats().requests;
        scan_all(&m, &sm, t);
        let r2 = m.disk_stats().requests;
        assert_eq!(r2, 2 * r1, "nothing stays cached with a 2-page pool");
    }

    #[test]
    fn reset_caches_forces_io_again() {
        let m = machine();
        let sm = manager(IoMode::BufferedDisk, 4096);
        let t = sm.create_table("t", schema(), build_table(1000));
        scan_all(&m, &sm, t);
        let r1 = m.disk_stats().requests;
        sm.reset_caches();
        scan_all(&m, &sm, t);
        assert_eq!(m.disk_stats().requests, 2 * r1);
    }

    #[test]
    fn table_registry_lookup_and_metadata() {
        let sm = manager(IoMode::Memory, 16);
        let t = sm.create_table("lineorder", schema(), build_table(100));
        assert_eq!(sm.table("lineorder"), t);
        assert_eq!(sm.try_table("nope"), None);
        assert_eq!(sm.row_count(t), 100);
        assert_eq!(sm.table_name(t), "lineorder");
        assert!(sm.table_bytes(t) > 0);
        assert!(sm.page_count(t) >= 1);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_table_rejected() {
        let sm = manager(IoMode::Memory, 16);
        sm.create_table("t", schema(), vec![]);
        sm.create_table("t", schema(), vec![]);
    }

    #[test]
    fn streams_are_unique() {
        let sm = manager(IoMode::Memory, 16);
        let a = sm.new_stream();
        let b = sm.new_stream();
        assert_ne!(a, b);
    }
}
