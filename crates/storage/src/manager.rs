//! The storage manager: tables, I/O modes, and the page read path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use workshare_common::codec::Page;
use workshare_common::{CostModel, Schema, PAGE_SIZE};
use workshare_sim::disk::StreamId;
use workshare_sim::{CostKind, SimCtx};

use crate::bufferpool::BufferPool;
use crate::fault::{page_checksum, FaultSite, FaultState};
use crate::fscache::FsCache;
use crate::{StorageError, StorageFaultPlan, StorageFaultStats};

/// Attempts (first try + retries) before a failing page read gives up.
pub const MAX_PAGE_ATTEMPTS: u32 = 4;

/// Virtual-time backoff before the first page-read retry; doubles per retry.
pub const PAGE_RETRY_BACKOFF_NS: f64 = 20_000.0;

/// Identifies a registered table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// Residency / I/O behavior of the database (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Memory-resident database: reads never touch the disk model.
    Memory,
    /// Disk-resident behind the FS cache (read-ahead, coalescing).
    BufferedDisk,
    /// Disk-resident with direct I/O: per-page requests, no FS cache.
    DirectDisk,
}

/// Storage manager configuration.
#[derive(Debug, Clone, Copy)]
pub struct StorageConfig {
    /// Residency mode.
    pub io_mode: IoMode,
    /// Buffer-pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// FS-cache read-ahead extent size in pages (32 pages = 1 MB extents).
    pub fs_extent_pages: usize,
    /// FS-cache capacity in extents.
    pub fs_cache_extents: usize,
    /// Seeded page-fault schedule (default fully off).
    pub faults: StorageFaultPlan,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            io_mode: IoMode::Memory,
            // "A large buffer pool that fits datasets of scale factors up to
            // 30" — default generous; experiments override (e.g. Fig. 15 uses
            // a pool fitting 10 % of the database).
            buffer_pool_pages: 1 << 20,
            fs_extent_pages: 32,
            fs_cache_extents: 1 << 16,
            faults: StorageFaultPlan::default(),
        }
    }
}

struct TableData {
    name: String,
    schema: Arc<Schema>,
    pages: Arc<Vec<Page>>,
    /// Per-page FNV-1a checksums, verified on read when faults are armed.
    sums: Arc<Vec<u64>>,
    rows: usize,
}

/// Heap-table storage over the simulated disk. Cheap to clone (shared).
#[derive(Clone)]
pub struct StorageManager {
    inner: Arc<StorageInner>,
}

struct StorageInner {
    config: StorageConfig,
    cost: CostModel,
    tables: RwLock<Vec<TableData>>,
    pool: Mutex<BufferPool>,
    fs: Mutex<FsCache>,
    stream_counter: AtomicU64,
    fault: FaultState,
}

impl StorageManager {
    /// Create a storage manager with the given configuration and cost model.
    pub fn new(config: StorageConfig, cost: CostModel) -> StorageManager {
        StorageManager {
            inner: Arc::new(StorageInner {
                config,
                cost,
                tables: RwLock::new(Vec::new()),
                pool: Mutex::new(BufferPool::new(config.buffer_pool_pages)),
                fs: Mutex::new(FsCache::new(config.fs_cache_extents)),
                stream_counter: AtomicU64::new(1),
                fault: FaultState::new(),
            }),
        }
    }

    /// Active configuration.
    pub fn config(&self) -> StorageConfig {
        self.inner.config
    }

    /// Cost model used for latch charging.
    pub fn cost_model(&self) -> CostModel {
        self.inner.cost
    }

    /// Register a table from pre-built pages (the datagen loaders call this).
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        pages: Vec<Page>,
    ) -> TableId {
        let rows = pages.iter().map(|p| p.row_count()).sum();
        let mut tables = self.inner.tables.write();
        assert!(
            tables.iter().all(|t| t.name != name),
            "table '{name}' already exists"
        );
        let id = TableId(tables.len() as u32);
        let sums = pages.iter().map(|p| page_checksum(p.bytes())).collect();
        tables.push(TableData {
            name: name.to_string(),
            schema: Arc::new(schema),
            pages: Arc::new(pages),
            sums: Arc::new(sums),
            rows,
        });
        id
    }

    /// Resolve a table by name; panics if absent (plans are machine-built).
    pub fn table(&self, name: &str) -> TableId {
        self.try_table(name)
            .unwrap_or_else(|| panic!("no table named '{name}'"))
    }

    /// Resolve a table by name.
    pub fn try_table(&self, name: &str) -> Option<TableId> {
        self.inner
            .tables
            .read()
            .iter()
            .position(|t| t.name == name)
            .map(|i| TableId(i as u32))
    }

    /// Table schema (shared).
    pub fn schema(&self, t: TableId) -> Arc<Schema> {
        Arc::clone(&self.inner.tables.read()[t.0 as usize].schema)
    }

    /// Number of pages in the table.
    pub fn page_count(&self, t: TableId) -> usize {
        self.inner.tables.read()[t.0 as usize].pages.len()
    }

    /// Number of rows in the table.
    pub fn row_count(&self, t: TableId) -> usize {
        self.inner.tables.read()[t.0 as usize].rows
    }

    /// Table name.
    pub fn table_name(&self, t: TableId) -> String {
        self.inner.tables.read()[t.0 as usize].name.clone()
    }

    /// Total encoded bytes of the table.
    pub fn table_bytes(&self, t: TableId) -> u64 {
        self.inner.tables.read()[t.0 as usize]
            .pages
            .iter()
            .map(|p| p.byte_len() as u64)
            .sum()
    }

    /// Allocate a fresh I/O stream id (one per scan cursor; the disk model
    /// charges a seek when served streams interleave).
    pub fn new_stream(&self) -> StreamId {
        self.inner.stream_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Read one page on behalf of `ctx`, charging latch CPU and blocking on
    /// simulated I/O according to the configured [`IoMode`]. Panics on an
    /// unrecovered fault — use [`StorageManager::try_read_page`] on paths
    /// that surface per-query errors.
    pub fn read_page(
        &self,
        ctx: &SimCtx,
        t: TableId,
        page_no: usize,
        stream: StreamId,
    ) -> Page {
        match self.try_read_page(ctx, t, page_no, stream) {
            Ok(page) => page,
            Err(e) => panic!("unrecovered storage fault: {e}"),
        }
    }

    /// Fallible page read: retries transient faults with exponential backoff,
    /// verifies the per-page checksum (quarantining torn pages), and surfaces
    /// unrecoverable faults as a typed [`StorageError`]. With the default
    /// (unarmed) fault plan this is exactly the legacy read path.
    pub fn try_read_page(
        &self,
        ctx: &SimCtx,
        t: TableId,
        page_no: usize,
        stream: StreamId,
    ) -> Result<Page, StorageError> {
        let plan = &self.inner.config.faults;
        if !plan.is_armed() {
            return Ok(self.read_page_raw(ctx, t, page_no, stream));
        }
        let cost = self.inner.cost;
        let key = (t.0, page_no as u32);
        // A quarantined page is rebuilt from the replica before serving:
        // modeled as one page copy of CPU work.
        if self.inner.fault.rebuild(key) {
            let bytes = self.inner.tables.read()[t.0 as usize].pages[page_no].byte_len();
            ctx.charge(CostKind::Misc, cost.copy_cost(bytes));
        }
        // Decide this read's fate up front (seeded, counter-driven), so the
        // schedule replays from the plan's seed.
        let tick = self.inner.fault.tick();
        let permanent = FaultState::fires(plan, FaultSite::Permanent, tick);
        let transient =
            !permanent && FaultState::fires(plan, FaultSite::Transient, tick);
        let torn = !permanent
            && !transient
            && FaultState::fires(plan, FaultSite::Torn, tick);
        if permanent {
            self.inner.fault.count_injected(FaultSite::Permanent);
        } else if transient {
            self.inner.fault.count_injected(FaultSite::Transient);
        } else if torn {
            self.inner.fault.count_injected(FaultSite::Torn);
        }
        let max_attempts = if plan.retry { MAX_PAGE_ATTEMPTS } else { 1 };
        let burst = plan.transient_burst.clamp(1, MAX_PAGE_ATTEMPTS - 1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            // Every attempt pays the physical read (I/O + latches).
            let page = self.read_page_raw(ctx, t, page_no, stream);
            if permanent || (transient && attempt <= burst) {
                if attempt >= max_attempts {
                    return Err(StorageError::PageUnreadable {
                        table: t.0,
                        page: page_no as u32,
                        attempts: attempt,
                    });
                }
                // Bounded retry with exponential backoff.
                self.inner.fault.count_retry();
                ctx.sleep(PAGE_RETRY_BACKOFF_NS * (1u64 << (attempt - 1)) as f64);
                continue;
            }
            // Verify the per-page checksum; a torn read mismatches.
            let expected = self.inner.tables.read()[t.0 as usize].sums[page_no];
            let actual = page_checksum(page.bytes()) ^ if torn { 1 } else { 0 };
            if actual != expected {
                self.inner.fault.quarantine(key);
                return Err(StorageError::TornPage {
                    table: t.0,
                    page: page_no as u32,
                });
            }
            return Ok(page);
        }
    }

    /// Fault-injection and recovery counters (all zero when faults are off).
    pub fn fault_stats(&self) -> StorageFaultStats {
        self.inner.fault.stats()
    }

    /// The unconditional physical read path.
    fn read_page_raw(
        &self,
        ctx: &SimCtx,
        t: TableId,
        page_no: usize,
        stream: StreamId,
    ) -> Page {
        let (page, total_pages) = {
            let tables = self.inner.tables.read();
            let td = &tables[t.0 as usize];
            (td.pages[page_no].clone(), td.pages.len())
        };
        let cost = &self.inner.cost;
        match self.inner.config.io_mode {
            IoMode::Memory => {
                // Resident database: only the buffer-pool latch is paid.
                ctx.charge(CostKind::Locks, cost.lock_acquire_ns);
            }
            IoMode::BufferedDisk => {
                let key = (t.0, page_no as u32);
                ctx.charge(CostKind::Locks, cost.lock_acquire_ns);
                let hit = self.inner.pool.lock().get(key).is_some();
                if !hit {
                    let extent_pages = self.inner.config.fs_extent_pages.max(1);
                    let extent = (page_no / extent_pages) as u32;
                    let cached = self.inner.fs.lock().probe((t.0, extent));
                    if !cached {
                        // Read-ahead: fetch the whole extent in one request.
                        let first = extent as usize * extent_pages;
                        let npages = extent_pages.min(total_pages - first);
                        ctx.io_read(stream, (npages * PAGE_SIZE) as u64);
                        self.inner.fs.lock().admit((t.0, extent));
                    } else {
                        // Copy from the OS cache into the pool.
                        ctx.charge(
                            CostKind::Misc,
                            cost.copy_cost(page.byte_len()),
                        );
                    }
                    self.inner.pool.lock().insert(key, page.clone());
                }
            }
            IoMode::DirectDisk => {
                let key = (t.0, page_no as u32);
                ctx.charge(CostKind::Locks, cost.lock_acquire_ns);
                let hit = self.inner.pool.lock().get(key).is_some();
                if !hit {
                    ctx.io_read(stream, page.byte_len() as u64);
                    self.inner.pool.lock().insert(key, page.clone());
                }
            }
        }
        page
    }

    /// Buffer-pool (hits, misses).
    pub fn pool_stats(&self) -> (u64, u64) {
        self.inner.pool.lock().stats()
    }

    /// FS-cache (hits, misses).
    pub fn fs_stats(&self) -> (u64, u64) {
        self.inner.fs.lock().stats()
    }

    /// Drop buffer-pool and FS-cache contents ("we clear the file system
    /// caches before every measurement", paper §5.1).
    pub fn reset_caches(&self) {
        self.inner.pool.lock().clear();
        self.inner.fs.lock().clear();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use workshare_common::codec::PageBuilder;
    use workshare_common::{ColType, Column, Value};
    use workshare_sim::{Machine, MachineConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", ColType::Int),
            Column::new("pad", ColType::Str(100)),
        ])
    }

    fn build_table(rows: usize) -> Vec<Page> {
        let s = schema();
        let mut b = PageBuilder::new(&s);
        for i in 0..rows {
            b.push(&[Value::Int(i as i64), Value::str("x")]);
        }
        b.finish()
    }

    fn manager(mode: IoMode, pool_pages: usize) -> StorageManager {
        StorageManager::new(
            StorageConfig {
                io_mode: mode,
                buffer_pool_pages: pool_pages,
                fs_extent_pages: 4,
                fs_cache_extents: 1024,
                ..Default::default()
            },
            CostModel::default(),
        )
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            cores: 2,
            ..Default::default()
        })
    }

    fn scan_all(m: &Machine, sm: &StorageManager, t: TableId) -> usize {
        let sm = sm.clone();
        let pages = sm.page_count(t);
        m.spawn("scan", move |ctx| {
            let stream = sm.new_stream();
            let schema = sm.schema(t);
            let mut n = 0;
            for p in 0..pages {
                let page = sm.read_page(ctx, t, p, stream);
                n += page.decode_all(&schema).len();
            }
            n
        })
        .join()
        .unwrap()
    }

    #[test]
    fn memory_mode_never_touches_disk() {
        let m = machine();
        let sm = manager(IoMode::Memory, 16);
        let t = sm.create_table("t", schema(), build_table(5000));
        let n = scan_all(&m, &sm, t);
        assert_eq!(n, 5000);
        assert_eq!(m.disk_stats().bytes_read, 0);
    }

    #[test]
    fn buffered_disk_reads_extents_once() {
        let m = machine();
        let sm = manager(IoMode::BufferedDisk, 4096);
        let t = sm.create_table("t", schema(), build_table(5000));
        let pages = sm.page_count(t);
        scan_all(&m, &sm, t);
        let s1 = m.disk_stats();
        // Extent reads: ceil(pages/4) requests.
        assert_eq!(s1.requests as usize, pages.div_ceil(4));
        assert!(s1.bytes_read >= (pages * PAGE_SIZE) as u64);
        // Second scan: everything cached (pool or FS cache) → no new I/O.
        scan_all(&m, &sm, t);
        assert_eq!(m.disk_stats().requests, s1.requests);
    }

    #[test]
    fn direct_disk_reads_per_page() {
        let m = machine();
        let sm = manager(IoMode::DirectDisk, 4096);
        let t = sm.create_table("t", schema(), build_table(5000));
        let pages = sm.page_count(t);
        scan_all(&m, &sm, t);
        assert_eq!(m.disk_stats().requests as usize, pages);
    }

    #[test]
    fn tiny_pool_rereads_after_eviction_in_direct_mode() {
        let m = machine();
        let sm = manager(IoMode::DirectDisk, 2);
        let t = sm.create_table("t", schema(), build_table(5000));
        let pages = sm.page_count(t);
        assert!(pages > 4);
        scan_all(&m, &sm, t);
        let r1 = m.disk_stats().requests;
        scan_all(&m, &sm, t);
        let r2 = m.disk_stats().requests;
        assert_eq!(r2, 2 * r1, "nothing stays cached with a 2-page pool");
    }

    #[test]
    fn reset_caches_forces_io_again() {
        let m = machine();
        let sm = manager(IoMode::BufferedDisk, 4096);
        let t = sm.create_table("t", schema(), build_table(1000));
        scan_all(&m, &sm, t);
        let r1 = m.disk_stats().requests;
        sm.reset_caches();
        scan_all(&m, &sm, t);
        assert_eq!(m.disk_stats().requests, 2 * r1);
    }

    #[test]
    fn table_registry_lookup_and_metadata() {
        let sm = manager(IoMode::Memory, 16);
        let t = sm.create_table("lineorder", schema(), build_table(100));
        assert_eq!(sm.table("lineorder"), t);
        assert_eq!(sm.try_table("nope"), None);
        assert_eq!(sm.row_count(t), 100);
        assert_eq!(sm.table_name(t), "lineorder");
        assert!(sm.table_bytes(t) > 0);
        assert!(sm.page_count(t) >= 1);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_table_rejected() {
        let sm = manager(IoMode::Memory, 16);
        sm.create_table("t", schema(), vec![]);
        sm.create_table("t", schema(), vec![]);
    }

    #[test]
    fn streams_are_unique() {
        let sm = manager(IoMode::Memory, 16);
        let a = sm.new_stream();
        let b = sm.new_stream();
        assert_ne!(a, b);
    }

    fn faulted_manager(faults: StorageFaultPlan) -> StorageManager {
        StorageManager::new(
            StorageConfig {
                io_mode: IoMode::Memory,
                faults,
                ..Default::default()
            },
            CostModel::default(),
        )
    }

    fn try_scan_all(
        m: &Machine,
        sm: &StorageManager,
        t: TableId,
    ) -> (usize, Vec<StorageError>) {
        let sm = sm.clone();
        let pages = sm.page_count(t);
        m.spawn("scan", move |ctx| {
            let stream = sm.new_stream();
            let mut ok = 0;
            let mut errs = Vec::new();
            for p in 0..pages {
                match sm.try_read_page(ctx, t, p, stream) {
                    Ok(_) => ok += 1,
                    Err(e) => errs.push(e),
                }
            }
            (ok, errs)
        })
        .join()
        .unwrap()
    }

    #[test]
    fn transient_faults_recover_via_retry() {
        let m = machine();
        let sm = faulted_manager(StorageFaultPlan {
            seed: 7,
            transient_stride: Some(3),
            ..Default::default()
        });
        let t = sm.create_table("t", schema(), build_table(5000));
        let (ok, errs) = try_scan_all(&m, &sm, t);
        assert_eq!(ok, sm.page_count(t), "every read recovers");
        assert!(errs.is_empty(), "{errs:?}");
        let fs = sm.fault_stats();
        assert!(fs.injected_transient > 0, "{fs:?}");
        assert!(fs.retries >= fs.injected_transient, "{fs:?}");
        assert!(m.now_ns() > 0.0, "backoff advanced virtual time");
    }

    #[test]
    fn transient_faults_without_retry_surface_errors() {
        let m = machine();
        let sm = faulted_manager(StorageFaultPlan {
            seed: 7,
            transient_stride: Some(3),
            retry: false,
            ..Default::default()
        });
        let t = sm.create_table("t", schema(), build_table(5000));
        let (_, errs) = try_scan_all(&m, &sm, t);
        assert_eq!(errs.len() as u64, sm.fault_stats().injected_transient);
        assert!(!errs.is_empty());
    }

    #[test]
    fn permanent_faults_error_after_bounded_attempts() {
        let m = machine();
        let sm = faulted_manager(StorageFaultPlan {
            seed: 11,
            permanent_stride: Some(4),
            ..Default::default()
        });
        let t = sm.create_table("t", schema(), build_table(5000));
        let (ok, errs) = try_scan_all(&m, &sm, t);
        assert!(ok > 0 && !errs.is_empty());
        for e in &errs {
            assert!(
                matches!(
                    e,
                    StorageError::PageUnreadable { attempts, .. }
                        if *attempts == MAX_PAGE_ATTEMPTS
                ),
                "{e:?}"
            );
        }
    }

    #[test]
    fn torn_pages_quarantine_then_rebuild() {
        let m = machine();
        let sm = faulted_manager(StorageFaultPlan {
            seed: 3,
            torn_stride: Some(5),
            ..Default::default()
        });
        let t = sm.create_table("t", schema(), build_table(5000));
        let (_, errs) = try_scan_all(&m, &sm, t);
        assert!(!errs.is_empty());
        assert!(errs.iter().all(|e| matches!(e, StorageError::TornPage { .. })));
        let fs = sm.fault_stats();
        assert_eq!(fs.pages_quarantined, errs.len() as u64);
        // A second scan rebuilds the quarantined pages (new ticks may tear
        // other pages, but the first scan's casualties all heal).
        try_scan_all(&m, &sm, t);
        assert!(sm.fault_stats().pages_rebuilt >= fs.pages_quarantined, "{fs:?}");
    }
}
