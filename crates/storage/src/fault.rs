//! Typed storage errors and the seeded page-fault injection state.
//!
//! The fault sites here model the media failures a shared-scan engine must
//! survive without stalling the whole crowd (ISSUE 8): **transient** read
//! errors (recovered by bounded retry with exponential backoff inside
//! [`crate::StorageManager::try_read_page`]), **permanent** read errors
//! (surface as a typed [`StorageError`] after retries are exhausted), and
//! **torn pages** caught by the per-page checksum verify (the page is
//! quarantined; the next read rebuilds it from the pristine heap copy,
//! modeling a replica re-fetch).
//!
//! Injection is seeded and counter-driven: every logical page read draws one
//! tick from a global counter, and each site fires when its hash of
//! `(seed, site, tick)` lands on the configured stride. Everything is pure
//! virtual time — no wall clocks — so a failing schedule replays from its
//! seed (see `docs/FAULTS.md`).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// A typed page-read failure. Never a panic: callers turn these into
/// per-query error outcomes (`Ticket::error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The page could not be read after bounded retries.
    PageUnreadable {
        /// Table the page belongs to.
        table: u32,
        /// Page number within the table.
        page: u32,
        /// Read attempts made before giving up.
        attempts: u32,
    },
    /// The per-page checksum did not match: a torn write. The page is
    /// quarantined; the next read rebuilds it.
    TornPage {
        /// Table the page belongs to.
        table: u32,
        /// Page number within the table.
        page: u32,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::PageUnreadable {
                table,
                page,
                attempts,
            } => write!(
                f,
                "page {page} of table {table} unreadable after {attempts} attempts"
            ),
            StorageError::TornPage { table, page } => {
                write!(f, "torn page {page} of table {table} (checksum mismatch)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Seeded fault schedule for the storage layer. Default: fully off — the
/// read path is bit-for-bit the legacy one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultPlan {
    /// Seed mixed into every site's fire decision.
    pub seed: u64,
    /// Every ~`stride`-th read fails transiently (recovered by retry).
    pub transient_stride: Option<u64>,
    /// Consecutive attempts a transient fault poisons before the retry
    /// succeeds (clamped below the retry budget).
    pub transient_burst: u32,
    /// Every ~`stride`-th read fails on every attempt (typed error).
    pub permanent_stride: Option<u64>,
    /// Every ~`stride`-th read returns a torn page (checksum mismatch).
    pub torn_stride: Option<u64>,
    /// Whether the recovery machinery (retry/backoff) runs. `false` models
    /// the no-recovery baseline: the first failed attempt is final.
    pub retry: bool,
}

impl Default for StorageFaultPlan {
    fn default() -> Self {
        StorageFaultPlan {
            seed: 0,
            transient_stride: None,
            transient_burst: 2,
            permanent_stride: None,
            torn_stride: None,
            retry: true,
        }
    }
}

impl StorageFaultPlan {
    /// Whether any storage fault site is armed.
    pub fn is_armed(&self) -> bool {
        self.transient_stride.is_some()
            || self.permanent_stride.is_some()
            || self.torn_stride.is_some()
    }
}

/// Counters the health monitor and `HealthStats` read off the storage layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageFaultStats {
    /// Transient faults injected.
    pub injected_transient: u64,
    /// Permanent faults injected.
    pub injected_permanent: u64,
    /// Torn pages injected.
    pub injected_torn: u64,
    /// Failed attempts that were retried (with backoff).
    pub retries: u64,
    /// Pages quarantined after a checksum mismatch.
    pub pages_quarantined: u64,
    /// Quarantined pages rebuilt on a later read.
    pub pages_rebuilt: u64,
}

impl StorageFaultStats {
    /// Total injected faults across all sites.
    pub fn injected(&self) -> u64 {
        self.injected_transient + self.injected_permanent + self.injected_torn
    }
}

/// Shared injection + quarantine state on the storage manager.
pub(crate) struct FaultState {
    reads: AtomicU64,
    quarantine: Mutex<HashSet<(u32, u32)>>,
    injected_transient: AtomicU64,
    injected_permanent: AtomicU64,
    injected_torn: AtomicU64,
    retries: AtomicU64,
    pages_quarantined: AtomicU64,
    pages_rebuilt: AtomicU64,
}

/// Distinct salts so the sites fire on unrelated read ticks.
#[derive(Clone, Copy)]
pub(crate) enum FaultSite {
    Transient = 1,
    Permanent = 2,
    Torn = 3,
}

fn mix(seed: u64, site: u64, tick: u64) -> u64 {
    // splitmix64-style finalizer: decorrelates the per-site schedules.
    let mut x = tick
        .wrapping_add(seed.rotate_left(17))
        .wrapping_add(site.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultState {
    pub(crate) fn new() -> FaultState {
        FaultState {
            reads: AtomicU64::new(0),
            quarantine: Mutex::new(HashSet::new()),
            injected_transient: AtomicU64::new(0),
            injected_permanent: AtomicU64::new(0),
            injected_torn: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            pages_quarantined: AtomicU64::new(0),
            pages_rebuilt: AtomicU64::new(0),
        }
    }

    /// Draw this read's injection tick.
    pub(crate) fn tick(&self) -> u64 {
        self.reads.fetch_add(1, Ordering::Relaxed)
    }

    /// Whether `site` fires on `tick` under `plan`.
    pub(crate) fn fires(plan: &StorageFaultPlan, site: FaultSite, tick: u64) -> bool {
        let stride = match site {
            FaultSite::Transient => plan.transient_stride,
            FaultSite::Permanent => plan.permanent_stride,
            FaultSite::Torn => plan.torn_stride,
        };
        stride.is_some_and(|s| s > 0 && mix(plan.seed, site as u64, tick).is_multiple_of(s))
    }

    pub(crate) fn count_injected(&self, site: FaultSite) {
        match site {
            FaultSite::Transient => &self.injected_transient,
            FaultSite::Permanent => &self.injected_permanent,
            FaultSite::Torn => &self.injected_torn,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Quarantine a page; returns `false` if it was already quarantined.
    pub(crate) fn quarantine(&self, key: (u32, u32)) -> bool {
        let fresh = self.quarantine.lock().insert(key);
        if fresh {
            self.pages_quarantined.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Take a page out of quarantine (the rebuild path); returns whether it
    /// was quarantined.
    pub(crate) fn rebuild(&self, key: (u32, u32)) -> bool {
        let was = self.quarantine.lock().remove(&key);
        if was {
            self.pages_rebuilt.fetch_add(1, Ordering::Relaxed);
        }
        was
    }

    pub(crate) fn stats(&self) -> StorageFaultStats {
        StorageFaultStats {
            injected_transient: self.injected_transient.load(Ordering::Relaxed),
            injected_permanent: self.injected_permanent.load(Ordering::Relaxed),
            injected_torn: self.injected_torn.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            pages_quarantined: self.pages_quarantined.load(Ordering::Relaxed),
            pages_rebuilt: self.pages_rebuilt.load(Ordering::Relaxed),
        }
    }
}

/// FNV-1a over the encoded page bytes: the per-page checksum verified on
/// every read when faults are armed.
pub(crate) fn page_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_off() {
        let p = StorageFaultPlan::default();
        assert!(!p.is_armed());
        assert!(p.retry);
    }

    #[test]
    fn stride_one_always_fires() {
        let p = StorageFaultPlan {
            transient_stride: Some(1),
            ..Default::default()
        };
        for tick in 0..32 {
            assert!(FaultState::fires(&p, FaultSite::Transient, tick));
        }
        assert!(!FaultState::fires(&p, FaultSite::Permanent, 0));
    }

    #[test]
    fn sites_fire_on_decorrelated_ticks() {
        let p = StorageFaultPlan {
            transient_stride: Some(5),
            permanent_stride: Some(5),
            ..Default::default()
        };
        let (mut t, mut q, mut both) = (0u32, 0u32, 0u32);
        for tick in 0..10_000 {
            let a = FaultState::fires(&p, FaultSite::Transient, tick);
            let b = FaultState::fires(&p, FaultSite::Permanent, tick);
            t += a as u32;
            q += b as u32;
            both += (a && b) as u32;
        }
        // Each site hits ~1/5 of ticks, but not the same ticks.
        assert!((1500..2500).contains(&t), "{t}");
        assert!((1500..2500).contains(&q), "{q}");
        assert!(both < t.min(q) / 2, "sites overlap too much: {both}");
    }

    #[test]
    fn quarantine_roundtrip() {
        let st = FaultState::new();
        assert!(st.quarantine((1, 2)));
        assert!(!st.quarantine((1, 2)), "already quarantined");
        assert!(st.rebuild((1, 2)));
        assert!(!st.rebuild((1, 2)), "already rebuilt");
        let s = st.stats();
        assert_eq!(s.pages_quarantined, 1);
        assert_eq!(s.pages_rebuilt, 1);
    }

    #[test]
    fn checksum_detects_flips() {
        let a = page_checksum(b"hello world");
        let b = page_checksum(b"hello worle");
        assert_ne!(a, b);
    }
}
