//! # workshare-storage — storage manager over the simulated disk
//!
//! The paper runs on Shore-MT; this crate provides the equivalent substrate:
//! heap tables of fixed-width rows in 32 KB pages, read through a **buffer
//! pool** (clock eviction) that sits above a simulated disk. Three I/O modes
//! reproduce the paper's experimental settings:
//!
//! * [`IoMode::Memory`] — the database is RAM-resident (Fig. 10 left,
//!   Figs. 11/12): reads never touch the disk model.
//! * [`IoMode::BufferedDisk`] — disk-resident behind an **FS cache** with
//!   extent-granular read-ahead, which coalesces sequential I/O and masks
//!   CJOIN's preprocessor overhead exactly as the Linux page cache does in
//!   the paper (Fig. 13).
//! * [`IoMode::DirectDisk`] — direct I/O: every buffer-pool miss issues a
//!   per-page disk request, exposing seek and per-request costs (Fig. 13's
//!   `Direct I/O` series).
//!
//! All methods take the calling vthread's `SimCtx` so CPU costs (latching)
//! and I/O waits land on the virtual timeline.

mod bufferpool;
mod fscache;
mod manager;

pub use bufferpool::BufferPool;
pub use fscache::FsCache;
pub use manager::{IoMode, StorageConfig, StorageManager, TableId};
