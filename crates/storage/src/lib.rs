//! # workshare-storage — storage manager over the simulated disk
//!
//! The paper runs on Shore-MT; this crate provides the equivalent substrate:
//! heap tables of fixed-width rows in 32 KB pages, read through a **buffer
//! pool** (clock eviction) that sits above a simulated disk. Three I/O modes
//! reproduce the paper's experimental settings:
//!
//! * [`IoMode::Memory`] — the database is RAM-resident (Fig. 10 left,
//!   Figs. 11/12): reads never touch the disk model.
//! * [`IoMode::BufferedDisk`] — disk-resident behind an **FS cache** with
//!   extent-granular read-ahead, which coalesces sequential I/O and masks
//!   CJOIN's preprocessor overhead exactly as the Linux page cache does in
//!   the paper (Fig. 13).
//! * [`IoMode::DirectDisk`] — direct I/O: every buffer-pool miss issues a
//!   per-page disk request, exposing seek and per-request costs (Fig. 13's
//!   `Direct I/O` series).
//!
//! All methods take the calling vthread's `SimCtx` so CPU costs (latching)
//! and I/O waits land on the virtual timeline.

//!
//! Page reads are fallible ([`StorageManager::try_read_page`]): transient
//! faults recover via bounded retry with exponential backoff, torn pages are
//! caught by per-page checksums and quarantined, and unrecoverable faults
//! surface as a typed [`StorageError`] — never a panic on query paths. The
//! seeded [`StorageFaultPlan`] (default off) drives deterministic fault
//! injection for the chaos tests (`docs/FAULTS.md`).

// Query-path code must surface typed errors, not unwrap; tests may unwrap.
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod bufferpool;
mod fault;
mod fscache;
mod manager;

pub use bufferpool::BufferPool;
pub use fault::{StorageError, StorageFaultPlan, StorageFaultStats};
pub use fscache::FsCache;
pub use manager::{
    IoMode, StorageConfig, StorageManager, TableId, MAX_PAGE_ATTEMPTS,
    PAGE_RETRY_BACKOFF_NS,
};
