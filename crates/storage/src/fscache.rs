//! File-system cache with extent-granular read-ahead.
//!
//! Models the OS page cache the paper leans on: "file system caches coalesce
//! contiguous I/O accesses and read-ahead, achieving high I/O read throughput
//! in sequential scans, masking the preprocessor's overhead" (§5.2.2).
//!
//! Reads are served at *extent* granularity: a miss fetches the whole
//! extent (`extent_pages` pages) from the simulated disk in a single request,
//! so sequential scanners pay one seek + one request overhead per extent
//! instead of per page. Direct I/O bypasses this layer entirely.

use std::collections::VecDeque;

use workshare_common::fxhash::FxHashSet;

/// Extent key: (table, extent index).
pub(crate) type ExtentKey = (u32, u32);

/// LRU cache of extents. Only *presence* is tracked — page bytes live in the
/// table's backing store; the cache determines whether a read touches the
/// simulated disk.
pub struct FsCache {
    present: FxHashSet<ExtentKey>,
    lru: VecDeque<ExtentKey>,
    capacity_extents: usize,
    hits: u64,
    misses: u64,
}

impl FsCache {
    /// Cache holding at most `capacity_extents` extents.
    pub fn new(capacity_extents: usize) -> FsCache {
        FsCache {
            present: FxHashSet::default(),
            lru: VecDeque::new(),
            capacity_extents: capacity_extents.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Whether `key` is cached; updates hit/miss statistics.
    pub(crate) fn probe(&mut self, key: ExtentKey) -> bool {
        if self.present.contains(&key) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Record `key` as cached, evicting the oldest extents beyond capacity.
    pub(crate) fn admit(&mut self, key: ExtentKey) {
        if self.present.insert(key) {
            self.lru.push_back(key);
            while self.present.len() > self.capacity_extents {
                if let Some(old) = self.lru.pop_front() {
                    self.present.remove(&old);
                }
            }
        }
    }

    /// (hits, misses) since creation or last [`clear`](Self::clear).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached extents.
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Drop everything (pre-measurement cache clearing).
    pub fn clear(&mut self) {
        self.present.clear();
        self.lru.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_then_admit_then_hit() {
        let mut c = FsCache::new(4);
        assert!(!c.probe((1, 0)));
        c.admit((1, 0));
        assert!(c.probe((1, 0)));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut c = FsCache::new(2);
        c.admit((0, 0));
        c.admit((0, 1));
        c.admit((0, 2));
        assert_eq!(c.len(), 2);
        assert!(!c.probe((0, 0)), "oldest evicted");
        assert!(c.probe((0, 1)));
        assert!(c.probe((0, 2)));
    }

    #[test]
    fn duplicate_admit_is_noop() {
        let mut c = FsCache::new(2);
        c.admit((0, 0));
        c.admit((0, 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut c = FsCache::new(2);
        c.admit((0, 0));
        c.probe((0, 0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0));
    }
}
