//! Buffer pool with clock (second-chance) eviction.
//!
//! Page-granular cache shared by every scanner in the system. Concurrent
//! scanners over the same table hit each other's pages here — the buffer-pool
//! reuse that shared scans amplify and independent scans defeat.

use workshare_common::codec::Page;
use workshare_common::fxhash::FxHashMap;

/// Cache key: (table, page number).
pub(crate) type PageKey = (u32, u32);

struct Frame {
    page: Page,
    referenced: bool,
}

/// Clock-eviction page cache. Not thread-safe by itself; the storage manager
/// wraps it in a mutex (that latch is the contention point the paper's
/// buffer-pool discussion refers to).
pub struct BufferPool {
    frames: FxHashMap<PageKey, Frame>,
    ring: Vec<PageKey>,
    hand: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            frames: FxHashMap::default(),
            ring: Vec::new(),
            hand: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a page, marking it referenced.
    pub fn get(&mut self, key: PageKey) -> Option<Page> {
        match self.frames.get_mut(&key) {
            Some(f) => {
                f.referenced = true;
                self.hits += 1;
                Some(f.page.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a page, evicting via the clock if at capacity.
    pub fn insert(&mut self, key: PageKey, page: Page) {
        if self.frames.contains_key(&key) {
            return;
        }
        while self.frames.len() >= self.capacity {
            self.evict_one();
        }
        self.frames.insert(
            key,
            Frame {
                page,
                referenced: false,
            },
        );
        self.ring.push(key);
    }

    fn evict_one(&mut self) {
        debug_assert!(!self.ring.is_empty());
        loop {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let key = self.ring[self.hand];
            match self.frames.get_mut(&key) {
                Some(f) if f.referenced => {
                    f.referenced = false;
                    self.hand += 1;
                }
                Some(_) => {
                    self.frames.remove(&key);
                    self.ring.swap_remove(self.hand);
                    return;
                }
                None => {
                    // Stale ring entry from a previous eviction.
                    self.ring.swap_remove(self.hand);
                }
            }
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// (hits, misses) since creation or last [`clear`](Self::clear).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop all cached pages and reset statistics ("clear the caches before
    /// every measurement", paper §5.1).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.ring.clear();
        self.hand = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use workshare_common::codec::PageBuilder;
    use workshare_common::{ColType, Column, Schema, Value};

    fn page(tag: i64) -> Page {
        let s = Schema::new(vec![Column::new("x", ColType::Int)]);
        let mut b = PageBuilder::new(&s);
        b.push(&[Value::Int(tag)]);
        b.finish().pop().unwrap()
    }

    #[test]
    fn hit_after_insert() {
        let mut bp = BufferPool::new(4);
        bp.insert((0, 0), page(0));
        assert!(bp.get((0, 0)).is_some());
        assert!(bp.get((0, 1)).is_none());
        assert_eq!(bp.stats(), (1, 1));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut bp = BufferPool::new(3);
        for i in 0..10 {
            bp.insert((0, i), page(i as i64));
        }
        assert_eq!(bp.len(), 3);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let mut bp = BufferPool::new(2);
        bp.insert((0, 0), page(0));
        bp.insert((0, 1), page(1));
        // Touch page 0 so it is referenced.
        bp.get((0, 0));
        // Inserting a third page must evict page 1 (unreferenced).
        bp.insert((0, 2), page(2));
        assert!(bp.get((0, 0)).is_some(), "referenced page survived");
        assert!(bp.get((0, 1)).is_none(), "unreferenced page evicted");
        assert!(bp.get((0, 2)).is_some());
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut bp = BufferPool::new(2);
        bp.insert((0, 0), page(0));
        bp.insert((0, 0), page(99));
        assert_eq!(bp.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut bp = BufferPool::new(2);
        bp.insert((0, 0), page(0));
        bp.get((0, 0));
        bp.clear();
        assert!(bp.is_empty());
        assert_eq!(bp.stats(), (0, 0));
        assert!(bp.get((0, 0)).is_none());
    }

    #[test]
    fn eviction_cycles_through_many_inserts() {
        let mut bp = BufferPool::new(8);
        for round in 0..5 {
            for i in 0..16u32 {
                bp.insert((round, i), page(i as i64));
                bp.get((round, i % 8));
            }
        }
        assert_eq!(bp.len(), 8);
    }
}
