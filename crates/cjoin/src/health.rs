//! Admission-path fault plan, health counters, and the degradation ladder.
//!
//! One shared [`AdmissionHealth`] is created by the governed engine when the
//! fault plan is armed and handed to every stage and the fabric. It carries
//! the **degradation ladder** — which of the three admission paths the
//! preprocessor hands pending batches to — plus the counters the engine's
//! health monitor and `HealthStats` read:
//!
//! ```text
//! rung 0  Fabric   cross-stage window merge (fastest, shared blast radius)
//! rung 1  Pool     per-stage admission workers (isolated, still batched)
//! rung 2  Serial   inline on the preprocessor (slowest, minimal machinery)
//! ```
//!
//! The monitor demotes one rung per observed fault/stall burst and promotes
//! one rung back per clean window. When no health handle is installed
//! (faults off) every stage keeps its statically-configured path, preserving
//! legacy behavior bit-for-bit.

// Std atomics directly, not the swappable `workshare_common::sync` layer:
// the interleave shim has no `AtomicU8`, and nothing here participates in a
// model-checked protocol — the rung is a routing knob and the counters are
// monotone tallies (orderings documented per site below).
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Fault-site ids mixed into the seeded schedule so the sites draw
/// decorrelated fire patterns from one seed. Storage-level sites live in
/// `workshare_storage` and use ids 1–3; these continue the sequence. (The
/// fabric-wedge site needs no id: it fires by window count, not stride.)
pub const SITE_SCAN_STALL: u64 = 4;
/// See [`SITE_SCAN_STALL`].
pub const SITE_SCAN_PANIC: u64 = 5;

/// Seeded fault schedule for the cjoin admission paths. Default: fully off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CjoinFaultPlan {
    /// Seed mixed into every site's fire decision.
    pub seed: u64,
    /// Every ~`stride`-th scan unit stalls for [`scan_stall_ns`] before
    /// scanning (the fabric's deadline supervision re-dispatches it).
    ///
    /// [`scan_stall_ns`]: CjoinFaultPlan::scan_stall_ns
    pub scan_stall_stride: Option<u64>,
    /// How long an injected scan-unit stall sleeps (virtual ns). The default
    /// comfortably exceeds the fabric's re-dispatch deadline.
    pub scan_stall_ns: f64,
    /// Every ~`stride`-th scan unit panics instead of scanning. The fabric
    /// treats the dead subscan as a straggler; the pool/serial drivers catch
    /// the panic and fail the batch with typed errors.
    pub scan_panic_stride: Option<u64>,
    /// A fabric worker wedges (parks until shutdown) at its `n`-th window.
    /// Fires once per fabric lifetime; the health monitor respawns a
    /// replacement worker after demoting the ladder.
    pub wedge_after_windows: Option<u64>,
}

impl Default for CjoinFaultPlan {
    fn default() -> Self {
        CjoinFaultPlan {
            seed: 0,
            scan_stall_stride: None,
            scan_stall_ns: 8_000_000.0,
            scan_panic_stride: None,
            wedge_after_windows: None,
        }
    }
}

impl CjoinFaultPlan {
    /// Whether any admission fault site is armed.
    pub fn is_armed(&self) -> bool {
        self.scan_stall_stride.is_some()
            || self.scan_panic_stride.is_some()
            || self.wedge_after_windows.is_some()
    }

    /// Whether `site` fires on `tick` (seeded splitmix-style schedule).
    pub fn fires(&self, site: u64, stride: Option<u64>, tick: u64) -> bool {
        stride.is_some_and(|s| s > 0 && mix(self.seed, site, tick).is_multiple_of(s))
    }
}

fn mix(seed: u64, site: u64, tick: u64) -> u64 {
    let mut x = tick
        .wrapping_add(seed.rotate_left(23))
        .wrapping_add(site.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The degradation ladder's rungs, fastest to most conservative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// Engine-level cross-stage admission fabric.
    Fabric = 0,
    /// Per-stage admission worker pools.
    Pool = 1,
    /// Serial admission inline on each stage's preprocessor.
    Serial = 2,
}

impl LadderRung {
    fn from_u8(v: u8) -> LadderRung {
        match v {
            0 => LadderRung::Fabric,
            1 => LadderRung::Pool,
            _ => LadderRung::Serial,
        }
    }

    /// One rung more conservative (saturates at [`LadderRung::Serial`]).
    pub fn down(self) -> LadderRung {
        LadderRung::from_u8((self as u8 + 1).min(2))
    }

    /// One rung less conservative, bounded by `top` (an engine without a
    /// fabric cannot promote past [`LadderRung::Pool`]).
    pub fn up(self, top: LadderRung) -> LadderRung {
        LadderRung::from_u8((self as u8).saturating_sub(1).max(top as u8))
    }
}

/// Shared admission-health state: the live ladder rung plus every fault and
/// recovery counter the monitor and reports read. All methods are lock-free.
pub struct AdmissionHealth {
    rung: AtomicU8,
    scan_ticks: AtomicU64,
    injected_stalls: AtomicU64,
    injected_panics: AtomicU64,
    injected_wedges: AtomicU64,
    redispatches: AtomicU64,
    batches_failed: AtomicU64,
    queries_failed: AtomicU64,
    requeued: AtomicU64,
    demotions: AtomicU64,
    promotions: AtomicU64,
    fabric_respawns: AtomicU64,
}

impl AdmissionHealth {
    /// Fresh health state starting at `initial`.
    pub fn new(initial: LadderRung) -> AdmissionHealth {
        AdmissionHealth {
            rung: AtomicU8::new(initial as u8),
            scan_ticks: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_wedges: AtomicU64::new(0),
            redispatches: AtomicU64::new(0),
            batches_failed: AtomicU64::new(0),
            queries_failed: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            fabric_respawns: AtomicU64::new(0),
        }
    }

    /// The admission path the preprocessor should hand batches to now.
    /// `Relaxed`: a momentarily stale rung routes one batch through the
    /// previous path, and every path is correct — the ladder trades speed,
    /// not safety.
    pub fn rung(&self) -> LadderRung {
        LadderRung::from_u8(self.rung.load(Ordering::Relaxed))
    }

    /// Step one rung down (more conservative); counts a demotion if it
    /// actually moved. Returns the new rung.
    ///
    /// One CAS loop, not load-then-store: concurrent demoters (or a racing
    /// promoter) each move the rung by exactly one step and tally exactly
    /// the moves that happened — the former split read/write could both
    /// lose a step and over-count it. `AcqRel` on the winning exchange
    /// pairs the movers with each other so the steps serialize.
    pub fn demote(&self) -> LadderRung {
        self.step(LadderRung::down, &self.demotions)
    }

    /// Step one rung up (less conservative), bounded by `top`; counts a
    /// promotion if it actually moved. Returns the new rung. Same CAS
    /// protocol as [`AdmissionHealth::demote`].
    pub fn promote(&self, top: LadderRung) -> LadderRung {
        self.step(|r| r.up(top), &self.promotions)
    }

    fn step(&self, next_of: impl Fn(LadderRung) -> LadderRung, moves: &AtomicU64) -> LadderRung {
        match self
            .rung
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                let next = next_of(LadderRung::from_u8(cur)) as u8;
                (next != cur).then_some(next)
            }) {
            Ok(prev) => {
                moves.fetch_add(1, Ordering::Relaxed);
                next_of(LadderRung::from_u8(prev))
            }
            // The closure returned `None`: already saturated, no move.
            Err(cur) => LadderRung::from_u8(cur),
        }
    }

    // The count_* tallies below are all `Relaxed`: each is a monotone
    // counter bumped on its own, read only by snapshot observers that
    // tolerate staleness; no decision reads one counter expecting to see
    // writes published through another.

    /// Draw a scan-unit injection tick.
    pub fn scan_tick(&self) -> u64 {
        self.scan_ticks.fetch_add(1, Ordering::Relaxed)
    }

    /// Count an injected scan-unit stall.
    pub fn count_stall(&self) {
        self.injected_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an injected scan-unit panic.
    pub fn count_panic(&self) {
        self.injected_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an injected fabric-worker wedge.
    pub fn count_wedge(&self) {
        self.injected_wedges.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a straggler subscan re-dispatched by the fabric.
    pub fn count_redispatch(&self) {
        self.redispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an admission batch failed with `n` typed per-query errors.
    pub fn count_batch_failed(&self, n: u64) {
        self.batches_failed.fetch_add(1, Ordering::Relaxed);
        self.queries_failed.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` pending queries reclaimed from a dark fabric and requeued
    /// onto their stages.
    pub fn count_requeued(&self, n: u64) {
        self.requeued.fetch_add(n, Ordering::Relaxed);
    }

    /// Count a replacement fabric worker spawned by the monitor.
    pub fn count_respawn(&self) {
        self.fabric_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every counter (rung, then the counters in declaration
    /// order). Used by the engine to assemble `HealthStats`.
    #[allow(clippy::type_complexity)]
    pub fn snapshot(&self) -> AdmissionHealthSnapshot {
        AdmissionHealthSnapshot {
            rung: self.rung() as u8,
            injected_stalls: self.injected_stalls.load(Ordering::Relaxed),
            injected_panics: self.injected_panics.load(Ordering::Relaxed),
            injected_wedges: self.injected_wedges.load(Ordering::Relaxed),
            redispatches: self.redispatches.load(Ordering::Relaxed),
            batches_failed: self.batches_failed.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            requeued: self.requeued.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            fabric_respawns: self.fabric_respawns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`AdmissionHealth`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionHealthSnapshot {
    /// Current ladder rung (0 = fabric, 1 = pool, 2 = serial).
    pub rung: u8,
    /// Injected scan-unit stalls.
    pub injected_stalls: u64,
    /// Injected scan-unit panics.
    pub injected_panics: u64,
    /// Injected fabric-worker wedges.
    pub injected_wedges: u64,
    /// Straggler subscans re-dispatched.
    pub redispatches: u64,
    /// Admission batches failed with typed errors.
    pub batches_failed: u64,
    /// Queries that received a typed admission error.
    pub queries_failed: u64,
    /// Pending queries reclaimed from a dark fabric and requeued.
    pub requeued: u64,
    /// Ladder demotions.
    pub demotions: u64,
    /// Ladder promotions.
    pub promotions: u64,
    /// Replacement fabric workers spawned.
    pub fabric_respawns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_off() {
        assert!(!CjoinFaultPlan::default().is_armed());
    }

    #[test]
    fn ladder_saturates_both_ends() {
        assert_eq!(LadderRung::Serial.down(), LadderRung::Serial);
        assert_eq!(LadderRung::Fabric.up(LadderRung::Fabric), LadderRung::Fabric);
        assert_eq!(LadderRung::Fabric.down(), LadderRung::Pool);
        assert_eq!(LadderRung::Serial.up(LadderRung::Fabric), LadderRung::Pool);
        // Without a fabric the ladder cannot promote past Pool.
        assert_eq!(LadderRung::Pool.up(LadderRung::Pool), LadderRung::Pool);
    }

    #[test]
    fn demote_promote_count_only_real_moves() {
        let h = AdmissionHealth::new(LadderRung::Fabric);
        assert_eq!(h.demote(), LadderRung::Pool);
        assert_eq!(h.demote(), LadderRung::Serial);
        assert_eq!(h.demote(), LadderRung::Serial, "saturated");
        assert_eq!(h.promote(LadderRung::Fabric), LadderRung::Pool);
        assert_eq!(h.promote(LadderRung::Fabric), LadderRung::Fabric);
        assert_eq!(h.promote(LadderRung::Fabric), LadderRung::Fabric, "saturated");
        let s = h.snapshot();
        assert_eq!(s.demotions, 2);
        assert_eq!(s.promotions, 2);
        assert_eq!(s.rung, 0);
    }
}
