//! The CJOIN stage: preprocessor, shared filters, distributor parts.

// Concurrent-core primitives come through the swappable sync layer so the
// `--cfg interleave` build model-checks this module's protocols (see
// `workshare_common::sync` and docs/TESTING.md).
use workshare_common::sync::{Arc, AtomicBool, AtomicU64, Mutex, Ordering};

use workshare_common::agg::Aggregator;
use workshare_common::bind::{bind, BoundQuery};
use workshare_common::fxhash::FxHashMap;
use workshare_common::value::Row;
use workshare_common::{CostModel, OrderKey, Predicate, QueryBitmap, SelVec, StarQuery};

use crate::admission::{admit_batch_serial, admit_batch_shared};
use crate::epoch::EpochCell;
use crate::fabric::AdmissionFabric;
use crate::health::{AdmissionHealth, CjoinFaultPlan, LadderRung};
use crate::window::ShardedSlot;
use crate::wrap::WrapLedger;
use crate::filter::{
    filter_page_scalar, filter_page_vectorized, FilterCore, FilterScratch, FilteredPage,
};
use workshare_qpipe::batch::BatchBuilder;
use workshare_qpipe::exchange::{Exchange, ExchangeKind, ExchangeReader};
use workshare_sim::{CostKind, Machine, SimCtx, SimQueue, WaitSet};
use workshare_storage::{StorageManager, TableId};

/// CJOIN stage configuration.
#[derive(Debug, Clone, Copy)]
pub struct CjoinConfig {
    /// Filter worker threads (the paper's *horizontal* configuration).
    pub n_workers: usize,
    /// Distributor parts (§3.2: the single-threaded distributor is a
    /// bottleneck; parts parallelize routing).
    pub n_distributors: usize,
    /// Exchange kind for per-packet output streams.
    pub exchange: ExchangeKind,
    /// Output exchange capacity in pages.
    pub cap_pages: usize,
    /// Pipeline queue depth (batches in flight between stages).
    pub pipeline_depth: usize,
    /// Enable SP over identical CJOIN packets (`CJOIN-SP`).
    pub sp: bool,
    /// DataPath-style **shared aggregation** (paper §2.4: "DataPath also
    /// adds support for a shared aggregate operator, that calculates a
    /// running sum for each group and query"): the distributor folds tuples
    /// directly into per-query aggregators instead of streaming joined
    /// tuples to query-centric aggregation packets.
    pub shared_aggregation: bool,
    /// Use the retained tuple-at-a-time filter kernel instead of the
    /// vectorized batch kernel ([`crate::filter`]). The scalar path is the
    /// behavioral reference: property tests assert both produce identical
    /// rows and stats, and the `filter_vectorized` bench measures the
    /// speedup against it. Defaults to `false` (vectorized).
    pub scalar_filter: bool,
    /// Dedicated admission workers running the shared dimension scans off
    /// the circular-scan thread, so admission overlaps fact-page production
    /// instead of pausing the pipeline.
    ///
    /// This is the **per-stage fallback pool**: it serves stages built
    /// standalone via [`CjoinStage::new`] (direct stage users, the
    /// paper-figure binaries, ungoverned engines). Stages built by the
    /// governed engine's registry with an engine-level
    /// [`AdmissionFabric`] (`RunConfig::admission_fabric`, the default
    /// there) hand their pending batches to the fabric instead and spawn
    /// no workers of their own — the fabric batches admissions **across
    /// stages**, so shared dimension tables are scanned once for all of
    /// them.
    pub n_admission_workers: usize,
    /// Use the retained **per-query serial** admission path (the paper's
    /// §3.2 behavior: the preprocessor pauses the pipeline and scans every
    /// dimension table once per pending query) instead of the shared-scan,
    /// pipeline-overlapped path. The serial path is the behavioral oracle:
    /// property tests assert both produce identical rows and stats, and the
    /// `admission` bench measures the speedup against it. Defaults to
    /// `false` (shared scans).
    pub serial_admission: bool,
    /// Seeded fault schedule for this stage's admission scans (stalls,
    /// panics) and the fabric windows serving it. Default: fully off —
    /// every fault path compiles to the legacy behavior.
    pub faults: CjoinFaultPlan,
}

impl Default for CjoinConfig {
    fn default() -> Self {
        CjoinConfig {
            n_workers: 6,
            n_distributors: 10,
            exchange: ExchangeKind::Spl,
            cap_pages: 8,
            pipeline_depth: 16,
            sp: false,
            shared_aggregation: false,
            scalar_filter: false,
            n_admission_workers: 1,
            serial_admission: false,
            faults: CjoinFaultPlan::default(),
        }
    }
}

/// Live signals the sharing governor reads from a running stage
/// ([`CjoinStage::runtime_stats`]): the observed workload shape that
/// parameterizes the cost-model crossover estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct CjoinRuntimeStats {
    /// Queries currently active in the GQP.
    pub active_queries: usize,
    /// Observed average key-run length in filtered fact pages (tuple×filter
    /// probe steps per actual hash probe), as an EWMA over batches so a
    /// workload shift re-converges quickly. 1.0 until the pipeline has
    /// filtered its first page; rises with clustered or skewed foreign keys.
    pub avg_key_run: f64,
    /// Observed admission-scan predicate selectivity (dimension rows
    /// selected / scanned, from `Predicate::eval_batch*` hit counts),
    /// aggregated over dimensions (mean of the per-dimension EWMAs in
    /// [`dim_selectivity_by_dim`](CjoinRuntimeStats::dim_selectivity_by_dim)).
    /// `None` until the first admission scan.
    pub dim_selectivity: Option<f64>,
    /// Per-dimension admission-selectivity EWMAs, sorted by table id
    /// (deterministic). This is what lets the governor see *which*
    /// dimension is cheap to share: the engine averages the entries
    /// matching a candidate query's own dimension joins instead of using
    /// one engine-wide blend — the first step toward the skew-aware
    /// per-query thresholds named in the ROADMAP.
    pub dim_selectivity_by_dim: Vec<(TableId, f64)>,
}

/// Virtual nanoseconds an admission worker (per-stage pool or engine-level
/// fabric) waits after picking up a batch before merging in every other
/// pending admission: a burst of submissions arriving at one virtual
/// instant always shares one scan pass.
pub(crate) const ADMISSION_BATCH_WINDOW_NS: f64 = 2_000.0;

/// Fold `sample` into an optional EWMA cell with smoothing factor `alpha`.
fn ewma_fold(cell: &Mutex<Option<f64>>, sample: f64, alpha: f64) {
    let mut v = cell.lock();
    *v = Some(match *v {
        None => sample,
        Some(prev) => (1.0 - alpha) * prev + alpha * sample,
    });
}

/// Sharing/admission statistics of the stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CjoinStats {
    /// Queries admitted into the GQP.
    pub admitted: u64,
    /// Admission batches performed (pipeline pauses).
    pub admission_batches: u64,
    /// CJOIN packets shared via SP (satellites that skipped admission).
    pub sp_shares: u64,
    /// Dimension tuples **evaluated** during admissions, counted once per
    /// pending query per row (the logical per-query scan volume). This is
    /// independent of how queries batch: the serial path physically scans
    /// this many rows, the shared-scan path evaluates the same volume over
    /// far fewer physical reads (see
    /// [`admission_dim_pages`](CjoinStats::admission_dim_pages)).
    pub admission_dim_rows: u64,
    /// Physical dimension pages read by **this stage's own** admission
    /// scans. Under shared-scan admission each distinct dimension table is
    /// scanned **once per admission batch** regardless of how many pending
    /// queries reference it; the serial oracle path re-reads it once per
    /// query. Under an engine-level [`AdmissionFabric`] this stays 0: a
    /// page read once *for several stages* is attributed to the fabric
    /// ([`crate::FabricStats::admission_dim_pages`]), never double-counted
    /// per stage.
    pub admission_dim_pages: u64,
}

impl CjoinStats {
    /// Fold another stage's counters into this one. Used by the sharded
    /// multi-fact engine: when an idle per-fact stage is torn down, its
    /// lifetime counters are absorbed into the engine-level totals so run
    /// reports survive stage churn.
    pub fn absorb(&mut self, other: &CjoinStats) {
        self.admitted += other.admitted;
        self.admission_batches += other.admission_batches;
        self.sp_shares += other.sp_shares;
        self.admission_dim_rows += other.admission_dim_rows;
        self.admission_dim_pages += other.admission_dim_pages;
    }
}

/// Shared per-query fault cell: `None` while healthy; set (once, first
/// writer wins) to a typed-error message when a storage or admission fault
/// fails the query. The same `Arc` is visible on the submission handle
/// ([`CjoinOutput::fault`]), the in-flight `Admission`, and the activated
/// `QueryRuntime`, so whichever layer hits the fault, the submitter sees it.
pub type FaultCell = Arc<Mutex<Option<String>>>;

/// Set `msg` into `cell` unless an earlier fault already claimed it.
pub(crate) fn set_fault(cell: &FaultCell, msg: &str) {
    let mut f = cell.lock();
    if f.is_none() {
        *f = Some(msg.to_string());
    }
}

/// Output of submitting a star query to the stage: a reader over joined rows
/// in the query's bound layout (`[fks… | fact payload… | dim payloads…]`).
pub struct CjoinOutput {
    /// Stream of joined tuples for this query.
    pub reader: ExchangeReader,
    /// Typed-error cell: set when a fault failed the query. The reader
    /// still drains normally (possibly empty) — check after exhaustion.
    pub fault: FaultCell,
}

/// Buffered final result of a shared-aggregation CJOIN query.
pub struct AggResult {
    rows: Mutex<Option<Arc<Vec<Row>>>>,
    /// Typed-error message when a fault failed the query (the rows are
    /// then empty/partial and [`AggResult::error`] is `Some`).
    err: Mutex<Option<String>>,
    /// Completion flag. **Ordering invariant** (same shape as
    /// [`workshare_core`'s `CompletionCell`]): `complete` publishes `rows`
    /// *before* the `Release` store of `done`, so the `Acquire` load in
    /// [`AggResult::wait`]/[`AggResult::is_done`] that observes `true`
    /// also observes the rows — the `expect("done without rows")` below is
    /// the invariant's detector, not a reachable panic.
    done: AtomicBool,
    ws: WaitSet,
}

impl AggResult {
    fn new(machine: &Machine) -> Arc<AggResult> {
        Arc::new(AggResult {
            rows: Mutex::new(None),
            err: Mutex::new(None),
            done: AtomicBool::new(false),
            ws: WaitSet::new(machine),
        })
    }

    fn complete(&self, rows: Arc<Vec<Row>>) {
        *self.rows.lock() = Some(rows);
        self.done.store(true, Ordering::Release);
        self.ws.notify_all();
    }

    /// Fail the query with a typed error: waiters wake (with empty rows)
    /// instead of hanging, and [`AggResult::error`] reports the fault. The
    /// first failure wins; a fail after a normal completion only records
    /// the message.
    pub(crate) fn fail(&self, msg: &str) {
        {
            let mut e = self.err.lock();
            if e.is_none() {
                *e = Some(msg.to_string());
            }
        }
        if !self.is_done() {
            *self.rows.lock() = Some(Arc::new(Vec::new()));
            self.done.store(true, Ordering::Release);
            self.ws.notify_all();
        }
    }

    /// The typed-error message, when a fault failed this query.
    pub fn error(&self) -> Option<String> {
        self.err.lock().clone()
    }

    /// Whether the query finished.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Block (virtual time from a vthread) until the result is available.
    /// Hands back the shared `Arc` directly — every satellite reader shares
    /// the one buffered result; nothing is copied out of the mutex.
    pub fn wait(&self) -> Arc<Vec<Row>> {
        self.ws.wait_for(|| {
            if self.done.load(Ordering::Acquire) {
                Some(Arc::clone(
                    self.rows.lock().as_ref().expect("done without rows"),
                ))
            } else {
                None
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------


/// Where a query's joined tuples go.
enum Sink {
    /// Stream joined pages to a per-query exchange (the paper's design:
    /// query-centric operators above CJOIN).
    Stream {
        out: Exchange,
        builder: Mutex<BatchBuilder>,
    },
    /// Fold tuples into a per-query aggregator inside the distributor
    /// (the DataPath shared-aggregate extension).
    Agg {
        agg: Mutex<Aggregator>,
        order: Vec<OrderKey>,
        result: Arc<AggResult>,
    },
}

pub(crate) struct QueryRuntime {
    slot: u32,
    qid: u64,
    sig: u64,
    bound: Arc<BoundQuery>,
    fact_pred: Predicate,
    /// `(filter index, dim-schema payload column indices)` per query dim.
    dim_filters: Vec<(usize, Vec<usize>)>,
    sink: Sink,
    /// Fact pages still to be processed by the distributor before this
    /// query completes (initialized to one full wrap).
    process_left: AtomicU64,
    /// Shared with the submission handle; set when a fault fails the query.
    fault: FaultCell,
}

/// Slot capacity of a stage's [`WrapLedger`]. Slots are recycled on query
/// completion, so this bounds *concurrently resident* queries (active or
/// mid-admission), not lifetime admissions; [`alloc_slot`] asserts it.
/// Sized for the worst observed crowd — the overload bench's unbounded
/// baseline holds several thousand queries in flight at 4× capacity —
/// with generous headroom. Cost is memory only (512 KiB of budget words
/// per stage): every per-page walk is bounded by the ledger's live
/// high-water mark, not this capacity.
const WRAP_SLOT_CAPACITY: usize = 65_536;

/// The epoch-published hot-path state: everything the filter workers and
/// the distributor probe per page. Each published snapshot is immutable;
/// admission builds the next one copy-on-write (`Arc`-shared filter cores,
/// [`Arc::make_mut`] on the touched ones) under the control mutex and
/// publishes it through the stage's [`EpochCell`] as one pointer swap —
/// the protocol model-checked in [`crate::epoch`]. The former `GqpState`
/// `RwLock` (read by every worker on every page, written by every
/// admission) is retired: readers now pay one `Acquire` load per page.
///
/// The active-query mask and per-slot wrap budgets deliberately live
/// *outside* the epoch, in the stage's atomic [`WrapLedger`] — the
/// preprocessor mutates them once per fact page, far too hot to re-publish
/// an epoch for.
#[derive(Clone, Default)]
pub(crate) struct FilterEpoch {
    pub(crate) filters: Vec<Arc<FilterCore>>,
    pub(crate) queries: FxHashMap<u32, Arc<QueryRuntime>>,
}

/// The admission control plane: slot bookkeeping plus the filter index.
/// Off the hot path — only writers (admission, finalize) touch it, under
/// [`StageInner::control`], which doubles as the epoch writer lock.
pub(crate) struct GqpControl {
    /// `(dim, fact_fk_idx, dim_pk_idx)` → index into the epoch's `filters`:
    /// O(1) shared-filter lookup during admission. Filters are append-only,
    /// so indices are stable across epochs.
    pub(crate) filter_index: FxHashMap<(TableId, usize, usize), usize>,
    pub(crate) free_slots: Vec<u32>,
    pub(crate) next_slot: u32,
}

pub(crate) enum AdmissionSink {
    Stream(Exchange),
    Agg(Arc<AggResult>),
}

pub(crate) struct Admission {
    pub(crate) query: StarQuery,
    pub(crate) bound: Arc<BoundQuery>,
    pub(crate) sink: AdmissionSink,
    pub(crate) sig: u64,
    pub(crate) fault: FaultCell,
}

impl Admission {
    /// Surface a typed admission failure on this query: record the error on
    /// the shared fault cell, drop the SP-registry host entry (so later
    /// identical queries admit fresh instead of attaching to a dead host),
    /// and wake the sink's waiters — a closed empty stream or a failed
    /// [`AggResult`]. Never a hang, never an abort.
    pub(crate) fn fail(&self, inner: &StageInner, msg: &str) {
        set_fault(&self.fault, msg);
        if inner.config.sp {
            let mut reg = inner.sp_registry.lock();
            if reg.get(&self.sig).is_some_and(|(qid, _)| *qid == self.query.id) {
                reg.remove(&self.sig);
            }
        }
        match &self.sink {
            AdmissionSink::Stream(out) => out.close(),
            AdmissionSink::Agg(result) => result.fail(msg),
        }
    }
}

/// One fact page stamped with the active query set, flowing from the
/// preprocessor to a filter worker **undecoded**: the circular-scan thread
/// only reads and stamps pages; tuple decode happens in the (parallel)
/// worker tier, so the scan thread is never the decode bottleneck. The
/// membership bitmap is shared by `Arc`: the preprocessor snapshots
/// `active_bits` once per page and every downstream stage reads the same
/// copy.
struct WorkBatch {
    page: workshare_common::codec::Page,
    members: Arc<QueryBitmap>,
}

/// A filtered page flowing to the distributor: the decoded rows (decoded
/// once, by the filter worker) plus the survivor indices / bitmap bank /
/// dimension matches produced by the filter kernel.
struct DistBatch {
    rows: Vec<Row>,
    members: Arc<QueryBitmap>,
    page: FilteredPage,
}

pub(crate) struct StageInner {
    pub(crate) machine: Machine,
    pub(crate) storage: StorageManager,
    pub(crate) cost: CostModel,
    pub(crate) config: CjoinConfig,
    pub(crate) fact: TableId,
    pub(crate) fact_pages: u64,
    /// The epoch-published filter state ([`FilterEpoch`]): hot-path readers
    /// hold a per-thread [`crate::epoch::EpochReader`] and pay one `Acquire`
    /// load per page at steady state; writers publish the next snapshot via
    /// [`StageInner::mutate_epoch`].
    pub(crate) epoch: EpochCell<FilterEpoch>,
    /// Lock-free active mask + per-slot wrap budgets ([`crate::wrap`]): the
    /// circular scan's per-page bookkeeping, formerly a `state.write()` on
    /// every fact page.
    pub(crate) wrap: WrapLedger,
    /// Control plane **and** epoch writer lock: every read-copy-publish of
    /// `epoch` runs under this mutex ([`StageInner::mutate_epoch`]), so
    /// concurrent admissions cannot lose each other's updates. Never taken
    /// on the per-page hot path.
    pub(crate) control: Mutex<GqpControl>,
    /// Pending admissions awaiting the next batch window, sharded so
    /// concurrent submitters don't serialize on one mutex. The atomic
    /// per-shard drain protocol lives in [`ShardedSlot`] (model-checked by
    /// `tests/interleave_core.rs`): a submission either rides the window
    /// that drained it or stays for the next — never lost, never doubled.
    pub(crate) pending: ShardedSlot<Admission>,
    pub(crate) wake: WaitSet,
    worker_q: SimQueue<Arc<WorkBatch>>,
    dist_q: SimQueue<Arc<DistBatch>>,
    /// Admission batches handed off by the preprocessor to the stage's own
    /// admission workers (per-stage shared-scan path): the preprocessor
    /// only snapshots the pending set; the scans run here, overlapping
    /// fact-page production. Unused when an engine-level `fabric` serves
    /// the stage.
    admission_q: SimQueue<Vec<Admission>>,
    /// Engine-level cross-stage admission pool, when the stage was built by
    /// a governed engine's registry ([`CjoinStage::with_fabric`]); `None`
    /// for standalone stages, which fall back to their own workers.
    fabric: Option<AdmissionFabric>,
    /// Shared admission-health state, installed by a governed engine with
    /// an armed, self-healing fault plan ([`CjoinStage::with_admission`]).
    /// When present, the preprocessor routes pending batches by the live
    /// degradation-ladder rung instead of the static config; when `None`
    /// the stage behaves exactly as before the fault substrate existed.
    pub(crate) health: Option<Arc<AdmissionHealth>>,
    /// Injection tick counter for this stage's scan-unit fault sites
    /// (advances only while a fault plan is armed).
    scan_ticks: AtomicU64,
    /// Cooperative stop flag. Written once with Release
    /// ([`CjoinStage::shutdown`]) and read with Acquire at the top of every
    /// pipeline-thread loop: a thread that observes the flag also observes
    /// every write the shutting-down thread made before raising it. The
    /// flag alone is not a wakeup — `shutdown` also notifies `wake` and
    /// closes the queues so parked threads re-check it.
    shutdown: AtomicBool,
    sp_registry: Mutex<FxHashMap<u64, (u64, HostRef)>>,
    pub(crate) admitted: AtomicU64,
    pub(crate) admission_batches: AtomicU64,
    sp_shares: AtomicU64,
    pub(crate) admission_dim_rows: AtomicU64,
    pub(crate) admission_dim_pages: AtomicU64,
    /// Governor signals, EWMA-smoothed per observation (admission scan /
    /// filtered batch) so they track workload shifts. The admission
    /// selectivity is kept **per dimension table** so the governor can see
    /// which dimension is cheap to share.
    pub(crate) dim_sel_ewma: Mutex<FxHashMap<TableId, f64>>,
    key_run_ewma: Mutex<Option<f64>>,
}

#[derive(Clone)]
enum HostRef {
    /// Host's output exchange plus its fault cell, so SP satellites that
    /// attach to the stream share the host's error outcome too.
    Stream(Exchange, FaultCell),
    Agg(Arc<AggResult>),
}

impl StageInner {
    /// Draw the next injection tick for this stage's scan-unit fault sites.
    pub(crate) fn scan_tick(&self) -> u64 {
        self.scan_ticks.fetch_add(1, Ordering::Relaxed)
    }

    /// Read-copy-publish the filter epoch: run `f` over the control plane
    /// and a clone of the current epoch, then publish the clone as the next
    /// epoch (one pointer swap, [`EpochCell::publish`]). The control mutex
    /// serializes writers; the clone is cheap — filter cores are
    /// `Arc`-shared, `f` uses [`Arc::make_mut`] on the ones it mutates.
    ///
    /// **No virtual-time operation (charge/emit) may happen inside `f`**:
    /// the closure runs under the control lock, and a parked holder would
    /// block admission in real time and freeze the virtual clock.
    pub(crate) fn mutate_epoch<R>(
        &self,
        f: impl FnOnce(&mut GqpControl, &mut FilterEpoch) -> R,
    ) -> R {
        let mut control = self.control.lock();
        let mut next = (*self.epoch.load()).clone();
        let r = f(&mut control, &mut next);
        self.epoch.publish(Arc::new(next));
        r
    }
}

/// The CJOIN stage. Cheap to clone.
#[derive(Clone)]
pub struct CjoinStage {
    pub(crate) inner: Arc<StageInner>,
}

impl CjoinStage {
    /// Create a **standalone** stage over `fact_table` and spawn its
    /// pipeline threads. Admission runs on the stage's own fallback worker
    /// pool ([`CjoinConfig::n_admission_workers`]); engines that batch
    /// admission across stages use [`CjoinStage::with_fabric`] instead.
    pub fn new(
        machine: &Machine,
        storage: &StorageManager,
        fact_table: &str,
        config: CjoinConfig,
        cost: CostModel,
    ) -> CjoinStage {
        Self::with_fabric(machine, storage, fact_table, config, cost, None)
    }

    /// Create the stage over `fact_table`, handing its pending admissions
    /// to `fabric` when one is given (the governed engine's cross-stage
    /// admission pool) instead of spawning per-stage admission workers.
    /// With `None` this is exactly [`CjoinStage::new`].
    pub fn with_fabric(
        machine: &Machine,
        storage: &StorageManager,
        fact_table: &str,
        config: CjoinConfig,
        cost: CostModel,
        fabric: Option<AdmissionFabric>,
    ) -> CjoinStage {
        Self::with_admission(machine, storage, fact_table, config, cost, fabric, None)
    }

    /// Create the stage with full admission plumbing: an optional fabric
    /// plus an optional shared [`AdmissionHealth`] handle. With a health
    /// handle the preprocessor routes pending batches by the live
    /// degradation-ladder rung (fabric → pool → serial) and the stage
    /// spawns its own admission workers even when fabric-served, so the
    /// pool rung has somewhere to land. Without one this is exactly
    /// [`CjoinStage::with_fabric`].
    pub fn with_admission(
        machine: &Machine,
        storage: &StorageManager,
        fact_table: &str,
        config: CjoinConfig,
        cost: CostModel,
        fabric: Option<AdmissionFabric>,
        health: Option<Arc<AdmissionHealth>>,
    ) -> CjoinStage {
        let fact = storage.table(fact_table);
        let inner = Arc::new(StageInner {
            machine: machine.clone(),
            storage: storage.clone(),
            cost,
            config,
            fact,
            fact_pages: storage.page_count(fact) as u64,
            epoch: EpochCell::new(FilterEpoch::default()),
            wrap: WrapLedger::new(WRAP_SLOT_CAPACITY),
            control: Mutex::new(GqpControl {
                filter_index: FxHashMap::default(),
                free_slots: Vec::new(),
                next_slot: 0,
            }),
            pending: ShardedSlot::new(4),
            wake: WaitSet::new(machine),
            worker_q: SimQueue::bounded(machine, config.pipeline_depth.max(1)),
            dist_q: SimQueue::bounded(machine, config.pipeline_depth.max(1)),
            admission_q: SimQueue::unbounded(machine),
            fabric,
            health,
            scan_ticks: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            sp_registry: Mutex::new(FxHashMap::default()),
            admitted: AtomicU64::new(0),
            admission_batches: AtomicU64::new(0),
            sp_shares: AtomicU64::new(0),
            admission_dim_rows: AtomicU64::new(0),
            admission_dim_pages: AtomicU64::new(0),
            dim_sel_ewma: Mutex::new(FxHashMap::default()),
            key_run_ewma: Mutex::new(None),
        });
        let stage = CjoinStage { inner };
        stage.spawn_preprocessor();
        for w in 0..config.n_workers.max(1) {
            stage.spawn_worker(w);
        }
        for d in 0..config.n_distributors.max(1) {
            stage.spawn_distributor(d);
        }
        // The serial path admits inline on the preprocessor; a
        // fabric-served stage hands batches to the engine-level pool. Only
        // a standalone shared-scan stage needs its own workers — unless a
        // health handle is installed, in which case the degradation ladder
        // may demote a fabric-served stage to its own pool at runtime, so
        // the workers must exist.
        if !stage.inner.config.serial_admission
            && (stage.inner.fabric.is_none() || stage.inner.health.is_some())
        {
            for a in 0..config.n_admission_workers.max(1) {
                stage.spawn_admission_worker(a);
            }
        }
        stage
    }

    fn bound_for(&self, q: &StarQuery) -> Arc<BoundQuery> {
        let inner = &self.inner;
        let fact_schema = inner.storage.schema(inner.fact);
        let dim_schemas: Vec<_> = q
            .dims
            .iter()
            .map(|d| inner.storage.schema(inner.storage.table(&d.dim)))
            .collect();
        let dim_refs: Vec<&workshare_common::Schema> =
            dim_schemas.iter().map(|s| s.as_ref()).collect();
        Arc::new(bind(&fact_schema, &dim_refs, q))
    }

    /// Submit the join part of a star query; returns a reader over joined
    /// tuples. With SP enabled, a query identical to an in-flight CJOIN
    /// packet attaches to the host's output (step WoP) and skips admission.
    pub fn submit(&self, q: &StarQuery) -> CjoinOutput {
        let inner = &self.inner;
        assert_eq!(
            inner.storage.table(&q.fact),
            inner.fact,
            "CJOIN stage is bound to one fact table"
        );
        let sig = q.cjoin_signature();
        if inner.config.sp {
            let registry = inner.sp_registry.lock();
            if let Some((_, HostRef::Stream(ex, host_fault))) = registry.get(&sig) {
                if ex.emitted() == 0 && !ex.is_closed() {
                    let reader = ex.attach(None);
                    inner.sp_shares.fetch_add(1, Ordering::Relaxed);
                    // The satellite shares the host's fault cell: if the
                    // host's admission fails, every attached reader sees
                    // the same typed error.
                    return CjoinOutput {
                        reader,
                        fault: Arc::clone(host_fault),
                    };
                }
            }
        }
        let bound = self.bound_for(q);
        let out = Exchange::new(
            inner.config.exchange,
            &inner.machine,
            inner.cost,
            inner.config.cap_pages,
        );
        let reader = out.attach(None);
        let fault: FaultCell = Arc::new(Mutex::new(None));
        if inner.config.sp {
            // Register the host at submit time so that identical queries in
            // the same submission batch can attach before admission runs.
            inner.sp_registry.lock().insert(
                sig,
                (q.id, HostRef::Stream(out.clone(), Arc::clone(&fault))),
            );
        }
        inner.pending.push(Admission {
            query: q.clone(),
            bound,
            sink: AdmissionSink::Stream(out),
            sig,
            fault: Arc::clone(&fault),
        });
        inner.wake.notify_all();
        CjoinOutput { reader, fault }
    }

    /// Submit a star query with **shared aggregation**: the distributor
    /// folds this query's tuples into a per-query aggregator; the returned
    /// handle yields the buffered final rows. With SP enabled, an identical
    /// in-flight query shares the host's buffered result (full step WoP:
    /// reuse is possible at any time during the host's evaluation, §3.1).
    pub fn submit_aggregated(&self, q: &StarQuery) -> Arc<AggResult> {
        let inner = &self.inner;
        assert_eq!(
            inner.storage.table(&q.fact),
            inner.fact,
            "CJOIN stage is bound to one fact table"
        );
        let sig = q.cjoin_signature();
        if inner.config.sp {
            let registry = inner.sp_registry.lock();
            if let Some((_, HostRef::Agg(host))) = registry.get(&sig) {
                if !host.is_done() {
                    let host = Arc::clone(host);
                    let satellite = AggResult::new(&inner.machine);
                    let sat2 = Arc::clone(&satellite);
                    let cost = inner.cost;
                    inner.sp_shares.fetch_add(1, Ordering::Relaxed);
                    inner.machine.spawn(&format!("cj-agg-sat-q{}", q.id), move |ctx| {
                        let rows = host.wait();
                        ctx.charge(CostKind::Copy, cost.copy_cost(rows.len() * 64));
                        // A host that failed with a typed error fails its
                        // satellites with the same error.
                        match host.error() {
                            Some(msg) => sat2.fail(&msg),
                            None => sat2.complete(rows),
                        }
                    });
                    return satellite;
                }
            }
        }
        let bound = self.bound_for(q);
        let result = AggResult::new(&inner.machine);
        if inner.config.sp {
            inner
                .sp_registry
                .lock()
                .insert(sig, (q.id, HostRef::Agg(Arc::clone(&result))));
        }
        inner.pending.push(Admission {
            query: q.clone(),
            bound,
            sink: AdmissionSink::Agg(Arc::clone(&result)),
            sig,
            fault: Arc::new(Mutex::new(None)),
        });
        inner.wake.notify_all();
        result
    }

    /// Whether two handles refer to the same stage instance (used by the
    /// engine's stage registry to detect a lost double-checked insert).
    pub fn same_stage(a: &CjoinStage, b: &CjoinStage) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }

    /// Stage statistics.
    pub fn stats(&self) -> CjoinStats {
        CjoinStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            admission_batches: self.inner.admission_batches.load(Ordering::Relaxed),
            sp_shares: self.inner.sp_shares.load(Ordering::Relaxed),
            admission_dim_rows: self.inner.admission_dim_rows.load(Ordering::Relaxed),
            admission_dim_pages: self.inner.admission_dim_pages.load(Ordering::Relaxed),
        }
    }

    /// Number of queries currently in the GQP.
    pub fn active_queries(&self) -> usize {
        self.inner.epoch.load().queries.len()
    }

    /// Submissions sitting in this stage's pending-admission snapshot (not
    /// yet handed to an admission worker or the fabric). The service
    /// layer's per-stage queue-depth signal.
    pub fn pending_len(&self) -> usize {
        self.inner.pending.len()
    }

    /// Live workload-shape signals for the sharing governor.
    pub fn runtime_stats(&self) -> CjoinRuntimeStats {
        let dim_selectivity_by_dim: Vec<(TableId, f64)> = {
            let map = self.inner.dim_sel_ewma.lock();
            let mut v: Vec<(TableId, f64)> = map.iter().map(|(t, s)| (*t, *s)).collect();
            v.sort_by_key(|(t, _)| t.0);
            v
        };
        let dim_selectivity = if dim_selectivity_by_dim.is_empty() {
            None
        } else {
            Some(
                dim_selectivity_by_dim.iter().map(|(_, s)| s).sum::<f64>()
                    / dim_selectivity_by_dim.len() as f64,
            )
        };
        CjoinRuntimeStats {
            active_queries: self.active_queries(),
            avg_key_run: self.inner.key_run_ewma.lock().unwrap_or(1.0),
            dim_selectivity,
            dim_selectivity_by_dim,
        }
    }

    /// Stop the pipeline threads.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake.notify_all();
        self.inner.worker_q.close();
        self.inner.dist_q.close();
        self.inner.admission_q.close();
    }

    // -----------------------------------------------------------------
    // Preprocessor
    // -----------------------------------------------------------------

    fn spawn_preprocessor(&self) {
        let inner = Arc::clone(&self.inner);
        self.inner.machine.clone().spawn("cjoin-preproc", move |ctx| {
            let stream = inner.storage.new_stream();
            let npages = inner.fact_pages.max(1) as usize;
            let mut pos = 0usize;
            // Reused page stamp: refreshed by `snapshot_cached` only when
            // the active mask moved (admission/completion), so the
            // steady-state per-page cost is a few mask-word loads, not a
            // bitmap allocation.
            let mut stamp: Arc<QueryBitmap> = Arc::new(QueryBitmap::default());
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    inner.worker_q.close();
                    return;
                }
                // Batched admission at page boundaries. The retained serial
                // oracle path admits inline, pausing the pipeline (the
                // seed's §3.2 behavior); the shared-scan paths only
                // snapshot the pending set here and hand it to the
                // engine-level admission fabric (when the stage was built
                // with one) or the stage's own admission workers, so the
                // dimension scans overlap fact-page production instead of
                // stalling the GQP.
                let pending = inner.pending.drain();
                if !pending.is_empty() {
                    // With a health handle installed the live degradation
                    // ladder picks the admission path; otherwise the static
                    // config does (legacy behavior, bit-for-bit). The
                    // serial config always means serial — it is the
                    // behavioral oracle and sits below the ladder.
                    let rung = match (&inner.health, inner.config.serial_admission) {
                        (_, true) => LadderRung::Serial,
                        (Some(h), false) => {
                            let r = h.rung();
                            if r == LadderRung::Fabric && inner.fabric.is_none() {
                                LadderRung::Pool
                            } else {
                                r
                            }
                        }
                        (None, false) if inner.fabric.is_some() => LadderRung::Fabric,
                        (None, false) => LadderRung::Pool,
                    };
                    match rung {
                        LadderRung::Serial => admit_batch_serial(&inner, ctx, pending),
                        LadderRung::Fabric => {
                            let fabric = inner.fabric.as_ref().expect("rung checked");
                            let stage = CjoinStage {
                                inner: Arc::clone(&inner),
                            };
                            if !fabric.submit(stage, pending) {
                                return; // fabric (engine) shut down
                            }
                        }
                        LadderRung::Pool => {
                            if inner.admission_q.push(pending).is_err() {
                                return; // shut down
                            }
                        }
                    }
                }
                let has_active = inner.wrap.any();
                if !has_active {
                    // Park until a query arrives, an off-thread admission
                    // batch activates, or shutdown.
                    inner.wake.wait_until(|| {
                        inner.shutdown.load(Ordering::Acquire)
                            || !inner.pending.is_empty()
                            || inner.wrap.any()
                    });
                    continue;
                }
                // Produce one fact page. Only the fetch/pin cost lands on
                // the circular-scan thread — tuple decode is deferred to
                // the parallel filter workers, so the scan thread never
                // becomes the decode bottleneck of a crowded stage.
                let page = match inner.storage.try_read_page(ctx, inner.fact, pos, stream) {
                    Ok(page) => page,
                    Err(e) => {
                        // Unrecoverable fact-page fault: the page cannot be
                        // served this lap. Mark every member query with the
                        // typed error and advance the wrap/process
                        // bookkeeping as if the page had flowed through, so
                        // each in-flight query still completes — with an
                        // error outcome — instead of hanging the scan.
                        fail_fact_page(&inner, ctx, &e.to_string());
                        pos = (pos + 1) % npages;
                        continue;
                    }
                };
                ctx.charge(CostKind::Scan, inner.cost.scan_page_fixed_ns);
                // One snapshot of the active-query set per page, shared by
                // `Arc` with every downstream stage (workers and the
                // distributor read the same copy; nothing re-clones it).
                // `Acquire` per mask word: a slot observed here has its
                // budget and filter entries visible (entries-then-activate).
                inner.wrap.snapshot_cached(&mut stamp);
                let members = Arc::clone(&stamp);
                // Preprocessor bookkeeping: stamping the page with the
                // active-query set and maintaining per-query entry/exit
                // watermarks ("these responsibilities slow down the circular
                // scan significantly", §5.2.2).
                ctx.charge(
                    CostKind::Routing,
                    2_000.0 + 60.0 * members.count_ones() as f64,
                );
                let batch = Arc::new(WorkBatch {
                    page,
                    members: Arc::clone(&members),
                });
                if inner.worker_q.push(batch).is_err() {
                    return; // shut down
                }
                // Wrap bookkeeping: queries whose full wrap has been emitted
                // stop receiving pages. Lock-free — one checked atomic
                // decrement per member ([`WrapLedger::record_page`]); the
                // seed took `state.write()` here on *every* page even when
                // nothing completed.
                inner.wrap.record_page(&members);
                pos = (pos + 1) % npages;
            }
        });
    }

    // -----------------------------------------------------------------
    // Admission workers
    // -----------------------------------------------------------------

    fn spawn_admission_worker(&self, idx: usize) {
        let inner = Arc::clone(&self.inner);
        self.inner
            .machine
            .clone()
            .spawn(&format!("cjoin-admit-{idx}"), move |ctx| {
                while let Some(mut batch) = inner.admission_q.pop() {
                    // Small virtual batching window, then merge every
                    // admission visible at that instant: batches that
                    // queued behind this one and submissions still sitting
                    // in `pending`. A burst submitted without intervening
                    // virtual time (the batch-harness pattern) lands in
                    // one batch deterministically, maximizing scan sharing;
                    // the window is negligible against the fixed admission
                    // charge.
                    ctx.sleep(ADMISSION_BATCH_WINDOW_NS);
                    while let Some(more) = inner.admission_q.try_pop() {
                        batch.extend(more);
                    }
                    batch.extend(inner.pending.drain());
                    admit_batch_shared(&inner, ctx, batch);
                    // The preprocessor may be parked waiting for an active
                    // query; the batch just activated.
                    inner.wake.notify_all();
                }
            });
    }

    // -----------------------------------------------------------------
    // Filter workers
    // -----------------------------------------------------------------

    fn spawn_worker(&self, idx: usize) {
        let inner = Arc::clone(&self.inner);
        let scalar = self.inner.config.scalar_filter;
        self.inner
            .machine
            .clone()
            .spawn(&format!("cjoin-filter-{idx}"), move |ctx| {
                let schema = inner.storage.schema(inner.fact);
                // Reusable per-worker scratch: in steady state the
                // vectorized kernel performs zero heap allocations per
                // tuple (allocations grow to the high-water batch size and
                // stay).
                let mut scratch = FilterScratch::default();
                // Per-thread epoch reader: one `Acquire` version load per
                // page at steady state; the slot lock is touched only when
                // an admission published a new epoch.
                let mut reader = inner.epoch.reader();
                while let Some(batch) = inner.worker_q.pop() {
                    // Decode the page here, in the parallel tier (once per
                    // page — each page is popped by exactly one worker),
                    // keeping the circular-scan thread free of per-tuple
                    // work.
                    let rows = batch.page.decode_all(&schema);
                    ctx.charge(
                        CostKind::Scan,
                        inner.cost.scan_tuple_ns * rows.len() as f64,
                    );
                    // Lock-free filter probe: the epoch observed here is at
                    // least as new as the one whose activation stamped this
                    // page's members (publish happens-before activate
                    // happens-before the stamp), so every stamped slot's
                    // entries are present.
                    let (page, counters) = {
                        let epoch = reader.current(&inner.epoch);
                        if scalar {
                            filter_page_scalar(&epoch.filters, &rows, &batch.members)
                        } else {
                            filter_page_vectorized(
                                &epoch.filters,
                                &rows,
                                &batch.members,
                                &mut scratch,
                            )
                        }
                    };
                    // Observed skew signal for the governor: this batch's
                    // tuple×filter probe steps per actual hash probe (key
                    // run), EWMA-folded so shifts in page clustering show up
                    // within a few batches.
                    if counters.key_runs > 0 {
                        ewma_fold(
                            &inner.key_run_ewma,
                            counters.probes as f64 / counters.key_runs as f64,
                            0.1,
                        );
                    }
                    // Shared-operator bookkeeping costs (the §5.2.2
                    // overhead). The scalar path charges per tuple; the
                    // vectorized path charges per key run + per bank word.
                    if scalar {
                        ctx.charge(
                            CostKind::Hashing,
                            inner.cost.hash_probe_tuple_ns * counters.probes as f64,
                        );
                        ctx.charge(
                            CostKind::Join,
                            inner.cost.shared_probe_extra_ns * counters.probes as f64
                                + inner.cost.bitmap_word_and_ns
                                    * counters.bitmap_words as f64,
                        );
                    } else {
                        ctx.charge(
                            CostKind::Hashing,
                            inner.cost.filter_probe_run_ns * counters.key_runs as f64,
                        );
                        ctx.charge(
                            CostKind::Join,
                            inner.cost.filter_batch_cost(0, counters.bitmap_words),
                        );
                    }
                    let dist = DistBatch {
                        rows,
                        members: Arc::clone(&batch.members),
                        page,
                    };
                    if inner.dist_q.push(Arc::new(dist)).is_err() {
                        return;
                    }
                }
                inner.dist_q.close();
            });
    }

    // -----------------------------------------------------------------
    // Distributor parts
    // -----------------------------------------------------------------

    fn spawn_distributor(&self, idx: usize) {
        let inner = Arc::clone(&self.inner);
        self.inner
            .machine
            .clone()
            .spawn(&format!("cjoin-dist-{idx}"), move |ctx| {
                // Reusable routing scratch: the query's routing column out
                // of the bitmap bank, and the batch-evaluated fact
                // predicate selection (both over survivor positions).
                let mut slot_sel = SelVec::new();
                let mut pred_sel = SelVec::new();
                // Per-thread epoch reader (see the filter worker): the
                // runtime snapshot below is lock-free at steady state.
                let mut reader = inner.epoch.reader();
                while let Some(batch) = inner.dist_q.pop() {
                    // Snapshot the runtimes of the member queries.
                    let runtimes: Vec<Arc<QueryRuntime>> = {
                        let epoch = reader.current(&inner.epoch);
                        batch
                            .members
                            .iter_ones()
                            .filter_map(|slot| epoch.queries.get(&(slot as u32)).cloned())
                            .collect()
                    };
                    let page = &batch.page;
                    let rows = &batch.rows;
                    let mut routed = 0u64;
                    let mut out_rows = 0u64;
                    let mut agg_rows = 0u64;
                    for qrt in &runtimes {
                        // Routing column: survivors carrying this query's
                        // bit (extracted as one pass over the bank).
                        page.bank.extract_column(qrt.slot as usize, &mut slot_sel);
                        let routed_q = slot_sel.count() as u64;
                        routed += routed_q;
                        if routed_q == 0 {
                            continue;
                        }
                        // Fact predicates on CJOIN output (§3.2): narrow the
                        // routing column batch-at-a-time — only rows this
                        // query actually routes are evaluated.
                        pred_sel.copy_from(&slot_sel);
                        qrt.fact_pred.restrict_batch_gather(
                            rows,
                            &page.selected,
                            &mut pred_sel,
                        );
                        out_rows += pred_sel.count() as u64;
                        let route_query = |sink_rows: &mut dyn FnMut(Row)| {
                            for j in pred_sel.iter_ones() {
                                let row = &rows[page.selected[j] as usize];
                                let mut joined = qrt.bound.project_fact(row);
                                for (fi, payload_idx) in &qrt.dim_filters {
                                    let dim_row = page
                                        .dim_match(j, *fi)
                                        .expect("bit set without dim match");
                                    for &ci in payload_idx {
                                        joined.push(dim_row[ci].clone());
                                    }
                                }
                                sink_rows(joined);
                            }
                        };
                        let mut pages = Vec::new();
                        match &qrt.sink {
                            Sink::Stream { out, builder } => {
                                {
                                    let mut builder = builder.lock();
                                    route_query(&mut |joined| {
                                        if let Some(full) = builder.push(joined) {
                                            pages.push(full);
                                        }
                                    });
                                }
                                for p in pages {
                                    out.emit(ctx, p);
                                }
                            }
                            Sink::Agg { agg, .. } => {
                                let mut guard = agg.lock();
                                let before = guard.rows_in();
                                route_query(&mut |joined| {
                                    guard.update(&joined);
                                });
                                agg_rows += guard.rows_in() - before;
                            }
                        }
                    }
                    ctx.charge(
                        CostKind::Routing,
                        inner.cost.route_tuple_ns * routed as f64,
                    );
                    ctx.charge(
                        CostKind::Join,
                        inner.cost.join_output_tuple_ns * out_rows as f64,
                    );
                    if agg_rows > 0 {
                        ctx.charge(
                            CostKind::Aggregation,
                            inner.cost.agg_update_tuple_ns * agg_rows as f64,
                        );
                    }
                    // Completion bookkeeping: the part that processes a
                    // query's last page finalizes it. **Ordering
                    // invariant**: the decrement is `AcqRel` so the winner
                    // (the part that observes the count hit zero) acquires
                    // every other part's released writes — the sink updates
                    // they made before their own decrement — before
                    // `finalize_query` reads the aggregator. `Relaxed`
                    // would let finalization read a stale aggregate.
                    for qrt in &runtimes {
                        if qrt.process_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                            finalize_query(&inner, ctx, qrt);
                        }
                    }
                }
            });
    }
}

/// Allocate a query slot (recycling freed slots first). Slots index the
/// stage's fixed-capacity [`WrapLedger`]; the assertion replaces the seed's
/// unbounded `active_bits.grow`.
pub(crate) fn alloc_slot(c: &mut GqpControl, wrap: &WrapLedger) -> u32 {
    let slot = c.free_slots.pop().unwrap_or_else(|| {
        let sl = c.next_slot;
        c.next_slot += 1;
        sl
    });
    assert!(
        (slot as usize) < wrap.capacity(),
        "slot {slot} exceeds the wrap ledger capacity {} — raise WRAP_SLOT_CAPACITY",
        wrap.capacity()
    );
    slot
}

/// Locate or create the shared filter for `(dim, fk, pk)` through the keyed
/// filter index — O(1) instead of the former linear scan over `filters`.
pub(crate) fn locate_filter(
    c: &mut GqpControl,
    e: &mut FilterEpoch,
    dim: TableId,
    fact_fk_idx: usize,
    dim_pk_idx: usize,
) -> usize {
    if let Some(&fi) = c.filter_index.get(&(dim, fact_fk_idx, dim_pk_idx)) {
        return fi;
    }
    e.filters.push(Arc::new(FilterCore {
        dim,
        fact_fk_idx,
        dim_pk_idx,
        hash: FxHashMap::default(),
        referencing: QueryBitmap::zeros(64),
    }));
    let fi = e.filters.len() - 1;
    c.filter_index.insert((dim, fact_fk_idx, dim_pk_idx), fi);
    fi
}

/// Activate one admitted query: build its sink/runtime, publish it in the
/// next filter epoch (distributor visibility), then raise its wrap-ledger
/// bit (preprocessor visibility). The publish is sequenced **before** the
/// activation — entries-then-activate ([`crate::epoch`]): a scan that
/// stamps the slot always finds its runtime and filter entries.
pub(crate) fn activate_query(
    inner: &StageInner,
    adm: &Admission,
    slot: u32,
    dim_filters: Vec<(usize, Vec<usize>)>,
) {
    let sink = match &adm.sink {
        AdmissionSink::Stream(out) => Sink::Stream {
            out: out.clone(),
            builder: Mutex::new(BatchBuilder::new()),
        },
        AdmissionSink::Agg(result) => Sink::Agg {
            agg: Mutex::new(Aggregator::new(&adm.bound)),
            order: adm.query.order_by.clone(),
            result: Arc::clone(result),
        },
    };
    let qrt = Arc::new(QueryRuntime {
        slot,
        qid: adm.query.id,
        sig: adm.sig,
        bound: Arc::clone(&adm.bound),
        fact_pred: adm.query.fact_pred.clone(),
        dim_filters,
        sink,
        process_left: AtomicU64::new(inner.fact_pages.max(1)),
        fault: Arc::clone(&adm.fault),
    });
    inner.mutate_epoch(|_, e| {
        e.queries.insert(slot, Arc::clone(&qrt));
    });
    // Budget-then-activate inside, publish-then-activate outside: the
    // `Release` bit-set pairs with the scan's `Acquire` snapshot, carrying
    // the epoch publish above with it.
    inner.wrap.activate(slot as usize, inner.fact_pages.max(1));
}

/// Unrecoverable fact-page fault on the circular scan: set the typed error
/// on every member query's fault cell, then advance the wrap (`emit_left`)
/// and completion (`process_left`) bookkeeping exactly as a served page
/// would have, so the in-flight queries run to completion with an error
/// outcome instead of waiting forever for a page that cannot be read.
fn fail_fact_page(inner: &Arc<StageInner>, ctx: &SimCtx, msg: &str) {
    let members = inner.wrap.snapshot();
    let runtimes: Vec<Arc<QueryRuntime>> = {
        let epoch = inner.epoch.load();
        members
            .iter_ones()
            .filter_map(|slot| epoch.queries.get(&(slot as u32)).cloned())
            .collect()
    };
    for qrt in &runtimes {
        set_fault(&qrt.fault, msg);
    }
    inner.wrap.record_page(&members);
    for qrt in &runtimes {
        if qrt.process_left.fetch_sub(1, Ordering::AcqRel) == 1 {
            finalize_query(inner, ctx, qrt);
        }
    }
}

/// Remove a never-activated (or failed) slot from the GQP: clear its bit
/// from every filter's `referencing` set and entry bitmaps (dropping
/// entries that go empty) and release the slot for reuse. The rollback
/// mirror of `finalize_query`'s cleanup, shared by the admission failure
/// paths.
pub(crate) fn release_slot(c: &mut GqpControl, e: &mut FilterEpoch, slot: u32) {
    let sl = slot as usize;
    for f in &mut e.filters {
        if f.referencing.get(sl) {
            let f = Arc::make_mut(f);
            f.referencing.clear(sl);
            f.hash.retain(|_, entry| {
                entry.bits.clear(sl);
                entry.bits.any()
            });
        }
    }
    c.free_slots.push(slot);
}

fn finalize_query(inner: &StageInner, ctx: &SimCtx, qrt: &QueryRuntime) {
    let fault = qrt.fault.lock().clone();
    match &qrt.sink {
        Sink::Stream { out, builder } => {
            // Flush the tail page and close the packet's output.
            if let Some(rest) = builder.lock().flush() {
                out.emit(ctx, rest);
            }
            out.close();
        }
        Sink::Agg { agg, order, result } => {
            // Finalize the shared aggregate: sort and buffer the rows.
            let mut done = Aggregator::new(&qrt.bound);
            std::mem::swap(&mut *agg.lock(), &mut done);
            let groups = done.group_count();
            ctx.charge(
                CostKind::Aggregation,
                inner.cost.agg_group_output_ns * groups as f64,
            );
            if !order.is_empty() {
                ctx.charge(CostKind::Sort, inner.cost.sort_cost(groups));
            }
            match &fault {
                // A faulted query's partial aggregate is unsound — fail the
                // result (waiters wake with the typed error) instead of
                // publishing it.
                Some(msg) => result.fail(msg),
                None => result.complete(Arc::new(done.finish(order))),
            }
        }
    }
    // Remove from the GQP: publish an epoch without the query — its bit
    // cleared from every filter entry, empty entries dropped, the slot
    // released for reuse.
    inner.mutate_epoch(|control, epoch| {
        let slot = qrt.slot as usize;
        for f in &mut epoch.filters {
            if f.referencing.get(slot) {
                let f = Arc::make_mut(f);
                f.referencing.clear(slot);
                f.hash.retain(|_, entry| {
                    entry.bits.clear(slot);
                    entry.bits.any()
                });
            }
        }
        epoch.queries.remove(&qrt.slot);
        control.free_slots.push(qrt.slot);
    });
    if inner.config.sp {
        let mut reg = inner.sp_registry.lock();
        if reg.get(&qrt.sig).is_some_and(|(qid, _)| *qid == qrt.qid) {
            reg.remove(&qrt.sig);
        }
    }
    ctx.charge(CostKind::Admission, inner.cost.admission_query_fixed_ns / 4.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::codec::PageBuilder;
    use workshare_common::{
        AggSpec, ColRef, ColType, Column, DimJoin, OrderKey, Schema, Value,
    };
    use workshare_sim::MachineConfig;
    use workshare_storage::{IoMode, StorageConfig};

    fn setup_sized(dima_rows: i64, dimb_rows: i64) -> (Machine, StorageManager) {
        let m = Machine::new(MachineConfig {
            cores: 8,
            ..Default::default()
        });
        let sm = StorageManager::new(
            StorageConfig {
                io_mode: IoMode::Memory,
                ..Default::default()
            },
            CostModel::default(),
        );
        let fs = Schema::new(vec![
            Column::new("fk_a", ColType::Int),
            Column::new("fk_b", ColType::Int),
            Column::new("m", ColType::Int),
        ]);
        let mut fb = PageBuilder::new(&fs);
        for i in 0..3000i64 {
            fb.push(&[
                Value::Int(i % dima_rows),
                Value::Int(i % dimb_rows),
                Value::Int(i),
            ]);
        }
        let fpages = fb.finish();
        sm.create_table("fact", fs, fpages);
        for (name, n, tags) in [("dima", dima_rows, "a"), ("dimb", dimb_rows, "b")] {
            let ds = Schema::new(vec![
                Column::new("pk", ColType::Int),
                Column::new("tag", ColType::Str(8)),
            ]);
            let mut db = PageBuilder::new(&ds);
            for i in 0..n {
                db.push(&[Value::Int(i), Value::str(&format!("{tags}{}", i % 2))]);
            }
            let dpages = db.finish();
            sm.create_table(name, ds, dpages);
        }
        (m, sm)
    }

    fn setup() -> (Machine, StorageManager) {
        setup_sized(10, 7)
    }

    fn query(id: u64, a_even_only: bool) -> StarQuery {
        StarQuery {
            id,
            fact: "fact".into(),
            fact_pred: Predicate::True,
            dims: vec![
                DimJoin {
                    dim: "dima".into(),
                    fact_fk: "fk_a".into(),
                    dim_pk: "pk".into(),
                    pred: if a_even_only {
                        Predicate::eq(1, Value::str("a0"))
                    } else {
                        Predicate::True
                    },
                    payload: vec!["tag".into()],
                },
                DimJoin {
                    dim: "dimb".into(),
                    fact_fk: "fk_b".into(),
                    dim_pk: "pk".into(),
                    pred: Predicate::True,
                    payload: vec!["tag".into()],
                },
            ],
            group_by: vec![ColRef::dim(0, "tag"), ColRef::dim(1, "tag")],
            aggs: vec![AggSpec::sum(ColRef::fact("m"))],
            order_by: vec![
                OrderKey {
                    output_idx: 0,
                    desc: false,
                },
                OrderKey {
                    output_idx: 1,
                    desc: false,
                },
            ],
        }
    }

    /// Reference evaluation with plain nested loops.
    fn expected(a_even_only: bool) -> Vec<Row> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(String, String), f64> = BTreeMap::new();
        for i in 0..3000i64 {
            let a = i % 10;
            let b = i % 7;
            let atag = format!("a{}", a % 2);
            let btag = format!("b{}", b % 2);
            if a_even_only && atag != "a0" {
                continue;
            }
            *groups.entry((atag, btag)).or_insert(0.0) += i as f64;
        }
        groups
            .into_iter()
            .map(|((a, b), s)| vec![Value::str(&a), Value::str(&b), Value::Float(s)])
            .collect()
    }

    fn run_queries(
        config: CjoinConfig,
        queries: Vec<StarQuery>,
    ) -> (Vec<Vec<Row>>, CjoinStats) {
        let (rows, stats, _) = run_queries_on(setup(), config, queries, 0.0);
        (rows, stats)
    }

    /// Run `queries` on a fresh stage over `(m, sm)`, optionally staggering
    /// submissions by `interarrival_ns` of virtual time (staggered arrivals
    /// split the pending set into several admission batches). Also returns
    /// the stage's runtime signals (the selectivity EWMA the oracle test
    /// compares across admission paths).
    fn run_queries_on(
        (m, sm): (Machine, StorageManager),
        config: CjoinConfig,
        queries: Vec<StarQuery>,
        interarrival_ns: f64,
    ) -> (Vec<Vec<Row>>, CjoinStats, CjoinRuntimeStats) {
        let stage = CjoinStage::new(&m, &sm, "fact", config, CostModel::default());
        let st = stage.clone();
        let out = m
            .spawn("coord", move |ctx| {
                let fact_schema = st.inner.storage.schema(st.inner.fact);
                let mut jobs = Vec::new();
                for (qi, q) in queries.iter().enumerate() {
                    if qi > 0 && interarrival_ns > 0.0 {
                        ctx.sleep(interarrival_ns);
                    }
                    let dim_schemas: Vec<_> = q
                        .dims
                        .iter()
                        .map(|d| {
                            st.inner
                                .storage
                                .schema(st.inner.storage.table(&d.dim))
                        })
                        .collect();
                    let dim_refs: Vec<&Schema> =
                        dim_schemas.iter().map(|s| s.as_ref()).collect();
                    let bound = bind(&fact_schema, &dim_refs, q);
                    let mut outp = st.submit(q);
                    let order = q.order_by.clone();
                    let cost = st.inner.cost;
                    jobs.push(ctx.machine().spawn(
                        &format!("agg-q{}", q.id),
                        move |ctx| {
                            let mut agg = workshare_common::agg::Aggregator::new(&bound);
                            while let Some(b) = outp.reader.next(ctx) {
                                ctx.charge(
                                    CostKind::Aggregation,
                                    cost.agg_update_tuple_ns * b.len() as f64,
                                );
                                for row in &b.rows {
                                    agg.update(row);
                                }
                            }
                            agg.finish(&order)
                        },
                    ));
                }
                jobs.into_iter().map(|j| j.join().unwrap()).collect::<Vec<_>>()
            })
            .join()
            .unwrap();
        let stats = stage.stats();
        let runtime = stage.runtime_stats();
        stage.shutdown();
        (out, stats, runtime)
    }

    #[test]
    fn single_query_matches_reference() {
        let (res, stats) = run_queries(CjoinConfig::default(), vec![query(1, false)]);
        assert_eq!(res[0], expected(false));
        assert_eq!(stats.admitted, 1);
    }

    #[test]
    fn scalar_filter_config_matches_vectorized() {
        let qs = || vec![query(1, false), query(2, true), query(3, false)];
        let (vec_res, mut vec_stats) = run_queries(CjoinConfig::default(), qs());
        let scalar = CjoinConfig {
            scalar_filter: true,
            ..Default::default()
        };
        let (sc_res, mut sc_stats) = run_queries(scalar, qs());
        assert_eq!(vec_res, sc_res, "filter kernels must be row-identical");
        // admission_batches (and with it the physical page count of the
        // shared admission scans) depends on how submissions interleave
        // with page boundaries, which legitimately shifts when the filter
        // path speeds up; every workload-derived counter must match
        // exactly.
        vec_stats.admission_batches = 0;
        sc_stats.admission_batches = 0;
        vec_stats.admission_dim_pages = 0;
        sc_stats.admission_dim_pages = 0;
        assert_eq!(vec_stats, sc_stats, "and stats-identical");
    }

    #[test]
    fn concurrent_queries_with_different_predicates() {
        let qs = vec![query(1, false), query(2, true), query(3, false), query(4, true)];
        let (res, stats) = run_queries(CjoinConfig::default(), qs);
        assert_eq!(res[0], expected(false));
        assert_eq!(res[1], expected(true));
        assert_eq!(res[2], expected(false));
        assert_eq!(res[3], expected(true));
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.sp_shares, 0);
    }

    #[test]
    fn sp_shares_identical_packets() {
        let config = CjoinConfig {
            sp: true,
            ..Default::default()
        };
        let qs = vec![query(1, true), query(2, true), query(3, true)];
        let (res, stats) = run_queries(config, qs);
        for r in &res {
            assert_eq!(*r, expected(true));
        }
        assert_eq!(stats.admitted, 1, "only the host is admitted");
        assert_eq!(stats.sp_shares, 2);
    }

    #[test]
    fn queries_with_disjoint_dimensions_coexist() {
        // One query joins only dima, the other only dimb; the shared plan
        // must not let one query's filter hurt the other.
        let mut qa = query(1, false);
        qa.dims.truncate(1);
        qa.group_by = vec![ColRef::dim(0, "tag")];
        qa.order_by = vec![OrderKey {
            output_idx: 0,
            desc: false,
        }];
        let mut qb = query(2, false);
        qb.dims.remove(0);
        qb.group_by = vec![ColRef::dim(0, "tag")];
        qb.order_by = vec![OrderKey {
            output_idx: 0,
            desc: false,
        }];
        let (res, _) = run_queries(CjoinConfig::default(), vec![qa, qb]);
        // dima tags: sum of i where (i%10)%2==tag parity.
        let mut a0 = 0.0;
        let mut a1 = 0.0;
        let mut b0 = 0.0;
        let mut b1 = 0.0;
        for i in 0..3000i64 {
            if (i % 10) % 2 == 0 {
                a0 += i as f64;
            } else {
                a1 += i as f64;
            }
            if (i % 7) % 2 == 0 {
                b0 += i as f64;
            } else {
                b1 += i as f64;
            }
        }
        assert_eq!(
            res[0],
            vec![
                vec![Value::str("a0"), Value::Float(a0)],
                vec![Value::str("a1"), Value::Float(a1)],
            ]
        );
        assert_eq!(
            res[1],
            vec![
                vec![Value::str("b0"), Value::Float(b0)],
                vec![Value::str("b1"), Value::Float(b1)],
            ]
        );
    }

    #[test]
    fn fact_predicates_are_applied_on_output() {
        let mut q = query(1, false);
        q.fact_pred = Predicate::between(2, 0i64, 999i64); // m <= 999
        let (res, _) = run_queries(CjoinConfig::default(), vec![q]);
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(String, String), f64> = BTreeMap::new();
        for i in 0..1000i64 {
            let atag = format!("a{}", (i % 10) % 2);
            let btag = format!("b{}", (i % 7) % 2);
            *groups.entry((atag, btag)).or_insert(0.0) += i as f64;
        }
        let expect: Vec<Row> = groups
            .into_iter()
            .map(|((a, b), s)| vec![Value::str(&a), Value::str(&b), Value::Float(s)])
            .collect();
        assert_eq!(res[0], expect);
    }

    #[test]
    fn late_query_gets_complete_answer_via_wrap() {
        let (m, sm) = setup();
        let stage = CjoinStage::new(&m, &sm, "fact", CjoinConfig::default(), CostModel::default());
        let st = stage.clone();
        let out = m
            .spawn("coord", move |ctx| {
                let run_one = |st: &CjoinStage, ctx: &SimCtx, q: StarQuery| {
                    let fact_schema = st.inner.storage.schema(st.inner.fact);
                    let dim_schemas: Vec<_> = q
                        .dims
                        .iter()
                        .map(|d| st.inner.storage.schema(st.inner.storage.table(&d.dim)))
                        .collect();
                    let dim_refs: Vec<&Schema> =
                        dim_schemas.iter().map(|s| s.as_ref()).collect();
                    let bound = bind(&fact_schema, &dim_refs, &q);
                    let mut outp = st.submit(&q);
                    let order = q.order_by.clone();
                    ctx.machine().spawn(&format!("agg-{}", q.id), move |ctx| {
                        let mut agg = workshare_common::agg::Aggregator::new(&bound);
                        while let Some(b) = outp.reader.next(ctx) {
                            for row in &b.rows {
                                agg.update(row);
                            }
                        }
                        agg.finish(&order)
                    })
                };
                let j1 = run_one(&st, ctx, query(1, false));
                // Let the first query's scan progress mid-way, then submit.
                ctx.sleep(2e5);
                let j2 = run_one(&st, ctx, query(2, true));
                (j1.join().unwrap(), j2.join().unwrap())
            })
            .join()
            .unwrap();
        assert_eq!(out.0, expected(false));
        assert_eq!(out.1, expected(true), "late arrival still sees every tuple");
        stage.shutdown();
    }

    /// Canonical view of a stage's shared-filter state: per filter, the
    /// referencing slots plus every entry's key, row, and selecting slots.
    #[allow(clippy::type_complexity)]
    fn filter_snapshot(
        stage: &CjoinStage,
    ) -> Vec<(Vec<usize>, std::collections::BTreeMap<i64, (Row, Vec<usize>)>)> {
        let e = stage.inner.epoch.load();
        e.filters
            .iter()
            .map(|f| {
                (
                    f.referencing.iter_ones().collect(),
                    f.hash
                        .iter()
                        .map(|(k, e)| {
                            ((*k), ((*e.row).clone(), e.bits.iter_ones().collect()))
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn shared_admission_scans_each_dimension_once_per_batch() {
        // Multi-page dima so the shared scan's page loop is exercised.
        let (m, sm) = setup_sized(3000, 7);
        let dima_pages = sm.page_count(sm.table("dima")) as u64;
        let dimb_pages = sm.page_count(sm.table("dimb")) as u64;
        assert!(dima_pages > 1, "dima must span pages to exercise the loop");
        // cap_pages 1 and no attached readers: emits block before any query
        // can complete, so no finalize mutates the filters under the
        // snapshots below.
        let mk_stage = |serial: bool| {
            CjoinStage::new(
                &m,
                &sm,
                "fact",
                CjoinConfig {
                    serial_admission: serial,
                    cap_pages: 1,
                    ..Default::default()
                },
                CostModel::default(),
            )
        };
        let shared = mk_stage(false);
        let serial = mk_stage(true);
        let queries =
            vec![query(1, false), query(2, true), query(3, false), query(4, true)];
        let sh = shared.clone();
        let se = serial.clone();
        let snaps = m
            .spawn("driver", move |ctx| {
                let mk_batch = |st: &CjoinStage| -> Vec<Admission> {
                    queries
                        .iter()
                        .map(|q| Admission {
                            query: q.clone(),
                            bound: st.bound_for(q),
                            sink: AdmissionSink::Stream(Exchange::new(
                                ExchangeKind::Spl,
                                &st.inner.machine,
                                st.inner.cost,
                                1,
                            )),
                            sig: q.cjoin_signature(),
                            fault: Arc::new(Mutex::new(None)),
                        })
                        .collect()
                };
                admit_batch_shared(&sh.inner, ctx, mk_batch(&sh));
                admit_batch_serial(&se.inner, ctx, mk_batch(&se));
                (filter_snapshot(&sh), filter_snapshot(&se))
            })
            .join()
            .unwrap();
        let sh_stats = shared.stats();
        let se_stats = serial.stats();
        assert_eq!(sh_stats.admitted, 4);
        assert_eq!(se_stats.admitted, 4);
        assert_eq!(sh_stats.admission_batches, 1);
        // One physical scan per distinct (dim, fk, pk) for the whole
        // batch — the shared-scan invariant — vs one per pending query on
        // the serial oracle path.
        assert_eq!(sh_stats.admission_dim_pages, dima_pages + dimb_pages);
        assert_eq!(se_stats.admission_dim_pages, 4 * (dima_pages + dimb_pages));
        // The logical per-query scan volume is identical either way.
        assert_eq!(sh_stats.admission_dim_rows, 4 * (3000 + 7));
        assert_eq!(se_stats.admission_dim_rows, sh_stats.admission_dim_rows);
        // And the filter state the batch builds (referencing bits, entry
        // keys/rows, per-entry query bitmaps) is exactly the serial one.
        assert_eq!(snaps.0, snaps.1, "shared admission diverged from oracle");
        shared.shutdown();
        serial.shutdown();
    }

    /// Property test mirroring the `scalar_filter` oracle pattern: batched
    /// shared-scan admission must be behaviorally identical to the retained
    /// per-query serial path across random query mixes, dimension subsets,
    /// page counts, and arrival patterns.
    mod shared_admission_oracle {
        use super::*;
        use proptest::prelude::*;

        fn dim_pred(variant: u8, prefix: &str) -> Predicate {
            match variant % 3 {
                0 => Predicate::True,
                1 => Predicate::eq(1, Value::str(&format!("{prefix}0"))),
                _ => Predicate::eq(1, Value::str(&format!("{prefix}1"))),
            }
        }

        fn build_query(id: u64, pa: u8, pb: u8, subset: u8) -> StarQuery {
            let mut q = query(id, false);
            q.dims[0].pred = dim_pred(pa, "a");
            q.dims[1].pred = dim_pred(pb, "b");
            let single = |q: &mut StarQuery| {
                q.group_by = vec![ColRef::dim(0, "tag")];
                q.order_by = vec![OrderKey {
                    output_idx: 0,
                    desc: false,
                }];
            };
            match subset % 3 {
                1 => {
                    q.dims.truncate(1);
                    single(&mut q);
                }
                2 => {
                    q.dims.remove(0);
                    single(&mut q);
                }
                _ => {}
            }
            q
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(6))]

            #[test]
            fn shared_admission_matches_serial_oracle(
                specs in proptest::collection::vec((0u8..3, 0u8..3, 0u8..3), 1..6),
                paged_dims in proptest::bool::ANY,
                stagger in proptest::bool::ANY,
            ) {
                let queries: Vec<StarQuery> = specs
                    .iter()
                    .enumerate()
                    .map(|(i, &(pa, pb, subset))| build_query(i as u64, pa, pb, subset))
                    .collect();
                let dima_rows = if paged_dims { 3000 } else { 10 };
                // Staggered arrivals split the pending set into several
                // admission batches; the oracle must hold regardless. The
                // staggered runs also use several admission workers, so
                // concurrent admit_batch_shared calls over shared filter
                // cores are exercised against the oracle too.
                let interarrival = if stagger { 2e5 } else { 0.0 };
                let shared_cfg = CjoinConfig {
                    n_admission_workers: if stagger { 4 } else { 1 },
                    ..Default::default()
                };
                let serial_cfg = CjoinConfig {
                    serial_admission: true,
                    ..Default::default()
                };
                let (sh_rows, mut sh_stats, sh_rt) = run_queries_on(
                    setup_sized(dima_rows, 7),
                    shared_cfg,
                    queries.clone(),
                    interarrival,
                );
                let (se_rows, mut se_stats, se_rt) = run_queries_on(
                    setup_sized(dima_rows, 7),
                    serial_cfg,
                    queries,
                    interarrival,
                );
                prop_assert_eq!(sh_rows, se_rows, "joined rows diverged");
                // Physical admission reads and batch counts legitimately
                // differ (that is the optimization); every logical counter
                // must match exactly.
                sh_stats.admission_batches = 0;
                se_stats.admission_batches = 0;
                sh_stats.admission_dim_pages = 0;
                se_stats.admission_dim_pages = 0;
                prop_assert_eq!(sh_stats, se_stats, "stats diverged");
                // The selectivity EWMA folds the same per-(page, query)
                // sample multiset in a different order, and an EWMA with
                // alpha 0.2 over two samples a, b already differs by
                // 0.6·|a−b| across orders — with this fixture's samples in
                // {0.5, 1.0} the order-sensitivity bound is 0.3. The
                // tolerance checks the signal plumbing (folds happened,
                // right magnitude); per-query *attribution* is guaranteed
                // order-independently by the row/stats equality above and
                // the deterministic filter-snapshot test.
                let (a, b) = (
                    sh_rt.dim_selectivity.expect("shared run observed admission scans"),
                    se_rt.dim_selectivity.expect("serial run observed admission scans"),
                );
                prop_assert!(
                    (0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b),
                    "EWMA out of range: shared {} serial {}", a, b
                );
                prop_assert!(
                    (a - b).abs() <= 0.3,
                    "dim_selectivity EWMA diverged: shared {} vs serial {}",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn slots_are_recycled_after_completion() {
        let (m, sm) = setup();
        let stage = CjoinStage::new(&m, &sm, "fact", CjoinConfig::default(), CostModel::default());
        let st = stage.clone();
        m.spawn("coord", move |ctx| {
            for round in 0..3 {
                let q = query(round, false);
                let mut outp = st.submit(&q);
                // Drain without aggregating.
                while outp.reader.next(ctx).is_some() {}
            }
            assert_eq!(st.active_queries(), 0);
            // Slots were reused: next_slot never exceeded round count 1.
            assert!(st.inner.control.lock().next_slot <= 2);
        })
        .join()
        .unwrap();
        stage.shutdown();
    }
}
