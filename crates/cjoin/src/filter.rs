//! Batch-at-a-time shared-filter kernels.
//!
//! The CJOIN hot path is the shared filter/route loop: every fact tuple
//! carries a query-membership bitmap that each shared filter ANDs down
//! (`bits &= entry | ¬referencing`, §2.4) before the distributor routes on
//! the surviving bits. The seed implementation was strictly tuple-at-a-time:
//! per tuple it heap-cloned a [`QueryBitmap`], allocated a dimension-match
//! vector, and enum-dispatched the probe — exactly the interpretation
//! overhead that makes shared operators lose to query-centric plans at low
//! concurrency (§5.2.2).
//!
//! This module provides two interchangeable kernels over the same
//! [`FilterCore`] state:
//!
//! * [`filter_page_vectorized`] — the production path. Tuple bitmaps live in
//!   one word-strided [`BitmapBank`]; filters are applied filter-major
//!   (outer loop over filters, inner over the still-alive tuples of the
//!   batch), probing the dimension hash once per *key run* (consecutive
//!   equal FKs — clustered fact data and join-product skew both collapse
//!   into long runs) and folding bitmap updates as whole-word ANDs. All
//!   working state lives in a per-worker [`FilterScratch`], so the
//!   steady-state loop performs **zero heap allocations per tuple**.
//! * [`filter_page_scalar`] — the retained tuple-at-a-time reference path
//!   (enabled with `CjoinConfig::scalar_filter`), kept as the behavioral
//!   oracle for property tests and as the baseline the
//!   `filter_vectorized` criterion bench measures against.
//!
//! Both kernels produce the same [`FilteredPage`] (survivor indices, a
//! survivor-aligned bitmap bank, and the matched dimension rows), so the
//! distributor is agnostic to which one ran.

use std::sync::Arc;

use workshare_common::fxhash::FxHashMap;
use workshare_common::value::Row;
use workshare_common::{BitmapBank, QueryBitmap, SelVec};
use workshare_storage::TableId;

/// One dimension tuple admitted into a shared filter: the row payload plus
/// the bitmap of queries whose dimension predicate selected it. `Clone` is
/// cheap-ish (one `Arc` bump plus the bitmap words) and exists for the
/// copy-on-write epoch publication in `crate::stage`: admission clones
/// only the filter cores it touches via `Arc::make_mut`.
#[derive(Clone)]
pub struct DimEntry {
    /// The dimension row (shared with every joined output).
    pub row: Arc<Row>,
    /// Queries selecting this dimension tuple.
    pub bits: QueryBitmap,
}

/// One shared filter (shared selection + shared hash-join pair over one
/// `(dimension, fk, pk)` triple): identity plus probe-side state. The
/// kernels only read `fact_fk_idx` / `hash` / `referencing`; the identity
/// fields let admission deduplicate filters without a parallel metadata
/// vector. Shared as `Arc<FilterCore>` inside the epoch-published filter
/// state ([`crate::epoch`]); `Clone` backs the `Arc::make_mut`
/// copy-on-write that admission uses to build the next epoch without
/// blocking readers.
#[derive(Clone)]
pub struct FilterCore {
    /// The dimension table this filter joins.
    pub dim: TableId,
    /// Fact-schema column index of the foreign key this filter probes with.
    pub fact_fk_idx: usize,
    /// Dimension-schema column index of the primary key.
    pub dim_pk_idx: usize,
    /// Dimension hash table: pk → selected row + query bitmap.
    pub hash: FxHashMap<i64, DimEntry>,
    /// Queries referencing this filter's dimension; non-referencing queries
    /// pass through untouched.
    pub referencing: QueryBitmap,
}

/// Per-worker reusable working state of the vectorized kernel. Allocations
/// grow to the high-water batch size and are then reused batch after batch —
/// the zero-alloc invariant of the steady-state filter loop.
#[derive(Default)]
pub struct FilterScratch {
    bank: BitmapBank,
    alive: SelVec,
    /// `!referencing` of the current filter, zero-extended to the bank
    /// stride.
    notref: Vec<u64>,
    /// `entry | !referencing` of the current key run.
    mask: Vec<u64>,
    /// Per-(tuple, filter) matched key-run code: 0 = no match, else a
    /// 1-based index into the batch's run-hit list. Borrowed entry
    /// references cannot live in reusable scratch, so the hot loop stores
    /// 4-byte codes and resolves them to `Arc` clones at compaction.
    match_run: Vec<u32>,
}

/// A filtered page: the indices of surviving tuples (into the source page),
/// their bitmaps compacted into a survivor-aligned bank, and the matched
/// dimension rows. Matches are stored as one shared `Arc<Row>` per *key
/// run* plus 4-byte per-survivor codes — a page with long runs pays a
/// handful of `Arc` clones instead of one per survivor × filter.
pub struct FilteredPage {
    /// Indices of surviving tuples into the source page's rows.
    pub selected: Vec<u32>,
    /// One membership bitmap per survivor, aligned with `selected`.
    pub bank: BitmapBank,
    /// Survivor-major match codes (`j * nfilters + fi`): 0 = no match,
    /// else 1-based index into `run_rows`.
    match_codes: Vec<u32>,
    /// Matched dimension rows, one per key run with a hash hit.
    run_rows: Vec<Arc<Row>>,
    /// Number of filters the page was probed through.
    pub nfilters: usize,
}

impl FilteredPage {
    /// Matched dimension row of survivor `j` at filter `fi`.
    pub fn dim_match(&self, j: usize, fi: usize) -> Option<&Arc<Row>> {
        match self.match_codes[j * self.nfilters + fi] {
            0 => None,
            code => Some(&self.run_rows[code as usize - 1]),
        }
    }
}

/// Work counters the cost model charges from (virtual nanoseconds are
/// charged outside the kernel so no virtual-time operation happens while the
/// GQP state lock is held).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterCounters {
    /// Tuple × filter probe steps performed.
    pub probes: u64,
    /// Distinct key runs actually probed into a dimension hash table.
    pub key_runs: u64,
    /// 64-bit bitmap words ANDed.
    pub bitmap_words: u64,
}

/// Tuple-at-a-time reference kernel (the seed's semantics, verbatim): clone
/// the page bitmap per tuple, probe every filter per tuple, AND via
/// [`QueryBitmap::and_filtered`].
pub fn filter_page_scalar(
    filters: &[Arc<FilterCore>],
    rows: &[Row],
    members: &QueryBitmap,
) -> (FilteredPage, FilterCounters) {
    let nfilters = filters.len();
    let mut counters = FilterCounters::default();
    let mut selected = Vec::new();
    let mut bank = BitmapBank::new();
    bank.reset_empty(members.word_count());
    let mut match_codes: Vec<u32> = Vec::new();
    let mut run_rows: Vec<Arc<Row>> = Vec::new();
    let mut row_matches: Vec<Option<Arc<Row>>> = vec![None; nfilters];
    for (i, row) in rows.iter().enumerate() {
        let mut bits = members.clone();
        row_matches.fill(None);
        let mut alive = bits.any();
        for (fi, f) in filters.iter().enumerate() {
            if !alive {
                break;
            }
            let key = row[f.fact_fk_idx].as_int();
            let entry = f.hash.get(&key);
            counters.probes += 1;
            counters.key_runs += 1;
            counters.bitmap_words += bits.word_count() as u64;
            alive = bits.and_filtered(entry.map(|e| &e.bits), &f.referencing);
            if let Some(e) = entry {
                row_matches[fi] = Some(Arc::clone(&e.row));
            }
        }
        if alive {
            selected.push(i as u32);
            bank.push_bitmap(&bits);
            for m in &mut row_matches {
                match m.take() {
                    None => match_codes.push(0),
                    Some(r) => {
                        run_rows.push(r);
                        match_codes.push(run_rows.len() as u32);
                    }
                }
            }
        }
    }
    (
        FilteredPage {
            selected,
            bank,
            match_codes,
            run_rows,
            nfilters,
        },
        counters,
    )
}

/// Vectorized batch-at-a-time kernel. See the module docs for the loop
/// structure; behavior is row-identical to [`filter_page_scalar`].
///
/// Inner-loop discipline: the AND mask `entry | !referencing` is computed
/// once per *key run*, so the per-tuple work is one FK extraction, one key
/// compare, one 4-byte run-code store, and `stride` word ANDs. Dimension
/// matches are resolved from run codes at compaction, so `Arc` clones
/// (atomic RMWs) are paid only for survivors, never for tuples the filters
/// kill.
pub fn filter_page_vectorized(
    filters: &[Arc<FilterCore>],
    rows: &[Row],
    members: &QueryBitmap,
    scratch: &mut FilterScratch,
) -> (FilteredPage, FilterCounters) {
    let n = rows.len();
    let nfilters = filters.len();
    let mut counters = FilterCounters::default();
    // Split-borrow the scratch fields so the retain closure can mutate the
    // bank and masks while the selection vector drives iteration.
    let FilterScratch {
        bank,
        alive,
        notref,
        mask,
        match_run,
    } = scratch;
    bank.reset(n, members);
    alive.reset(n, members.any());
    let stride = bank.stride();
    match_run.clear();
    match_run.resize(n * nfilters, 0);
    // The matched dimension entry of every key run with a hash hit, across
    // all filters (codes in `match_run` are 1-based indices into this).
    // Sized by runs, not tuples — the only per-batch allocation in the loop.
    let mut run_hits: Vec<&DimEntry> = Vec::new();
    for (fi, f) in filters.iter().enumerate() {
        if !alive.any() {
            break;
        }
        // `!referencing`, extended to the bank stride, fixed per filter.
        notref.clear();
        notref.extend(
            (0..stride).map(|j| !f.referencing.words().get(j).copied().unwrap_or(0)),
        );
        // Probe once per run of equal consecutive keys: clustered fact
        // pages and join-product skew both collapse into long runs, so the
        // hash lookup and mask construction amortize across the run.
        let mut run_key = 0i64;
        let mut run_code = 0u32;
        let mut in_run = false;
        let fk = f.fact_fk_idx;
        let mrow = &mut match_run[..];
        let hits = &mut run_hits;
        // Every still-alive tuple is visited exactly once by this pass, so
        // the per-tuple counters hoist out of the inner loop entirely.
        let visited = alive.count() as u64;
        counters.probes += visited;
        counters.bitmap_words += visited * stride as u64;
        if stride == 1 {
            // Up to 64 query slots: the whole mask is one word.
            let notref0 = notref[0];
            let mut mask0 = 0u64;
            alive.retain(|i| {
                let key = rows[i][fk].as_int();
                if !in_run || key != run_key {
                    run_key = key;
                    in_run = true;
                    counters.key_runs += 1;
                    match f.hash.get(&key) {
                        Some(e) => {
                            hits.push(e);
                            run_code = hits.len() as u32;
                            mask0 =
                                notref0 | e.bits.words().first().copied().unwrap_or(0);
                        }
                        None => {
                            run_code = 0;
                            mask0 = notref0;
                        }
                    }
                }
                mrow[i * nfilters + fi] = run_code;
                bank.and_word(i, mask0)
            });
        } else {
            alive.retain(|i| {
                let key = rows[i][fk].as_int();
                if !in_run || key != run_key {
                    run_key = key;
                    in_run = true;
                    counters.key_runs += 1;
                    let entry = f.hash.get(&key);
                    match entry {
                        Some(e) => {
                            hits.push(e);
                            run_code = hits.len() as u32;
                        }
                        None => run_code = 0,
                    }
                    let ew = entry.map(|e| e.bits.words()).unwrap_or(&[]);
                    mask.clear();
                    mask.extend(
                        notref
                            .iter()
                            .enumerate()
                            .map(|(j, nr)| nr | ew.get(j).copied().unwrap_or(0)),
                    );
                }
                mrow[i * nfilters + fi] = run_code;
                bank.and_mask_row(i, mask)
            });
        }
    }
    // Compact survivors out of the scratch (per-batch allocations only).
    // Match codes copy over verbatim; the `Arc` clones are one per key run
    // with a hit, regardless of how many survivors share the run.
    let survivors = alive.count();
    let mut selected = Vec::with_capacity(survivors);
    let mut match_codes = Vec::with_capacity(survivors * nfilters);
    for i in alive.iter_ones() {
        selected.push(i as u32);
        match_codes.extend_from_slice(&match_run[i * nfilters..(i + 1) * nfilters]);
    }
    let run_rows: Vec<Arc<Row>> = run_hits.iter().map(|e| Arc::clone(&e.row)).collect();
    let mut out_bank = BitmapBank::new();
    bank.compact_into(alive, &mut out_bank);
    (
        FilteredPage {
            selected,
            bank: out_bank,
            match_codes,
            run_rows,
            nfilters,
        },
        counters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use workshare_common::Value;

    /// Build a filter over `dim_size` keys where a key is selected by query
    /// `q` iff `key % (q + 2) == 0`.
    fn mk_filter(fact_fk_idx: usize, dim_size: i64, queries: &[usize]) -> Arc<FilterCore> {
        let mut hash = FxHashMap::default();
        let mut referencing = QueryBitmap::zeros(64);
        for &q in queries {
            referencing.set(q);
        }
        for key in 0..dim_size {
            let mut bits = QueryBitmap::zeros(64);
            let mut any = false;
            for &q in queries {
                if key % (q as i64 + 2) == 0 {
                    bits.set(q);
                    any = true;
                }
            }
            if any {
                hash.insert(
                    key,
                    DimEntry {
                        row: Arc::new(vec![Value::Int(key), Value::Int(key * 10)]),
                        bits,
                    },
                );
            }
        }
        Arc::new(FilterCore {
            dim: TableId(0),
            fact_fk_idx,
            dim_pk_idx: 0,
            hash,
            referencing,
        })
    }

    fn mk_rows(n: i64) -> Vec<Row> {
        // Clustered first FK (runs of 4), scattered second FK.
        (0..n)
            .map(|i| vec![Value::Int((i / 4) % 13), Value::Int((i * 7) % 11), Value::Int(i)])
            .collect()
    }

    fn pages_equal(a: &FilteredPage, b: &FilteredPage) {
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.nfilters, b.nfilters);
        for j in 0..a.selected.len() {
            assert_eq!(
                a.bank.to_query_bitmap(j),
                b.bank.to_query_bitmap(j),
                "bitmap of survivor {j}"
            );
            for fi in 0..a.nfilters {
                assert_eq!(
                    a.dim_match(j, fi).map(|r| r.as_slice()),
                    b.dim_match(j, fi).map(|r| r.as_slice()),
                    "match of survivor {j} filter {fi}"
                );
            }
        }
    }

    #[test]
    fn vectorized_matches_scalar_reference() {
        let filters = vec![mk_filter(0, 13, &[0, 1, 2]), mk_filter(1, 11, &[1, 3])];
        let rows = mk_rows(500);
        let mut members = QueryBitmap::zeros(64);
        for q in [0, 1, 2, 3] {
            members.set(q);
        }
        let (sp, sc) = filter_page_scalar(&filters, &rows, &members);
        let mut scratch = FilterScratch::default();
        let (vp, vc) = filter_page_vectorized(&filters, &rows, &members, &mut scratch);
        pages_equal(&sp, &vp);
        assert!(!vp.selected.is_empty(), "test must exercise survivors");
        assert!(vp.selected.len() < rows.len(), "and deaths");
        // The vectorized path probes strictly less: runs ≤ probes.
        assert!(vc.key_runs <= vc.probes);
        assert!(vc.key_runs < sc.key_runs, "clustered FK collapses runs");
    }

    #[test]
    fn non_referencing_query_keeps_every_tuple_alive() {
        let filters = vec![mk_filter(0, 13, &[0, 1, 2]), mk_filter(1, 11, &[1, 3])];
        let rows = mk_rows(200);
        let mut members = QueryBitmap::zeros(64);
        for q in [0, 1, 2, 3, 5] {
            members.set(q); // query 5 references no filter: passes through
        }
        let (sp, _) = filter_page_scalar(&filters, &rows, &members);
        let mut scratch = FilterScratch::default();
        let (vp, _) = filter_page_vectorized(&filters, &rows, &members, &mut scratch);
        pages_equal(&sp, &vp);
        assert_eq!(vp.selected.len(), rows.len(), "bit 5 shields every tuple");
        for j in 0..vp.selected.len() {
            assert!(vp.bank.get(j, 5));
        }
    }

    #[test]
    fn empty_members_kill_everything_without_probing_all_filters() {
        let filters = vec![mk_filter(0, 13, &[0])];
        let rows = mk_rows(50);
        let members = QueryBitmap::zeros(64);
        let mut scratch = FilterScratch::default();
        let (vp, vc) = filter_page_vectorized(&filters, &rows, &members, &mut scratch);
        assert!(vp.selected.is_empty());
        assert_eq!(vc.probes, 0, "dead batch short-circuits");
        let (sp, _) = filter_page_scalar(&filters, &rows, &members);
        assert!(sp.selected.is_empty());
    }

    #[test]
    fn no_filters_pass_batch_through() {
        let rows = mk_rows(20);
        let mut members = QueryBitmap::zeros(64);
        members.set(4);
        let mut scratch = FilterScratch::default();
        let (vp, _) = filter_page_vectorized(&[], &rows, &members, &mut scratch);
        assert_eq!(vp.selected.len(), rows.len());
        assert_eq!(vp.nfilters, 0);
        for j in 0..vp.selected.len() {
            assert_eq!(vp.bank.to_query_bitmap(j), members);
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_across_batches() {
        let filters = vec![mk_filter(0, 13, &[0, 1]), mk_filter(1, 11, &[0])];
        let mut members = QueryBitmap::zeros(64);
        members.set(0);
        members.set(1);
        let mut scratch = FilterScratch::default();
        // Large batch first, then a small one: stale large-batch state must
        // not bleed into the small batch's result.
        let big = mk_rows(400);
        let _ = filter_page_vectorized(&filters, &big, &members, &mut scratch);
        let small = mk_rows(30);
        let (vp, _) = filter_page_vectorized(&filters, &small, &members, &mut scratch);
        let (sp, _) = filter_page_scalar(&filters, &small, &members);
        pages_equal(&sp, &vp);
    }

    #[test]
    fn key_runs_amortize_on_skewed_batches() {
        // Heavy skew: one hot key dominating the page (the Afrati et al.
        // join-product-skew shape) probes the hash only a handful of times.
        let filters = vec![mk_filter(0, 13, &[0])];
        let mut members = QueryBitmap::zeros(64);
        members.set(0);
        let rows: Vec<Row> = (0..1000)
            .map(|i| vec![Value::Int(if i % 100 == 0 { i % 13 } else { 6 }), Value::Int(i)])
            .collect();
        let mut scratch = FilterScratch::default();
        let (_, vc) = filter_page_vectorized(&filters, &rows, &members, &mut scratch);
        assert_eq!(vc.probes, 1000);
        assert!(vc.key_runs <= 21, "got {} runs", vc.key_runs);
    }
}
