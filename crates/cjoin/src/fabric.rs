//! The engine-level **admission fabric**: one worker pool serving the CJOIN
//! admission requests of *every* live fact stage.
//!
//! With the shared path sharded by fact table, per-stage admission workers
//! reintroduce a sharing gap: two stages whose star queries filter the
//! *same* dimension table each scan it independently. The fabric closes it:
//! stages hand their pending snapshots here instead of to a private pool; a
//! worker opens a short batching window, merges every request visible at
//! that instant — across stages — and runs the shared three-phase admission
//! (prepare → scan → activate) with scan units grouped by dimension table
//! **across stages**. A dimension filtered by queries over several fact
//! tables is physically scanned once per window; every stage receives its
//! own staged [`crate::DimEntry`] inserts and activates its own batch.
//!
//! Accounting: physical page reads are attributed to the fabric
//! ([`FabricStats::admission_dim_pages`]) — a page decoded once for several
//! stages belongs to none of them — while each stage's logical counters
//! (`admitted`, `admission_dim_rows`, per-dimension selectivity EWMAs) are
//! maintained exactly as under a per-stage pool, so stage-level reports
//! stay batching-invariant.
//!
//! Stages keep working without a fabric: [`crate::CjoinStage::new`] falls
//! back to the per-stage pool (`CjoinConfig::n_admission_workers`), which
//! remains the oracle-tested baseline and the path of the standalone /
//! paper-figure deployments.

use workshare_common::fxhash::FxHashMap;
// Concurrent-core primitives come through the swappable sync layer so the
// `--cfg interleave` build model-checks this module's protocols (see
// `workshare_common::sync` and docs/TESTING.md).
use workshare_common::sync::{Arc, AtomicBool, AtomicU64, Mutex, Ordering};
use workshare_sim::{Machine, SimCtx, WaitSet};

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::admission::{
    activate_batch, build_units, fail_batch, prepare_batch, run_scan_unit, PreparedBatch,
    ScanUnit,
};
use crate::health::{AdmissionHealth, CjoinFaultPlan};
use crate::stage::{Admission, CjoinStage, StageInner, ADMISSION_BATCH_WINDOW_NS};
use crate::window::{ScanAttempt, ShardedSlot, WindowLedger};

/// Page-range partitions a batching window splits each scan unit into (when
/// the dimension spans that many pages): the admission latency of a merged
/// window is bounded by the slowest partition, keeping the fabric's
/// activation barrier no taller than the per-stage pools it replaces.
const UNIT_SCAN_PARALLELISM: usize = 4;

/// Virtual deadline a supervised window gives its subscans before
/// re-dispatching stragglers. Comfortably above a healthy dimension
/// subscan, comfortably below the default injected stall
/// ([`CjoinFaultPlan::scan_stall_ns`]), so a stalled subscan is overtaken
/// by its replacement instead of gating the window on the stall.
pub const UNIT_REDISPATCH_DEADLINE_NS: f64 = 4_000_000.0;

/// One stage's pending-admission snapshot, queued on the fabric.
pub(crate) struct FabricRequest {
    pub stage: CjoinStage,
    pub pending: Vec<Admission>,
}

/// Shards of the fabric request queue. Submitting preprocessors round-robin
/// over them, so a burst from several stages lands on distinct mutexes
/// instead of serializing on one.
const FABRIC_QUEUE_SHARDS: usize = 4;

/// MPMC request queue: a sharded pending slot ([`ShardedSlot`], its drain
/// protocol model-checked by `tests/interleave_core.rs`) behind a close
/// flag and a wait set — the replacement for the former single-mutex
/// pending list.
struct ShardedQueue<A> {
    slot: ShardedSlot<A>,
    /// Raised by [`ShardedQueue::close`] *before* the shard barrier:
    /// [`ShardedSlot::push_unless`] checks it inside the shard critical
    /// section, so a push either lands before the barrier (drainable) or
    /// observes the flag and bounces.
    closed: AtomicBool,
    /// Parking lot for blocked poppers.
    not_empty: WaitSet,
}

impl<A> ShardedQueue<A> {
    fn new(machine: &Machine, shards: usize) -> ShardedQueue<A> {
        ShardedQueue {
            slot: ShardedSlot::new(shards),
            closed: AtomicBool::new(false),
            not_empty: WaitSet::new(machine),
        }
    }

    /// Enqueue, unless the queue has closed — then the item comes back as
    /// `Err` for the caller to roll back its side effects.
    fn push(&self, item: A) -> Result<(), A> {
        self.slot.push_unless(item, &self.closed)?;
        self.not_empty.notify_all();
        Ok(())
    }

    /// Non-blocking pop (oldest-first within each shard).
    fn try_pop(&self) -> Option<A> {
        self.slot.take_one()
    }

    /// Blocking pop: `None` once the queue is closed **and** drained.
    fn pop(&self) -> Option<A> {
        loop {
            // Load the close flag *before* scanning: finding the shards
            // empty after observing `closed` proves no later push can
            // succeed (pushes check the flag in the shard critical section
            // and `close` barriers every shard after raising it), so the
            // `None` below never strands an item.
            let was_closed = self.closed.load(Ordering::Acquire);
            if let Some(item) = self.slot.take_one() {
                return Some(item);
            }
            if was_closed {
                return None;
            }
            self.not_empty.wait_until(|| {
                self.closed.load(Ordering::Acquire) || !self.slot.is_empty()
            });
        }
    }

    /// Close the queue: raise the flag, then lock/unlock every shard so
    /// every in-flight push has either landed or will bounce, then wake
    /// every blocked popper.
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.slot.barrier();
        self.not_empty.notify_all();
    }
}

/// Lifetime counters of an [`AdmissionFabric`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Batching windows processed.
    pub batches: u64,
    /// Windows that merged pending admissions from more than one stage —
    /// the cross-stage sharing the fabric exists for.
    pub cross_stage_batches: u64,
    /// Stage requests merged into windows (≥ `batches`; the surplus is
    /// requests that queued behind an in-flight window and shared it).
    pub merged_requests: u64,
    /// Physical dimension pages read by fabric scans. Each page is counted
    /// **once per window** no matter how many stages and pending queries
    /// shared it; per-stage `admission_dim_pages` stays 0 under the fabric
    /// (see [`crate::CjoinStats::admission_dim_pages`]).
    pub admission_dim_pages: u64,
}

struct FabricInner {
    queue: ShardedQueue<FabricRequest>,
    /// Queries queued across all stages and not yet activated — the
    /// governor's cross-stage pending signal
    /// (`SharingSignals::cross_stage_pending`) — plus the depth cap
    /// advertised via [`AdmissionFabric::has_capacity`] (`u64::MAX` =
    /// unbounded, the legacy default; the overload-safe service layer
    /// builds the fabric with its queue cap so submissions are shed at the
    /// door instead of queueing without bound). The add-before-visible /
    /// rollback-on-failed-push protocol lives in [`WindowLedger`]
    /// (model-checked by `tests/interleave_core.rs`).
    ledger: WindowLedger,
    // [`FabricStats`] counters. All `Relaxed`: each is a monotone tally
    // incremented on its own and read only by observers (`stats()`, the
    // health monitor's progress probe) that tolerate a momentarily stale
    // value — no decision pairs a read of one counter with a write to
    // another, so no acquire/release edge is needed.
    batches: AtomicU64,
    cross_stage_batches: AtomicU64,
    merged_requests: AtomicU64,
    admission_dim_pages: AtomicU64,
    /// The machine the workers run on, kept so the health monitor can
    /// spawn replacement workers ([`AdmissionFabric::respawn_worker`]).
    machine: Machine,
    /// Seeded fault schedule for the fabric's own sites (worker wedges).
    faults: CjoinFaultPlan,
    /// Shared admission-health state; `Some` turns on window supervision
    /// (subscan deadlines + straggler re-dispatch) and fault accounting.
    health: Option<Arc<AdmissionHealth>>,
    /// Batching windows processed across all workers — the wedge site's
    /// injection tick.
    windows: AtomicU64,
    /// Latch making the injected wedge fire at most once per fabric
    /// lifetime (a respawned replacement worker must not re-wedge).
    wedge_fired: AtomicBool,
    /// Raised by [`AdmissionFabric::shutdown`]; wakes wedged workers so
    /// their carrier threads exit.
    stop: AtomicBool,
    /// Parking lot for wedged workers, notified on shutdown.
    cancel: WaitSet,
}

impl FabricInner {
    /// Whether this worker should wedge now (injected fault, fires once).
    fn wedge_due(&self) -> bool {
        let Some(n) = self.faults.wedge_after_windows else {
            return false;
        };
        if self.windows.load(Ordering::Relaxed) < n {
            return false;
        }
        // `Relaxed` suffices for the latch: the swap is a single RMW, so
        // exactly one worker ever observes `false` (atomicity, not
        // ordering, is what makes the wedge fire once) — and no payload is
        // published through it that a winner would need to acquire.
        !self.wedge_fired.swap(true, Ordering::Relaxed)
    }
}

/// Engine-level cross-stage admission worker pool. Cheap to clone; one per
/// governed engine, shared by every stage the registry builds.
#[derive(Clone)]
pub struct AdmissionFabric {
    inner: Arc<FabricInner>,
}

impl AdmissionFabric {
    /// Create the fabric on `machine` and spawn `n_workers` admission
    /// workers (at least one). A single worker maximizes window merging —
    /// every burst lands in one window — and is the default
    /// (`RunConfig::admission_fabric_workers`); more workers overlap the
    /// scans of *independent* windows at the cost of best-effort merging.
    pub fn new(machine: &Machine, n_workers: usize) -> AdmissionFabric {
        AdmissionFabric::with_capacity(machine, n_workers, u64::MAX)
    }

    /// [`AdmissionFabric::new`] with a depth cap on the pending-query
    /// count: once `capacity` queries are queued across all stages,
    /// [`AdmissionFabric::has_capacity`] turns false and the service layer
    /// sheds further submissions instead of enqueueing them forever.
    pub fn with_capacity(machine: &Machine, n_workers: usize, capacity: u64) -> AdmissionFabric {
        Self::with_recovery(machine, n_workers, capacity, CjoinFaultPlan::default(), None)
    }

    /// Full-plumbing constructor: [`AdmissionFabric::with_capacity`] plus a
    /// seeded fault plan (worker-wedge site) and an optional shared
    /// [`AdmissionHealth`]. With a health handle every window runs under
    /// **supervision**: subscans get a virtual deadline
    /// ([`UNIT_REDISPATCH_DEADLINE_NS`]); a straggler (stalled, panicked,
    /// or wedged-behind) is re-dispatched idempotently through the
    /// [`ScanAttempt`] claim protocol, and typed storage errors fail the
    /// window's batches instead of killing the worker.
    pub fn with_recovery(
        machine: &Machine,
        n_workers: usize,
        capacity: u64,
        faults: CjoinFaultPlan,
        health: Option<Arc<AdmissionHealth>>,
    ) -> AdmissionFabric {
        let fabric = AdmissionFabric {
            inner: Arc::new(FabricInner {
                queue: ShardedQueue::new(machine, FABRIC_QUEUE_SHARDS),
                ledger: WindowLedger::new(capacity),
                batches: AtomicU64::new(0),
                cross_stage_batches: AtomicU64::new(0),
                merged_requests: AtomicU64::new(0),
                admission_dim_pages: AtomicU64::new(0),
                machine: machine.clone(),
                faults,
                health,
                windows: AtomicU64::new(0),
                wedge_fired: AtomicBool::new(false),
                stop: AtomicBool::new(false),
                cancel: WaitSet::new(machine),
            }),
        };
        for w in 0..n_workers.max(1) {
            fabric.spawn_worker(machine, w);
        }
        fabric
    }

    /// Queries queued across all stages and not yet activated: the
    /// governor's cross-stage pending-admission signal.
    pub fn pending_queries(&self) -> u64 {
        self.inner.ledger.pending()
    }

    /// Whether the pending queue is below its depth cap (always true for
    /// an uncapped fabric). Advisory — the race-free hard cap lives in the
    /// engine's admission counter; this sheds on queue *depth* so a stalled
    /// fabric rejects new work before the backlog grows unbounded.
    pub fn has_capacity(&self) -> bool {
        self.inner.ledger.has_capacity()
    }

    /// Lifetime fabric counters.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            batches: self.inner.batches.load(Ordering::Relaxed),
            cross_stage_batches: self.inner.cross_stage_batches.load(Ordering::Relaxed),
            merged_requests: self.inner.merged_requests.load(Ordering::Relaxed),
            admission_dim_pages: self.inner.admission_dim_pages.load(Ordering::Relaxed),
        }
    }

    /// Stop the fabric workers (engine shutdown). Stages outlive their
    /// requests; tearing a stage down with a request in flight is benign
    /// (stage shutdown is cooperative). Wedged workers are woken so their
    /// carrier threads exit.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.queue.close();
        self.inner.cancel.notify_all();
    }

    /// Spawn a replacement admission worker (the health monitor's answer to
    /// an observed wedge). The replacement shares the fabric's wedge latch,
    /// so it never re-fires the injected wedge.
    pub fn respawn_worker(&self) {
        let idx = 1000 + self.inner.windows.load(Ordering::Relaxed) as usize;
        let machine = self.inner.machine.clone();
        self.spawn_worker(&machine, idx);
        if let Some(h) = &self.inner.health {
            h.count_respawn();
        }
    }

    /// Drain every request still queued on the fabric and push each back
    /// onto its owning stage's pending set, waking the stage — the health
    /// monitor calls this on a ladder demotion so work held by a wedged
    /// (dark) fabric re-routes through the pool/serial path instead of
    /// waiting forever. Returns the number of queries requeued.
    pub fn reclaim(&self) -> u64 {
        let mut n = 0u64;
        while let Some(req) = self.inner.queue.try_pop() {
            let count = req.pending.len() as u64;
            self.inner.ledger.sub(count);
            n += count;
            req.stage.inner.pending.extend(req.pending);
            req.stage.inner.wake.notify_all();
        }
        if n > 0 {
            if let Some(h) = &self.inner.health {
                h.count_requeued(n);
            }
        }
        n
    }

    /// Batching windows processed across all workers. A health monitor
    /// watching this against [`AdmissionFabric::pending_queries`] can tell
    /// a busy fabric from a wedged one: pending work with no window
    /// progress means the pool is dark.
    pub fn windows_processed(&self) -> u64 {
        self.inner.windows.load(Ordering::Relaxed)
    }

    /// Queue one stage's pending snapshot. Returns `false` when the fabric
    /// has shut down (the caller's stage is shutting down too).
    pub(crate) fn submit(&self, stage: CjoinStage, pending: Vec<Admission>) -> bool {
        let n = pending.len() as u64;
        // Ledger add *before* the push makes the request visible: the
        // governor's pending signal never undercounts queued work. A push
        // onto a closed queue (fabric shut down) rolls the add back.
        self.inner.ledger.add(n);
        if self.inner.queue.push(FabricRequest { stage, pending }).is_err() {
            self.inner.ledger.sub(n);
            return false;
        }
        true
    }

    fn spawn_worker(&self, machine: &Machine, idx: usize) {
        let inner = Arc::clone(&self.inner);
        machine
            .clone()
            .spawn(&format!("admission-fabric-{idx}"), move |ctx| {
                loop {
                    // Injected wedge site: checked *before* popping, so a
                    // wedging worker never takes a request down with it —
                    // everything it would have served stays on the queue,
                    // reclaimable by the health monitor.
                    if inner.wedge_due() {
                        if let Some(h) = &inner.health {
                            h.count_wedge();
                        }
                        inner
                            .cancel
                            .wait_until(|| inner.stop.load(Ordering::Acquire));
                        return;
                    }
                    let Some(req) = inner.queue.pop() else { return };
                    // Short virtual batching window, then merge every
                    // request visible at that instant — from any stage —
                    // plus submissions still sitting in the involved
                    // stages' pending sets. A burst submitted without
                    // intervening virtual time lands in one window
                    // deterministically, maximizing cross-stage scan
                    // sharing; the window is negligible against the fixed
                    // admission charge.
                    ctx.sleep(ADMISSION_BATCH_WINDOW_NS);
                    let mut reqs = vec![req];
                    while let Some(more) = inner.queue.try_pop() {
                        reqs.push(more);
                    }
                    let counted: u64 =
                        reqs.iter().map(|r| r.pending.len() as u64).sum();
                    process_window(&inner, ctx, reqs, idx);
                    inner.ledger.sub(counted);
                    inner.windows.fetch_add(1, Ordering::Relaxed);
                }
            });
    }
}

/// Run one merged batching window: per-stage prepare, cross-stage scan
/// units (each distinct dimension table scanned once for every stage, the
/// units themselves scanned **in parallel** — merging stages must not
/// serialize scans the per-stage pools would have overlapped), per-stage
/// activation.
fn process_window(
    fabric: &Arc<FabricInner>,
    ctx: &SimCtx,
    reqs: Vec<FabricRequest>,
    worker_idx: usize,
) {
    fabric
        .merged_requests
        .fetch_add(reqs.len() as u64, Ordering::Relaxed);
    // Merge requests per stage, preserving first-seen order (deterministic
    // unit construction), then drain submissions still sitting in each
    // stage's pending set — the same last-moment merge the per-stage
    // workers perform.
    let mut stages: Vec<CjoinStage> = Vec::new();
    let mut pendings: Vec<Vec<Admission>> = Vec::new();
    let mut idx_of: FxHashMap<usize, usize> = FxHashMap::default();
    for req in reqs {
        let key = Arc::as_ptr(&req.stage.inner) as usize;
        let si = *idx_of.entry(key).or_insert_with(|| {
            stages.push(req.stage.clone());
            pendings.push(Vec::new());
            stages.len() - 1
        });
        pendings[si].extend(req.pending);
    }
    for (si, stage) in stages.iter().enumerate() {
        pendings[si].extend(stage.inner.pending.drain());
    }
    let (stages, pendings): (Vec<CjoinStage>, Vec<Vec<Admission>>) = stages
        .into_iter()
        .zip(pendings)
        .filter(|(_, p)| !p.is_empty())
        .unzip();
    if stages.is_empty() {
        return;
    }
    let prepared: Vec<PreparedBatch> = stages
        .iter()
        .zip(pendings)
        .map(|(stage, pending)| prepare_batch(&stage.inner, ctx, pending))
        .collect();
    let units = build_units(&prepared);
    // Scan units are independent — a filter core belongs to exactly one
    // `(dim, pk)` unit — and a unit's page subranges stage disjoint filter
    // entries (dimension primary keys are unique), so the window fans the
    // scans out as (unit × page-range) subscans on parallel vthreads: the
    // window's wall time is the slowest partition, not the sum — merging
    // stages must not serialize scans the per-stage pools would have
    // overlapped. Activation waits for every subscan: a query's filters
    // span dimensions.
    let storage = &stages[0].inner.storage;
    let tasks: Vec<(Arc<ScanUnit>, (usize, usize))> = units
        .into_iter()
        .flat_map(|unit| {
            let npages = storage.page_count(unit.dim);
            let chunks = npages.clamp(1, UNIT_SCAN_PARALLELISM);
            let per = npages.max(1).div_ceil(chunks);
            let unit = Arc::new(unit);
            (0..chunks)
                .map(|c| (Arc::clone(&unit), (c * per, ((c + 1) * per).min(npages))))
                .filter(|(_, (lo, hi))| lo < hi)
                .collect::<Vec<_>>()
        })
        .collect();
    let scan_result: Result<(), String> = if let Some(health) = fabric.health.clone() {
        supervise_subscans(fabric, &stages, tasks, worker_idx, &health)
    } else if tasks.len() == 1 {
        let inners: Vec<&StageInner> = stages.iter().map(|s| &*s.inner).collect();
        run_scan_unit(
            ctx,
            &inners,
            &tasks[0].0,
            Some(&fabric.admission_dim_pages),
            Some(tasks[0].1),
            None,
            true,
        )
        .map_err(|e| e.to_string())
    } else {
        let machine = stages[0].inner.machine.clone();
        let handles: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(ti, (unit, range))| {
                let stages = stages.clone();
                let fabric = Arc::clone(fabric);
                machine.spawn(
                    &format!("admission-fabric-{worker_idx}-scan-{ti}"),
                    move |ctx| {
                        let inners: Vec<&StageInner> =
                            stages.iter().map(|s| &*s.inner).collect();
                        run_scan_unit(
                            ctx,
                            &inners,
                            &unit,
                            Some(&fabric.admission_dim_pages),
                            Some(range),
                            None,
                            true,
                        )
                    },
                )
            })
            .collect();
        let mut failure = None;
        for h in handles {
            if let Err(e) = h.join().expect("fabric scan subunit panicked") {
                failure.get_or_insert(e.to_string());
            }
        }
        match failure {
            None => Ok(()),
            Some(msg) => Err(msg),
        }
    };
    match scan_result {
        Ok(()) => {
            for (stage, prep) in stages.iter().zip(prepared) {
                activate_batch(&stage.inner, prep);
                // The stage's preprocessor may be parked waiting for an
                // active query; the batch just activated.
                stage.inner.wake.notify_all();
            }
        }
        Err(msg) => {
            // A typed, unrecoverable scan failure fails every batch in the
            // window with per-query errors — the window never activates
            // partially-seeded filters, and no submitter hangs.
            for (stage, prep) in stages.iter().zip(prepared) {
                fail_batch(&stage.inner, prep, &msg);
                stage.inner.wake.notify_all();
            }
        }
    }
    fabric.batches.fetch_add(1, Ordering::Relaxed);
    if stages.len() > 1 {
        fabric.cross_stage_batches.fetch_add(1, Ordering::Relaxed);
    }
}

/// One supervised subscan task: the shared claim/done handle, the fatal
/// (typed storage) error slot, and the recoverable-death flag an injected
/// panic sets.
struct SubscanTask {
    unit: Arc<ScanUnit>,
    range: (usize, usize),
    attempt: Arc<ScanAttempt>,
    err: Arc<Mutex<Option<String>>>,
    died: Arc<AtomicBool>,
    /// Attempts spawned and not yet returned. The supervisor only
    /// activates or fails the window once every task is **quiescent**
    /// (`live == 0`): a late attempt left running could otherwise publish
    /// its staged entries after a failed window's slots were rolled back.
    live: Arc<AtomicU64>,
}

impl SubscanTask {
    /// Whether this task needs no further supervision: some attempt
    /// published (claim + done) or a fatal error was recorded.
    fn settled(&self) -> bool {
        self.attempt.is_done() || self.err.lock().is_some()
    }

    /// Whether every spawned attempt has returned.
    fn quiescent(&self) -> bool {
        self.live.load(Ordering::Acquire) == 0
    }
}

/// Run a window's subscans under deadline supervision: spawn one attempt
/// per task, and when a task is still unsettled at the re-dispatch deadline
/// — or its attempt died to an injected panic — spawn a second,
/// injection-suppressed attempt over the same unit. The [`ScanAttempt`]
/// claim makes the pair publish exactly once; typed storage errors settle
/// the task fatally and fail the window. Every path terminates: a healthy
/// attempt publishes, a stalled one loses the claim and exits, a re-dispatch
/// (no injection) either publishes or surfaces a storage error.
fn supervise_subscans(
    fabric: &Arc<FabricInner>,
    stages: &[CjoinStage],
    tasks: Vec<(Arc<ScanUnit>, (usize, usize))>,
    worker_idx: usize,
    health: &Arc<AdmissionHealth>,
) -> Result<(), String> {
    let machine = stages[0].inner.machine.clone();
    let ws = Arc::new(WaitSet::new(&machine));
    let tasks: Vec<SubscanTask> = tasks
        .into_iter()
        .map(|(unit, range)| SubscanTask {
            unit,
            range,
            attempt: Arc::new(ScanAttempt::new()),
            err: Arc::new(Mutex::new(None)),
            died: Arc::new(AtomicBool::new(false)),
            live: Arc::new(AtomicU64::new(0)),
        })
        .collect();
    let spawn_attempt = |task: &SubscanTask, ti: usize, attempt_no: u32, inject: bool| {
        let stages = stages.to_vec();
        let fabric = Arc::clone(fabric);
        let unit = Arc::clone(&task.unit);
        let range = task.range;
        let attempt = Arc::clone(&task.attempt);
        let err = Arc::clone(&task.err);
        let died = Arc::clone(&task.died);
        let live = Arc::clone(&task.live);
        let ws = Arc::clone(&ws);
        live.fetch_add(1, Ordering::AcqRel);
        machine.spawn(
            &format!("admission-fabric-{worker_idx}-scan-{ti}-a{attempt_no}"),
            move |ctx| {
                let inners: Vec<&StageInner> = stages.iter().map(|s| &*s.inner).collect();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_scan_unit(
                        ctx,
                        &inners,
                        &unit,
                        Some(&fabric.admission_dim_pages),
                        Some(range),
                        Some(&attempt),
                        inject,
                    )
                }));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        let mut slot = err.lock();
                        if slot.is_none() {
                            *slot = Some(e.to_string());
                        }
                    }
                    Err(_) => {
                        // An injected panic is recoverable — flag the death
                        // and let the supervisor re-dispatch. A panic on a
                        // re-dispatched (injection-free) attempt is a
                        // genuine bug: settle fatally so nothing hangs.
                        if inject {
                            died.store(true, Ordering::Release);
                        } else {
                            let mut slot = err.lock();
                            if slot.is_none() {
                                *slot = Some("fabric subscan panicked".to_string());
                            }
                        }
                    }
                }
                live.fetch_sub(1, Ordering::AcqRel);
                ws.notify_all();
            },
        );
    };
    for (ti, task) in tasks.iter().enumerate() {
        spawn_attempt(task, ti, 1, true);
    }
    // Deadline timer: WaitSet has no timed wait, so a watchdog vthread
    // sleeps the deadline away and wakes the supervisor.
    let timeout = Arc::new(AtomicBool::new(false));
    {
        let timeout = Arc::clone(&timeout);
        let ws = Arc::clone(&ws);
        machine.spawn(
            &format!("admission-fabric-{worker_idx}-watchdog"),
            move |ctx| {
                ctx.sleep(UNIT_REDISPATCH_DEADLINE_NS);
                timeout.store(true, Ordering::Release);
                ws.notify_all();
            },
        );
    }
    let mut redispatched = vec![false; tasks.len()];
    loop {
        {
            let redispatched = &redispatched;
            ws.wait_until(|| {
                tasks.iter().all(SubscanTask::settled)
                    || tasks.iter().enumerate().any(|(i, t)| {
                        !redispatched[i]
                            && !t.settled()
                            && (t.died.load(Ordering::Acquire)
                                || timeout.load(Ordering::Acquire))
                    })
            });
        }
        if tasks.iter().all(SubscanTask::settled) {
            break;
        }
        for (ti, task) in tasks.iter().enumerate() {
            if !redispatched[ti]
                && !task.settled()
                && (task.died.load(Ordering::Acquire) || timeout.load(Ordering::Acquire))
            {
                redispatched[ti] = true;
                health.count_redispatch();
                spawn_attempt(task, ti, 2, false);
            }
        }
    }
    let failure = tasks
        .iter()
        .find(|t| !t.attempt.is_done())
        .and_then(|t| t.err.lock().clone());
    match failure {
        None => Ok(()),
        Some(msg) => {
            // Quiesce before failing: the window's slots are about to be
            // rolled back, so wait out any still-running attempt — it must
            // not publish staged entries into a failed (and soon reused)
            // slot. Success needs no such barrier: a late loser cannot
            // publish, having lost the claim.
            ws.wait_until(|| tasks.iter().all(SubscanTask::quiescent));
            Err(msg)
        }
    }
}
