//! The engine-level **admission fabric**: one worker pool serving the CJOIN
//! admission requests of *every* live fact stage.
//!
//! With the shared path sharded by fact table, per-stage admission workers
//! reintroduce a sharing gap: two stages whose star queries filter the
//! *same* dimension table each scan it independently. The fabric closes it:
//! stages hand their pending snapshots here instead of to a private pool; a
//! worker opens a short batching window, merges every request visible at
//! that instant — across stages — and runs the shared three-phase admission
//! (prepare → scan → activate) with scan units grouped by dimension table
//! **across stages**. A dimension filtered by queries over several fact
//! tables is physically scanned once per window; every stage receives its
//! own staged [`crate::DimEntry`] inserts and activates its own batch.
//!
//! Accounting: physical page reads are attributed to the fabric
//! ([`FabricStats::admission_dim_pages`]) — a page decoded once for several
//! stages belongs to none of them — while each stage's logical counters
//! (`admitted`, `admission_dim_rows`, per-dimension selectivity EWMAs) are
//! maintained exactly as under a per-stage pool, so stage-level reports
//! stay batching-invariant.
//!
//! Stages keep working without a fabric: [`crate::CjoinStage::new`] falls
//! back to the per-stage pool (`CjoinConfig::n_admission_workers`), which
//! remains the oracle-tested baseline and the path of the standalone /
//! paper-figure deployments.

use workshare_common::fxhash::FxHashMap;
// Concurrent-core primitives come through the swappable sync layer so the
// `--cfg interleave` build model-checks this module's protocols (see
// `workshare_common::sync` and docs/TESTING.md).
use workshare_common::sync::{Arc, AtomicU64, Ordering};
use workshare_sim::{Machine, SimCtx, SimQueue};

use crate::admission::{
    activate_batch, build_units, prepare_batch, run_scan_unit, PreparedBatch, ScanUnit,
};
use crate::stage::{Admission, CjoinStage, StageInner, ADMISSION_BATCH_WINDOW_NS};
use crate::window::WindowLedger;

/// Page-range partitions a batching window splits each scan unit into (when
/// the dimension spans that many pages): the admission latency of a merged
/// window is bounded by the slowest partition, keeping the fabric's
/// activation barrier no taller than the per-stage pools it replaces.
const UNIT_SCAN_PARALLELISM: usize = 4;

/// One stage's pending-admission snapshot, queued on the fabric.
pub(crate) struct FabricRequest {
    pub stage: CjoinStage,
    pub pending: Vec<Admission>,
}

/// Lifetime counters of an [`AdmissionFabric`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Batching windows processed.
    pub batches: u64,
    /// Windows that merged pending admissions from more than one stage —
    /// the cross-stage sharing the fabric exists for.
    pub cross_stage_batches: u64,
    /// Stage requests merged into windows (≥ `batches`; the surplus is
    /// requests that queued behind an in-flight window and shared it).
    pub merged_requests: u64,
    /// Physical dimension pages read by fabric scans. Each page is counted
    /// **once per window** no matter how many stages and pending queries
    /// shared it; per-stage `admission_dim_pages` stays 0 under the fabric
    /// (see [`crate::CjoinStats::admission_dim_pages`]).
    pub admission_dim_pages: u64,
}

struct FabricInner {
    queue: SimQueue<FabricRequest>,
    /// Queries queued across all stages and not yet activated — the
    /// governor's cross-stage pending signal
    /// (`SharingSignals::cross_stage_pending`) — plus the depth cap
    /// advertised via [`AdmissionFabric::has_capacity`] (`u64::MAX` =
    /// unbounded, the legacy default; the overload-safe service layer
    /// builds the fabric with its queue cap so submissions are shed at the
    /// door instead of queueing without bound). The add-before-visible /
    /// rollback-on-failed-push protocol lives in [`WindowLedger`]
    /// (model-checked by `tests/interleave_core.rs`).
    ledger: WindowLedger,
    batches: AtomicU64,
    cross_stage_batches: AtomicU64,
    merged_requests: AtomicU64,
    admission_dim_pages: AtomicU64,
}

/// Engine-level cross-stage admission worker pool. Cheap to clone; one per
/// governed engine, shared by every stage the registry builds.
#[derive(Clone)]
pub struct AdmissionFabric {
    inner: Arc<FabricInner>,
}

impl AdmissionFabric {
    /// Create the fabric on `machine` and spawn `n_workers` admission
    /// workers (at least one). A single worker maximizes window merging —
    /// every burst lands in one window — and is the default
    /// (`RunConfig::admission_fabric_workers`); more workers overlap the
    /// scans of *independent* windows at the cost of best-effort merging.
    pub fn new(machine: &Machine, n_workers: usize) -> AdmissionFabric {
        AdmissionFabric::with_capacity(machine, n_workers, u64::MAX)
    }

    /// [`AdmissionFabric::new`] with a depth cap on the pending-query
    /// count: once `capacity` queries are queued across all stages,
    /// [`AdmissionFabric::has_capacity`] turns false and the service layer
    /// sheds further submissions instead of enqueueing them forever.
    pub fn with_capacity(machine: &Machine, n_workers: usize, capacity: u64) -> AdmissionFabric {
        let fabric = AdmissionFabric {
            inner: Arc::new(FabricInner {
                queue: SimQueue::unbounded(machine),
                ledger: WindowLedger::new(capacity),
                batches: AtomicU64::new(0),
                cross_stage_batches: AtomicU64::new(0),
                merged_requests: AtomicU64::new(0),
                admission_dim_pages: AtomicU64::new(0),
            }),
        };
        for w in 0..n_workers.max(1) {
            fabric.spawn_worker(machine, w);
        }
        fabric
    }

    /// Queries queued across all stages and not yet activated: the
    /// governor's cross-stage pending-admission signal.
    pub fn pending_queries(&self) -> u64 {
        self.inner.ledger.pending()
    }

    /// Whether the pending queue is below its depth cap (always true for
    /// an uncapped fabric). Advisory — the race-free hard cap lives in the
    /// engine's admission counter; this sheds on queue *depth* so a stalled
    /// fabric rejects new work before the backlog grows unbounded.
    pub fn has_capacity(&self) -> bool {
        self.inner.ledger.has_capacity()
    }

    /// Lifetime fabric counters.
    pub fn stats(&self) -> FabricStats {
        FabricStats {
            batches: self.inner.batches.load(Ordering::Relaxed),
            cross_stage_batches: self.inner.cross_stage_batches.load(Ordering::Relaxed),
            merged_requests: self.inner.merged_requests.load(Ordering::Relaxed),
            admission_dim_pages: self.inner.admission_dim_pages.load(Ordering::Relaxed),
        }
    }

    /// Stop the fabric workers (engine shutdown). Stages outlive their
    /// requests; tearing a stage down with a request in flight is benign
    /// (stage shutdown is cooperative).
    pub fn shutdown(&self) {
        self.inner.queue.close();
    }

    /// Queue one stage's pending snapshot. Returns `false` when the fabric
    /// has shut down (the caller's stage is shutting down too).
    pub(crate) fn submit(&self, stage: CjoinStage, pending: Vec<Admission>) -> bool {
        let n = pending.len() as u64;
        // Ledger add *before* the push makes the request visible: the
        // governor's pending signal never undercounts queued work. A push
        // onto a closed queue (fabric shut down) rolls the add back.
        self.inner.ledger.add(n);
        if self.inner.queue.push(FabricRequest { stage, pending }).is_err() {
            self.inner.ledger.sub(n);
            return false;
        }
        true
    }

    fn spawn_worker(&self, machine: &Machine, idx: usize) {
        let inner = Arc::clone(&self.inner);
        machine
            .clone()
            .spawn(&format!("admission-fabric-{idx}"), move |ctx| {
                while let Some(req) = inner.queue.pop() {
                    // Short virtual batching window, then merge every
                    // request visible at that instant — from any stage —
                    // plus submissions still sitting in the involved
                    // stages' pending sets. A burst submitted without
                    // intervening virtual time lands in one window
                    // deterministically, maximizing cross-stage scan
                    // sharing; the window is negligible against the fixed
                    // admission charge.
                    ctx.sleep(ADMISSION_BATCH_WINDOW_NS);
                    let mut reqs = vec![req];
                    while let Some(more) = inner.queue.try_pop() {
                        reqs.push(more);
                    }
                    let counted: u64 =
                        reqs.iter().map(|r| r.pending.len() as u64).sum();
                    process_window(&inner, ctx, reqs, idx);
                    inner.ledger.sub(counted);
                }
            });
    }
}

/// Run one merged batching window: per-stage prepare, cross-stage scan
/// units (each distinct dimension table scanned once for every stage, the
/// units themselves scanned **in parallel** — merging stages must not
/// serialize scans the per-stage pools would have overlapped), per-stage
/// activation.
fn process_window(
    fabric: &Arc<FabricInner>,
    ctx: &SimCtx,
    reqs: Vec<FabricRequest>,
    worker_idx: usize,
) {
    fabric
        .merged_requests
        .fetch_add(reqs.len() as u64, Ordering::Relaxed);
    // Merge requests per stage, preserving first-seen order (deterministic
    // unit construction), then drain submissions still sitting in each
    // stage's pending set — the same last-moment merge the per-stage
    // workers perform.
    let mut stages: Vec<CjoinStage> = Vec::new();
    let mut pendings: Vec<Vec<Admission>> = Vec::new();
    let mut idx_of: FxHashMap<usize, usize> = FxHashMap::default();
    for req in reqs {
        let key = Arc::as_ptr(&req.stage.inner) as usize;
        let si = *idx_of.entry(key).or_insert_with(|| {
            stages.push(req.stage.clone());
            pendings.push(Vec::new());
            stages.len() - 1
        });
        pendings[si].extend(req.pending);
    }
    for (si, stage) in stages.iter().enumerate() {
        pendings[si].extend(stage.inner.pending.drain());
    }
    let (stages, pendings): (Vec<CjoinStage>, Vec<Vec<Admission>>) = stages
        .into_iter()
        .zip(pendings)
        .filter(|(_, p)| !p.is_empty())
        .unzip();
    if stages.is_empty() {
        return;
    }
    let prepared: Vec<PreparedBatch> = stages
        .iter()
        .zip(pendings)
        .map(|(stage, pending)| prepare_batch(&stage.inner, ctx, pending))
        .collect();
    let units = build_units(&prepared);
    // Scan units are independent — a filter core belongs to exactly one
    // `(dim, pk)` unit — and a unit's page subranges stage disjoint filter
    // entries (dimension primary keys are unique), so the window fans the
    // scans out as (unit × page-range) subscans on parallel vthreads: the
    // window's wall time is the slowest partition, not the sum — merging
    // stages must not serialize scans the per-stage pools would have
    // overlapped. Activation waits for every subscan: a query's filters
    // span dimensions.
    let storage = &stages[0].inner.storage;
    let tasks: Vec<(Arc<ScanUnit>, (usize, usize))> = units
        .into_iter()
        .flat_map(|unit| {
            let npages = storage.page_count(unit.dim);
            let chunks = npages.clamp(1, UNIT_SCAN_PARALLELISM);
            let per = npages.max(1).div_ceil(chunks);
            let unit = Arc::new(unit);
            (0..chunks)
                .map(|c| (Arc::clone(&unit), (c * per, ((c + 1) * per).min(npages))))
                .filter(|(_, (lo, hi))| lo < hi)
                .collect::<Vec<_>>()
        })
        .collect();
    if tasks.len() == 1 {
        let inners: Vec<&StageInner> = stages.iter().map(|s| &*s.inner).collect();
        run_scan_unit(
            ctx,
            &inners,
            &tasks[0].0,
            Some(&fabric.admission_dim_pages),
            Some(tasks[0].1),
        );
    } else {
        let machine = stages[0].inner.machine.clone();
        let handles: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(ti, (unit, range))| {
                let stages = stages.clone();
                let fabric = Arc::clone(fabric);
                machine.spawn(
                    &format!("admission-fabric-{worker_idx}-scan-{ti}"),
                    move |ctx| {
                        let inners: Vec<&StageInner> =
                            stages.iter().map(|s| &*s.inner).collect();
                        run_scan_unit(
                            ctx,
                            &inners,
                            &unit,
                            Some(&fabric.admission_dim_pages),
                            Some(range),
                        );
                    },
                )
            })
            .collect();
        for h in handles {
            h.join().expect("fabric scan subunit panicked");
        }
    }
    for (stage, prep) in stages.iter().zip(prepared) {
        activate_batch(&stage.inner, prep);
        // The stage's preprocessor may be parked waiting for an active
        // query; the batch just activated.
        stage.inner.wake.notify_all();
    }
    fabric.batches.fetch_add(1, Ordering::Relaxed);
    if stages.len() > 1 {
        fabric.cross_stage_batches.fetch_add(1, Ordering::Relaxed);
    }
}
