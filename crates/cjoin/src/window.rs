//! Pending-admission window plumbing: the pending-set drain used by the
//! stage admission workers and the fabric's merged batching windows
//! ([`crate::fabric`]), plus the fabric's pending-depth ledger — extracted
//! so the deterministic interleaving checker (`tests/interleave_core.rs`)
//! can race a window merge against concurrent submissions exhaustively.
//!
//! Protocol invariants, checked by the model:
//!
//! * Draining a pending set is one atomic take under a single lock
//!   acquisition: every submission either rides the window that drained it
//!   or stays pending for the next — none is lost, none runs twice. (A
//!   clone-then-clear drain in two lock acquisitions loses submissions that
//!   land between the two; that is the `WindowMutation::TornDrain`
//!   mutation.)
//! * The depth ledger's add happens *before* the request is visible to a
//!   window, and the failed-submit rollback restores it exactly, so the
//!   governor's cross-stage pending signal never undercounts work a window
//!   is about to absorb.
//!
//! Built on [`workshare_common::sync`], so an `--cfg interleave` build swaps
//! the primitives for the model-checked shim.

use workshare_common::sync::{AtomicBool, AtomicU64, Mutex, Ordering};

/// Test-only protocol mutations, compiled only under `--cfg interleave`.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Drain with clone-then-clear in two lock acquisitions instead of one
    /// atomic take: a submission that lands between the clone and the clear
    /// is silently dropped.
    TornDrain,
}

/// A stage's pending-admission set: submissions accumulate here until an
/// admission worker (per-stage pool or fabric window) drains them as one
/// batch. All methods take `&self`; share it behind the stage's `Arc`.
pub struct PendingSlot<A> {
    items: Mutex<Vec<A>>,
    #[cfg(interleave)]
    mutation: WindowMutation,
}

impl<A> PendingSlot<A> {
    /// Empty pending set.
    pub fn new() -> Self {
        PendingSlot {
            items: Mutex::new(Vec::new()),
            #[cfg(interleave)]
            mutation: WindowMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`WindowMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(mutation: WindowMutation) -> Self {
        PendingSlot {
            items: Mutex::new(Vec::new()),
            mutation,
        }
    }

    /// Queue one submission for the next window.
    pub fn push(&self, item: A) {
        self.items.lock().push(item);
    }

    /// Queue a batch of submissions for the next window.
    pub fn extend(&self, items: impl IntoIterator<Item = A>) {
        self.items.lock().extend(items);
    }

    /// Atomically take everything pending: the window drain. One lock
    /// acquisition — see the module invariants.
    pub fn drain(&self) -> Vec<A> {
        #[cfg(interleave)]
        if self.mutation == WindowMutation::TornDrain {
            // Torn: the lock is released between sizing the batch and
            // taking it, so a submission landing in the gap is dropped.
            let snapshot = self.items.lock().len();
            let mut items = self.items.lock();
            return items.drain(..).take(snapshot).collect();
        }
        std::mem::take(&mut *self.items.lock())
    }

    /// Submissions currently pending.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.items.lock().is_empty()
    }
}

impl<A> Default for PendingSlot<A> {
    fn default() -> Self {
        Self::new()
    }
}

/// Test-only mutations of the sharded pending protocol, compiled only
/// under `--cfg interleave`.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Drain each shard with a size-then-take in two lock acquisitions
    /// instead of one atomic take per shard: a submission landing in the
    /// gap is silently dropped — the sharded relapse of
    /// [`WindowMutation::TornDrain`].
    TornDrain,
}

/// An MPMC **sharded** pending set: submissions spread over `n` independent
/// lock shards by an atomic ticket, so concurrent producers (stage
/// preprocessors, fabric submitters, re-queued reclaims) no longer
/// serialize on one mutex the way [`PendingSlot`] does. Used for the
/// stages' pending-admission sets and as the storage of the fabric's
/// request queue ([`crate::fabric`]).
///
/// Protocol invariants, checked by the model:
///
/// * **Per-shard drains are atomic takes.** The drain visits every shard
///   once and takes each shard's contents in one lock acquisition:
///   cross-shard ordering is free (windows merge whatever they drain), but
///   within a shard every submission either rides the draining window or
///   stays for the next — none is lost, none runs twice
///   (the interleave-only `ShardMutation::TornDrain` re-introduces the
///   torn variant).
/// * **Gated pushes linearize against [`ShardedSlot::barrier`].** A
///   [`ShardedSlot::push_unless`] checks its gate flag *inside* the shard
///   critical section; a closer that raises the flag and then takes every
///   shard lock once ([`ShardedSlot::barrier`]) therefore observes every
///   push that was accepted before the flag — the closed-queue handshake
///   of the fabric's request queue, replacing `SimQueue`'s single-mutex
///   close.
pub struct ShardedSlot<A> {
    shards: Box<[Mutex<Vec<A>>]>,
    /// Round-robin ticket spreading producers over shards; `Relaxed` — it
    /// only picks a shard, the shard lock orders the items.
    tickets: AtomicU64,
    #[cfg(interleave)]
    mutation: ShardMutation,
}

impl<A> ShardedSlot<A> {
    /// Empty sharded pending set with `n_shards` lock shards (min 1).
    pub fn new(n_shards: usize) -> Self {
        ShardedSlot {
            shards: (0..n_shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            tickets: AtomicU64::new(0),
            #[cfg(interleave)]
            mutation: ShardMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`ShardMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(n_shards: usize, mutation: ShardMutation) -> Self {
        ShardedSlot {
            shards: (0..n_shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            tickets: AtomicU64::new(0),
            mutation,
        }
    }

    fn next_shard(&self) -> usize {
        (self.tickets.fetch_add(1, Ordering::Relaxed) % self.shards.len() as u64) as usize
    }

    /// Queue one submission for the next window.
    pub fn push(&self, item: A) {
        self.shards[self.next_shard()].lock().push(item);
    }

    /// Queue a batch of submissions. One ticket — the batch lands on one
    /// shard, so a single drain takes it whole.
    pub fn extend(&self, items: impl IntoIterator<Item = A>) {
        self.shards[self.next_shard()].lock().extend(items);
    }

    /// Queue one submission unless `closed` reads true inside the shard
    /// critical section; returns the item back on a closed queue. Pair
    /// with [`ShardedSlot::barrier`] on the closing side — see the module
    /// invariants.
    pub fn push_unless(&self, item: A, closed: &AtomicBool) -> Result<(), A> {
        let mut shard = self.shards[self.next_shard()].lock();
        if closed.load(Ordering::Acquire) {
            return Err(item);
        }
        shard.push(item);
        Ok(())
    }

    /// Acquire and release every shard lock once. After this returns, any
    /// [`ShardedSlot::push_unless`] that read its gate flag before the
    /// caller raised it has fully landed and is visible to a drain.
    pub fn barrier(&self) {
        for shard in self.shards.iter() {
            drop(shard.lock());
        }
    }

    /// Take everything pending: one atomic take per shard, in shard order.
    pub fn drain(&self) -> Vec<A> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            #[cfg(interleave)]
            if self.mutation == ShardMutation::TornDrain {
                // Torn: the shard lock is released between sizing and
                // taking, so a submission landing in the gap is dropped.
                let snapshot = shard.lock().len();
                let mut items = shard.lock();
                out.extend(items.drain(..).take(snapshot));
                continue;
            }
            out.append(&mut shard.lock());
        }
        out
    }

    /// Dequeue one submission (FIFO within its shard), scanning shards in
    /// order. `None` when every shard is empty.
    pub fn take_one(&self) -> Option<A> {
        for shard in self.shards.iter() {
            let mut items = shard.lock();
            if !items.is_empty() {
                return Some(items.remove(0));
            }
        }
        None
    }

    /// Submissions currently pending (sum over shards; advisory under
    /// concurrent pushes).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether nothing is pending (advisory under concurrent pushes).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }
}

/// The fabric's pending-depth ledger: queries queued across all stages and
/// not yet activated, with the depth cap behind
/// [`crate::AdmissionFabric::has_capacity`].
pub struct WindowLedger {
    pending: AtomicU64,
    capacity: u64,
}

impl WindowLedger {
    /// Ledger with a depth cap (`u64::MAX` = unbounded).
    pub fn new(capacity: u64) -> Self {
        WindowLedger {
            pending: AtomicU64::new(0),
            capacity,
        }
    }

    /// Record `n` queries entering the pending queue. Call *before* making
    /// the request visible to a window, so the signal never undercounts.
    pub fn add(&self, n: u64) {
        self.pending.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` queries leaving (activated by a window, or rolled back by
    /// a failed submit).
    pub fn sub(&self, n: u64) {
        self.pending.fetch_sub(n, Ordering::Relaxed);
    }

    /// Queries currently pending — advisory (governor signal, reports).
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Whether the pending depth is below the cap (always true when
    /// unbounded). Advisory shed signal; the race-free hard cap is the
    /// engine's admission counter.
    pub fn has_capacity(&self) -> bool {
        self.pending.load(Ordering::Relaxed) < self.capacity
    }
}

/// Test-only mutations of the re-dispatch claim protocol, compiled only
/// under `--cfg interleave`.
#[cfg(interleave)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedispatchMutation {
    /// The faithful protocol.
    #[default]
    None,
    /// Claim with a load-then-store instead of one CAS: two attempts can
    /// both observe `claimed == false` and both publish — the
    /// duplicate-dispatch race.
    TornClaim,
}

/// The fabric's straggler re-dispatch handshake for one scan-unit task.
///
/// When a subscan outlives its deadline (stalled, wedged, or dead), the
/// window supervisor spawns a second attempt over the same unit. Both
/// attempts race to **claim** the task before publishing their staged
/// entries; the single-CAS claim guarantees exactly one publisher, so
/// neither the filter entries nor the admission counters are applied twice
/// (duplicate-dispatch), and the supervisor's wait on `done` guarantees the
/// unit is never silently dropped (lost-unit). Protocol invariants, checked
/// by `tests/interleave_core.rs`:
///
/// * `try_claim` succeeds exactly once across all attempts: one atomic
///   compare-exchange, not a load-then-store (that is the
///   `RedispatchMutation::TornClaim` mutation, compiled only under
///   `--cfg interleave`).
/// * `mark_done` is a `Release` store after the publish, paired with the
///   supervisor's `Acquire` load in [`ScanAttempt::is_done`], so when the
///   supervisor observes completion the published entries are visible.
pub struct ScanAttempt {
    claimed: AtomicBool,
    done: AtomicBool,
    #[cfg(interleave)]
    mutation: RedispatchMutation,
}

impl ScanAttempt {
    /// Fresh unclaimed task.
    pub fn new() -> ScanAttempt {
        ScanAttempt {
            claimed: AtomicBool::new(false),
            done: AtomicBool::new(false),
            #[cfg(interleave)]
            mutation: RedispatchMutation::None,
        }
    }

    /// Test-only constructor selecting a deliberately broken protocol
    /// variant (see [`RedispatchMutation`]).
    #[cfg(interleave)]
    pub fn with_mutation(mutation: RedispatchMutation) -> ScanAttempt {
        ScanAttempt {
            claimed: AtomicBool::new(false),
            done: AtomicBool::new(false),
            mutation,
        }
    }

    /// Race for the right to publish this task's results. Exactly one
    /// attempt wins; losers must discard their staged entries.
    pub fn try_claim(&self) -> bool {
        #[cfg(interleave)]
        if self.mutation == RedispatchMutation::TornClaim {
            // Torn: check-then-set in two operations; a second attempt
            // between them also "wins".
            if self.claimed.load(Ordering::Acquire) {
                return false;
            }
            self.claimed.store(true, Ordering::Release);
            return true;
        }
        self.claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Mark the task published. `Release`: everything the winning attempt
    /// wrote (staged entries, counters) happens-before a supervisor that
    /// observes `is_done`.
    pub fn mark_done(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether some attempt has published (supervisor side, `Acquire`).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Default for ScanAttempt {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_takes_everything_once() {
        let slot: PendingSlot<u32> = PendingSlot::new();
        slot.push(1);
        slot.extend([2, 3]);
        assert_eq!(slot.len(), 3);
        assert_eq!(slot.drain(), vec![1, 2, 3]);
        assert!(slot.is_empty());
        assert!(slot.drain().is_empty(), "second drain finds nothing");
    }

    #[test]
    fn sharded_drain_takes_everything_once() {
        let slot: ShardedSlot<u32> = ShardedSlot::new(4);
        for i in 0..10 {
            slot.push(i);
        }
        slot.extend([10, 11]);
        assert_eq!(slot.len(), 12);
        let mut drained = slot.drain();
        drained.sort_unstable();
        assert_eq!(drained, (0..12).collect::<Vec<_>>());
        assert!(slot.is_empty());
        assert!(slot.drain().is_empty(), "second drain finds nothing");
    }

    #[test]
    fn sharded_take_one_empties_fifo_per_shard() {
        let slot: ShardedSlot<u32> = ShardedSlot::new(2);
        slot.push(1);
        slot.push(2);
        slot.push(3);
        let mut taken = Vec::new();
        while let Some(x) = slot.take_one() {
            taken.push(x);
        }
        taken.sort_unstable();
        assert_eq!(taken, vec![1, 2, 3]);
        assert!(slot.take_one().is_none());
    }

    #[test]
    fn gated_push_respects_the_flag() {
        let slot: ShardedSlot<u32> = ShardedSlot::new(2);
        let closed = AtomicBool::new(false);
        assert!(slot.push_unless(7, &closed).is_ok());
        closed.store(true, Ordering::Release);
        slot.barrier();
        assert_eq!(slot.push_unless(8, &closed), Err(8), "closed queue rejects");
        assert_eq!(slot.drain(), vec![7], "accepted push survived the close");
    }

    #[test]
    fn ledger_balances_and_caps() {
        let ledger = WindowLedger::new(2);
        assert!(ledger.has_capacity());
        ledger.add(2);
        assert_eq!(ledger.pending(), 2);
        assert!(!ledger.has_capacity(), "at cap");
        ledger.sub(1);
        assert!(ledger.has_capacity());
        ledger.sub(1);
        assert_eq!(ledger.pending(), 0);
    }

    #[test]
    fn unbounded_ledger_always_has_capacity() {
        let ledger = WindowLedger::new(u64::MAX);
        ledger.add(1 << 40);
        assert!(ledger.has_capacity());
    }

    #[test]
    fn scan_attempt_claim_is_exactly_once() {
        let a = ScanAttempt::new();
        assert!(!a.is_done());
        assert!(a.try_claim(), "first attempt wins");
        assert!(!a.try_claim(), "second attempt loses");
        a.mark_done();
        assert!(a.is_done());
    }
}
