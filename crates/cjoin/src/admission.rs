//! CJOIN admission: slot allocation, shared-filter registration, and the
//! dimension scans that seed filter state for newly admitted queries.
//!
//! Three execution paths share one phase structure (**prepare → scan →
//! activate**):
//!
//! * [`admit_batch_serial`] — the retained per-query oracle (the paper's
//!   §3.2 behavior), run inline on the preprocessor thread.
//! * [`admit_batch_shared`] — the per-stage pool: one batch of pending
//!   queries of **one** stage, scanned by the stage's own admission
//!   workers.
//! * [`crate::fabric::AdmissionFabric`] — the engine-level pool: pending
//!   batches of **every** live fact stage merged per batching window, so a
//!   dimension table filtered by star queries over different fact tables is
//!   physically scanned once for all of them.
//!
//! The shared-scan unit is a [`ScanUnit`]: all pending predicates — from
//! however many stages — over one `(dimension table, pk column)` pair. The
//! unit scans the dimension once, evaluates every predicate per decoded
//! page via [`Predicate::eval_batch_multi`], and stages one merged
//! [`DimEntry`] insert per selected row **per stage filter**, delivered
//! as a single filter-epoch publish per stage ([`crate::epoch`]).

// Atomics come through the swappable sync layer: `run_scan_unit` shares
// page counters with the fabric, whose `--cfg interleave` build swaps the
// atomics for model-checked ones (see `workshare_common::sync`).
use workshare_common::sync::{Arc, AtomicU64, Ordering};

use std::panic::{catch_unwind, AssertUnwindSafe};

use workshare_common::fxhash::FxHashMap;
use workshare_common::value::Row;
use workshare_common::{BitmapBank, Predicate, QueryBitmap, SelVec};

use workshare_sim::{CostKind, SimCtx};
use workshare_storage::{StorageError, TableId};

use crate::filter::DimEntry;
use crate::health::{SITE_SCAN_PANIC, SITE_SCAN_STALL};
use crate::stage::{
    activate_query, alloc_slot, locate_filter, release_slot, Admission, StageInner,
};
use crate::window::ScanAttempt;

/// One pending query's participation in a shared admission scan.
pub(crate) struct LocalPart {
    /// Index of the stage filter this part registers into.
    pub fi: usize,
    /// Dimension table scanned.
    pub dim: TableId,
    /// Dimension-schema primary-key column index.
    pub pk_idx: usize,
    /// The query's slot in its stage.
    pub slot: u32,
    /// The query's dimension predicate.
    pub pred: Predicate,
    /// Atomic term count of `pred` (cost accounting).
    pub terms: usize,
}

/// Phase-1 output for one stage's pending batch: allocated slots,
/// per-query `(filter, payload columns)` bindings, and the flat list of
/// scan parts to be grouped into [`ScanUnit`]s.
pub(crate) struct PreparedBatch {
    /// The pending admissions (consumed by [`activate_batch`]).
    pub pending: Vec<Admission>,
    /// Slot allocated per admission (parallel to `pending`).
    pub slots: Vec<u32>,
    /// `(filter index, dim payload columns)` per admission per dim.
    pub dim_filters: Vec<Vec<(usize, Vec<usize>)>>,
    /// Every `(query, dim join)` pair of the batch as a scan part.
    pub parts: Vec<LocalPart>,
}

/// One part of a [`ScanUnit`]: a pending predicate plus where its selected
/// rows land (`stage_idx` into the unit's stage slice, filter `fi`, slot
/// bit).
pub(crate) struct UnitPart {
    pub stage_idx: usize,
    pub fi: usize,
    pub slot: u32,
    pub pred: Predicate,
    pub terms: usize,
}

/// All pending predicates of one admission window over one
/// `(dimension table, pk column)` pair — the unit of physical scan
/// sharing, possibly spanning several fact stages.
pub(crate) struct ScanUnit {
    pub dim: TableId,
    pub pk_idx: usize,
    pub parts: Vec<UnitPart>,
}

/// Fold `sample` into the stage's per-dimension admission-selectivity EWMA
/// map (smoothing factor 0.2, matching the former global cell).
pub(crate) fn fold_dim_selectivity(inner: &StageInner, dim: TableId, sample: f64) {
    let mut map = inner.dim_sel_ewma.lock();
    map.entry(dim)
        .and_modify(|prev| *prev = 0.8 * *prev + 0.2 * sample)
        .or_insert(sample);
}

/// Phase 1 of a shared admission batch: slots, shared-filter registration
/// and `referencing` bits for the whole batch under one epoch publish, plus
/// the batch-fixed and per-query bookkeeping charges. `referencing` is
/// idempotent per scan; the slots are not active yet, so no in-flight page
/// carries their bits.
pub(crate) fn prepare_batch(
    inner: &StageInner,
    ctx: &SimCtx,
    pending: Vec<Admission>,
) -> PreparedBatch {
    inner.admission_batches.fetch_add(1, Ordering::Relaxed);
    ctx.charge(CostKind::Admission, inner.cost.admission_query_fixed_ns);
    ctx.charge(
        CostKind::Admission,
        inner.cost.admission_query_fixed_ns / 10.0 * pending.len() as f64,
    );
    let fact_schema = inner.storage.schema(inner.fact);
    // Catalog metadata resolved outside the state lock.
    let metas: Vec<Vec<(TableId, usize, usize)>> = pending
        .iter()
        .map(|adm| {
            adm.query
                .dims
                .iter()
                .map(|dj| {
                    let dim_t = inner.storage.table(&dj.dim);
                    (
                        dim_t,
                        fact_schema.col(&dj.fact_fk),
                        inner.storage.schema(dim_t).col(&dj.dim_pk),
                    )
                })
                .collect()
        })
        .collect();
    let mut slots = Vec::with_capacity(pending.len());
    let mut dim_filters: Vec<Vec<(usize, Vec<usize>)>> = Vec::with_capacity(pending.len());
    let mut parts: Vec<LocalPart> = Vec::new();
    inner.mutate_epoch(|control, epoch| {
        for (qi, adm) in pending.iter().enumerate() {
            let slot = alloc_slot(control, &inner.wrap);
            let mut dfs = Vec::with_capacity(adm.query.dims.len());
            for (k, dj) in adm.query.dims.iter().enumerate() {
                let (dim_t, fk_idx, pk_idx) = metas[qi][k];
                let fi = locate_filter(control, epoch, dim_t, fk_idx, pk_idx);
                Arc::make_mut(&mut epoch.filters[fi])
                    .referencing
                    .set(slot as usize);
                parts.push(LocalPart {
                    fi,
                    dim: dim_t,
                    pk_idx,
                    slot,
                    pred: dj.pred.clone(),
                    terms: dj.pred.term_count(),
                });
                dfs.push((fi, adm.bound.dim_payload_idx[k].clone()));
            }
            slots.push(slot);
            dim_filters.push(dfs);
        }
    });
    PreparedBatch {
        pending,
        slots,
        dim_filters,
        parts,
    }
}

/// Group the prepared batches of one admission window (one per stage,
/// `stage_idx` = slice position) into [`ScanUnit`]s keyed by
/// `(dimension table, pk column)` — parts from different stages, and from
/// different filter cores of one stage (same dimension joined via
/// different foreign keys), merge into one physical scan.
pub(crate) fn build_units(prepared: &[PreparedBatch]) -> Vec<ScanUnit> {
    let mut units: Vec<ScanUnit> = Vec::new();
    let mut index: FxHashMap<(TableId, usize), usize> = FxHashMap::default();
    for (si, prep) in prepared.iter().enumerate() {
        for p in &prep.parts {
            let ui = *index.entry((p.dim, p.pk_idx)).or_insert_with(|| {
                units.push(ScanUnit {
                    dim: p.dim,
                    pk_idx: p.pk_idx,
                    parts: Vec::new(),
                });
                units.len() - 1
            });
            units[ui].parts.push(UnitPart {
                stage_idx: si,
                fi: p.fi,
                slot: p.slot,
                pred: p.pred.clone(),
                terms: p.terms,
            });
        }
    }
    units
}

/// Phase 2: scan `unit.dim` **once** for every pending query in the unit.
/// Each page is decoded once, all predicates are evaluated over it in one
/// pass into a per-query selection bank, and each selected row is staged as
/// one merged insert per `(stage, filter)` carrying every selecting query's
/// slot bit. Staged inserts are merged into each stage's live filters via a
/// single epoch publish per stage at the end of the scan (no virtual-time
/// operation happens while the writer lock is held).
///
/// `pages` restricts the scan to a page subrange: the fabric partitions a
/// large unit across parallel subscans (dimension primary keys are unique,
/// so subranges stage disjoint filter entries and merge without conflict);
/// `None` scans the whole table — the per-stage pool path.
///
/// Physical-read attribution: each page increments `fabric_pages` when the
/// scan runs on the engine-level fabric (the page is read once *for several
/// stages*, so charging any one stage would misattribute it), or the owning
/// stage's `admission_dim_pages` on the per-stage pool path. The logical
/// per-query volume (`admission_dim_rows`) is always attributed per stage
/// and is batching-invariant.
///
/// **Fault sites** (armed via [`crate::CjoinFaultPlan`], default off):
/// with `inject` true the unit may stall or panic before scanning, and page
/// reads go through the storage layer's fault-aware
/// [`try_read_page`](workshare_storage::StorageManager::try_read_page),
/// surfacing typed [`StorageError`]s to the caller.
///
/// **Re-dispatch claim**: with an `attempt` handle (the fabric's straggler
/// supervision), every side effect visible outside this call — EWMA folds,
/// page/row counters, filter-entry merges — happens only after winning the
/// [`ScanAttempt::try_claim`] race, so a straggler and its re-dispatched
/// replacement publish exactly once between them (the protocol
/// model-checked by `tests/interleave_core.rs`).
pub(crate) fn run_scan_unit(
    ctx: &SimCtx,
    stages: &[&StageInner],
    unit: &ScanUnit,
    fabric_pages: Option<&AtomicU64>,
    pages: Option<(usize, usize)>,
    attempt: Option<&ScanAttempt>,
    inject: bool,
) -> Result<(), StorageError> {
    let primary = stages[unit.parts[0].stage_idx];
    let plan = &primary.config.faults;
    if inject && plan.is_armed() {
        let tick = primary.scan_tick();
        if plan.fires(SITE_SCAN_PANIC, plan.scan_panic_stride, tick) {
            if let Some(h) = &primary.health {
                h.count_panic();
            }
            panic!("injected fault: scan unit over {:?} panicked", unit.dim);
        }
        if plan.fires(SITE_SCAN_STALL, plan.scan_stall_stride, tick) {
            if let Some(h) = &primary.health {
                h.count_stall();
            }
            ctx.sleep(plan.scan_stall_ns);
        }
    }
    let dim_schema = primary.storage.schema(unit.dim);
    let stream = primary.storage.new_stream();
    let (page_lo, page_hi) =
        pages.unwrap_or((0, primary.storage.page_count(unit.dim)));
    let nq = unit.parts.len();
    let total_terms: usize = unit.parts.iter().map(|p| p.terms.max(1)).sum();
    let preds: Vec<&Predicate> = unit.parts.iter().map(|p| &p.pred).collect();
    let mut bank = BitmapBank::new();
    let mut scratch = SelVec::new();
    let mut hits = Vec::new();
    // Staged inserts per (stage, filter) bucket, discovery-ordered so the
    // merge below is deterministic.
    type StagedEntries = Vec<(i64, Arc<Row>, QueryBitmap)>;
    let mut buckets: Vec<((usize, usize), StagedEntries)> = Vec::new();
    let mut bucket_of: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    let mut rows_scanned = 0u64;
    let mut pages_read = 0u64;
    // Selectivity samples staged per (stage, sample): folded into the
    // per-dimension EWMAs only at publish time, behind the claim, so a
    // re-dispatched straggler never double-folds the governor signal.
    let mut sel_samples: Vec<(usize, f64)> = Vec::new();
    for p in page_lo..page_hi {
        let page = primary.storage.try_read_page(ctx, unit.dim, p, stream)?;
        let rows = page.decode_all(&dim_schema);
        rows_scanned += rows.len() as u64;
        pages_read += 1;
        // The page is decoded/hashed once for however many stages and
        // pending queries share it; each query pays only its predicate
        // evaluation at the batch rate.
        ctx.charge(
            CostKind::Admission,
            primary.cost.admission_batch_cost(rows.len(), nq, total_terms),
        );
        Predicate::eval_batch_multi(&preds, &rows, &mut bank, &mut scratch, &mut hits);
        if !rows.is_empty() {
            // Per-(page, query) selectivity signal for the per-dimension
            // EWMA of the part's own stage (as in the serial path).
            for (q, part) in unit.parts.iter().enumerate() {
                sel_samples.push((part.stage_idx, hits[q] as f64 / rows.len() as f64));
            }
        }
        for (i, row) in rows.into_iter().enumerate() {
            if !bank.row_any(i) {
                continue;
            }
            let key = row[unit.pk_idx].as_int();
            let arc = Arc::new(row);
            for q in bank.row_ones(i) {
                let part = &unit.parts[q];
                let bkey = (part.stage_idx, part.fi);
                let bi = *bucket_of.entry(bkey).or_insert_with(|| {
                    buckets.push((bkey, Vec::new()));
                    buckets.len() - 1
                });
                let entries = &mut buckets[bi].1;
                // Parts land row-major: if this bucket's tail entry is the
                // current row, merge the slot bit instead of re-staging.
                if let Some(last) = entries.last_mut() {
                    if Arc::ptr_eq(&last.1, &arc) {
                        last.2.set(part.slot as usize);
                        continue;
                    }
                }
                let mut bits = QueryBitmap::zeros(64);
                bits.set(part.slot as usize);
                entries.push((key, Arc::clone(&arc), bits));
            }
        }
    }
    // ---- publish: everything below is externally visible ----
    // Under fabric supervision both the original attempt and a straggler
    // re-dispatch may reach this point; the single-CAS claim picks exactly
    // one publisher. The loser's staged entries are discarded wholesale —
    // the scan above only read pages and charged costs.
    if let Some(att) = attempt {
        if !att.try_claim() {
            return Ok(());
        }
    }
    for (si, sample) in sel_samples {
        fold_dim_selectivity(stages[si], unit.dim, sample);
    }
    match fabric_pages {
        Some(counter) => counter.fetch_add(pages_read, Ordering::Relaxed),
        None => primary
            .admission_dim_pages
            .fetch_add(pages_read, Ordering::Relaxed),
    };
    // Logical per-query scan volume, attributed per stage: each of a
    // stage's parts evaluated every row of the dimension.
    let mut parts_per_stage = vec![0u64; stages.len()];
    for part in &unit.parts {
        parts_per_stage[part.stage_idx] += 1;
    }
    for (si, count) in parts_per_stage.iter().enumerate() {
        if *count > 0 {
            stages[si]
                .admission_dim_rows
                .fetch_add(rows_scanned * count, Ordering::Relaxed);
        }
    }
    // One epoch publish per participating stage: merge its staged entries
    // into a copy of the live filters and swap it in. Entries merge
    // *before* the batch's slots activate (`activate_batch` sets the
    // scan-visible bits afterwards) — the publish-entries-then-activate
    // order model-checked on [`crate::publish::FilterSpec`] and
    // [`crate::epoch::EpochFilterSpec`] by `tests/interleave_core.rs`.
    for (si, stage) in stages.iter().enumerate() {
        if !buckets.iter().any(|((s, _), _)| *s == si) {
            continue;
        }
        stage.mutate_epoch(|_, e| {
            for ((bs, fi), entries) in
                buckets.iter_mut().filter(|((s, _), _)| *s == si)
            {
                debug_assert_eq!(*bs, si);
                let filter = Arc::make_mut(&mut e.filters[*fi]);
                for (key, row, bits) in entries.drain(..) {
                    match filter.hash.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().bits.or_assign(&bits);
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(DimEntry { row, bits });
                        }
                    }
                }
            }
        });
    }
    if let Some(att) = attempt {
        att.mark_done();
    }
    Ok(())
}

/// Phase 3: activate the whole batch — build each query's sink/runtime and
/// make it visible to the preprocessor, distributor, and wrap bookkeeping.
/// Must run strictly after [`run_scan_unit`] has merged the batch's staged
/// filter entries: activation is what lets in-flight pages route rows to
/// these slots, so activating first would let a page probe a filter whose
/// entries aren't published yet (the `ActivateBeforePublish` mutation of
/// [`crate::publish::FilterSpec`], caught by `tests/interleave_core.rs`).
pub(crate) fn activate_batch(inner: &StageInner, prepared: PreparedBatch) {
    let PreparedBatch {
        pending,
        slots,
        dim_filters,
        ..
    } = prepared;
    for ((adm, slot), dfs) in pending.iter().zip(slots).zip(dim_filters) {
        activate_query(inner, adm, slot, dfs);
        inner.admitted.fetch_add(1, Ordering::Relaxed);
    }
}

/// The **shared-scan** admission path of one stage (the per-stage pool
/// default), run by the stage's admission workers off the circular-scan
/// thread:
///
/// 1. Slot allocation and shared-filter registration for the whole batch
///    under one epoch publish ([`prepare_batch`]).
/// 2. One physical scan per distinct dimension table referenced by the
///    batch, evaluating *all* pending predicates against each decoded page
///    ([`run_scan_unit`]).
/// 3. Batch-wide activation ([`activate_batch`]).
///
/// The preprocessor keeps producing fact pages for already-active queries
/// throughout; admission no longer pauses the pipeline. The engine-level
/// [`crate::fabric::AdmissionFabric`] runs the same three phases over the
/// merged batches of several stages.
pub(crate) fn admit_batch_shared(inner: &StageInner, ctx: &SimCtx, pending: Vec<Admission>) {
    let prepared = prepare_batch(inner, ctx, pending);
    let units = build_units(std::slice::from_ref(&prepared));
    let mut failure: Option<String> = None;
    for unit in &units {
        // With faults armed, an injected scan-unit panic is caught here and
        // downgraded to a failed batch with typed per-query errors; with
        // faults off the legacy propagate-and-crash semantics are kept so a
        // genuine bug still fails loudly.
        let outcome = if inner.config.faults.is_armed() {
            match catch_unwind(AssertUnwindSafe(|| {
                run_scan_unit(ctx, &[inner], unit, None, None, None, true)
            })) {
                Ok(r) => r.map_err(|e| e.to_string()),
                Err(_) => Err("admission scan unit panicked".to_string()),
            }
        } else {
            run_scan_unit(ctx, &[inner], unit, None, None, None, true)
                .map_err(|e| e.to_string())
        };
        if let Err(msg) = outcome {
            failure = Some(msg);
            break;
        }
    }
    match failure {
        None => activate_batch(inner, prepared),
        Some(msg) => fail_batch(inner, prepared, &msg),
    }
}

/// Roll back a prepared-but-unactivatable batch and surface one typed error
/// per pending query. Mirrors `finalize_query`'s GQP cleanup for slots that
/// never activated: clear the slot's bit from every filter (`referencing`
/// and entry bitmaps, dropping entries that go empty), release the slot,
/// drop the SP-registry host entry, and fail each query's sink so waiters
/// wake with an error outcome instead of hanging — a faulted admission is
/// an *error*, never an abort or a stuck ticket.
pub(crate) fn fail_batch(inner: &StageInner, prepared: PreparedBatch, msg: &str) {
    let PreparedBatch { pending, slots, .. } = prepared;
    inner.mutate_epoch(|control, epoch| {
        for &slot in &slots {
            release_slot(control, epoch, slot);
        }
    });
    if let Some(h) = &inner.health {
        h.count_batch_failed(pending.len() as u64);
    }
    for adm in &pending {
        adm.fail(inner, msg);
    }
}

/// The retained **serial** admission path (the seed's semantics, kept as
/// the behavioral oracle behind [`crate::CjoinConfig::serial_admission`]):
/// runs on the preprocessor thread in one pipeline pause, scanning every
/// dimension table once **per pending query**.
pub(crate) fn admit_batch_serial(inner: &StageInner, ctx: &SimCtx, pending: Vec<Admission>) {
    inner.admission_batches.fetch_add(1, Ordering::Relaxed);
    // One pipeline pause per batch ("in one pause of the pipeline, the
    // admission phase adapts the filters for all queries in the batch",
    // §3.2); per-query work is the slot/bitmap bookkeeping plus the
    // dimension scans charged below.
    ctx.charge(CostKind::Admission, inner.cost.admission_query_fixed_ns);
    for adm in pending {
        ctx.charge(
            CostKind::Admission,
            inner.cost.admission_query_fixed_ns / 10.0,
        );
        let q = &adm.query;
        // Allocation touches only the control plane — no epoch publish
        // needed until the filters actually change below.
        let slot = {
            let mut c = inner.control.lock();
            alloc_slot(&mut c, &inner.wrap)
        };
        let mut dim_filters = Vec::with_capacity(q.dims.len());
        // A typed storage fault mid-scan fails *this* query (the serial
        // path's blast radius is one query): its partial filter
        // registration is rolled back and the error surfaces on its sink.
        let mut failed: Option<String> = None;
        'dims: for (k, dj) in q.dims.iter().enumerate() {
            let dim_t = inner.storage.table(&dj.dim);
            let dim_schema = inner.storage.schema(dim_t);
            let fact_schema = inner.storage.schema(inner.fact);
            let fk_idx = fact_schema.col(&dj.fact_fk);
            let pk_idx = dim_schema.col(&dj.dim_pk);
            let fi = inner.mutate_epoch(|control, epoch| {
                let fi = locate_filter(control, epoch, dim_t, fk_idx, pk_idx);
                // `referencing` is idempotent per scan: set once up front
                // instead of once per page. The slot is not active yet, so
                // no in-flight page carries its bit.
                Arc::make_mut(&mut epoch.filters[fi])
                    .referencing
                    .set(slot as usize);
                fi
            });
            // Scan the dimension table, evaluate this query's predicate,
            // extend entry bitmaps (the admission cost SP avoids, §3.1).
            let stream = inner.storage.new_stream();
            let npages = inner.storage.page_count(dim_t);
            let terms = dj.pred.term_count();
            let mut scanned = 0u64;
            let mut sel = SelVec::new();
            let mut staged: Vec<(i64, Row)> = Vec::new();
            for p in 0..npages {
                let page = match inner.storage.try_read_page(ctx, dim_t, p, stream) {
                    Ok(page) => page,
                    Err(e) => {
                        failed = Some(e.to_string());
                        break 'dims;
                    }
                };
                let rows = page.decode_all(&dim_schema);
                scanned += rows.len() as u64;
                // Decode + per-row hash/bit work, then batch-evaluated like
                // every other selection in the system (and charged the same
                // amortized rate, so engine comparisons are not skewed by
                // admission accounting).
                ctx.charge(
                    CostKind::Admission,
                    (inner.cost.scan_tuple_ns + inner.cost.admission_tuple_ns)
                        * rows.len() as f64
                        + inner.cost.select_batch_cost(terms, rows.len()),
                );
                dj.pred.eval_batch_into(&rows, &mut sel);
                if !rows.is_empty() {
                    fold_dim_selectivity(
                        inner,
                        dim_t,
                        sel.count() as f64 / rows.len() as f64,
                    );
                }
                for (i, row) in rows.into_iter().enumerate() {
                    if sel.get(i) {
                        staged.push((row[pk_idx].as_int(), row));
                    }
                }
            }
            inner
                .admission_dim_rows
                .fetch_add(scanned, Ordering::Relaxed);
            inner
                .admission_dim_pages
                .fetch_add(npages as u64, Ordering::Relaxed);
            // One epoch publish per scan: merge the staged entries instead
            // of publishing once per page.
            inner.mutate_epoch(|_, epoch| {
                let filter = Arc::make_mut(&mut epoch.filters[fi]);
                for (key, row) in staged {
                    let entry = filter.hash.entry(key).or_insert_with(|| DimEntry {
                        row: Arc::new(row),
                        bits: QueryBitmap::zeros(64),
                    });
                    entry.bits.set(slot as usize);
                }
            });
            dim_filters.push((fi, adm.bound.dim_payload_idx[k].clone()));
        }
        if let Some(msg) = failed {
            inner.mutate_epoch(|control, epoch| {
                release_slot(control, epoch, slot);
            });
            if let Some(h) = &inner.health {
                h.count_batch_failed(1);
            }
            adm.fail(inner, &msg);
            continue;
        }
        activate_query(inner, &adm, slot, dim_filters);
        inner.admitted.fetch_add(1, Ordering::Relaxed);
    }
}
