//! # workshare-cjoin — Global Query Plans with shared operators
//!
//! A from-scratch implementation of the CJOIN operator (paper §2.5,
//! Candea et al. VLDB'09/'11) integrated as a stage of the QPipe engine
//! (paper §3.2):
//!
//! ```text
//!            ┌────────┐   ┌────────┐        ┌─────────────┐
//! fact table │ pre-   │ → │ filter │ → … →  │ distributor │ → per-query
//! (circular  │processor│  │workers │        │   parts     │   exchanges
//!  scan)     └────────┘   └────────┘        └─────────────┘
//! ```
//!
//! * The **preprocessor** drives a circular scan of the fact table, stamps
//!   each page with the set of active queries, admits new queries in
//!   **batches** at page boundaries (pausing the pipeline, §3.2), and marks
//!   each query's completion when the scan wraps to its point of entry.
//! * **Filters** are shared selection + shared hash-join pairs: one per
//!   dimension table, holding the union of dimension tuples selected by any
//!   active query, each tagged with a
//!   [`QueryBitmap`](workshare_common::QueryBitmap). Probing ANDs bitmaps
//!   (`bits &= entry | ¬referencing`), so queries that do not join a
//!   dimension pass through it untouched. Filtering runs **batch-at-a-time**
//!   ([`filter`]): tuple bitmaps live in a word-strided
//!   [`workshare_common::BitmapBank`], dimension hashes are probed once per
//!   key run, and a per-worker scratch keeps the steady-state loop free of
//!   per-tuple heap allocations (the tuple-at-a-time reference kernel is
//!   retained behind [`CjoinConfig::scalar_filter`]).
//! * **Distributor parts** (the paper's fix for the single-threaded
//!   distributor bottleneck) route surviving tuples to the queries whose bit
//!   is set, applying per-query fact predicates (evaluated on CJOIN output,
//!   §3.2) and per-query projections.
//! * **SP over CJOIN packets** (§3.3): a new query identical to an in-flight
//!   one attaches to the host packet's output exchange instead of being
//!   admitted — skipping admission, bitmap extension, and all per-query
//!   bitwise work.

mod admission;
pub mod epoch;
pub mod fabric;
pub mod filter;
pub mod health;
pub mod publish;
mod stage;
pub mod window;
pub mod wrap;

pub use epoch::{EpochCell, EpochReader};
pub use fabric::{AdmissionFabric, FabricStats, UNIT_REDISPATCH_DEADLINE_NS};
pub use filter::{
    filter_page_scalar, filter_page_vectorized, DimEntry, FilterCore, FilterCounters,
    FilterScratch, FilteredPage,
};
pub use health::{
    AdmissionHealth, AdmissionHealthSnapshot, CjoinFaultPlan, LadderRung,
};
pub use stage::{
    CjoinConfig, CjoinOutput, CjoinRuntimeStats, CjoinStage, CjoinStats, FaultCell,
};
pub use wrap::WrapLedger;
